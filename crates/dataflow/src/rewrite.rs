//! Graph rewrites: the parallelizing transformations.
//!
//! The two core rewrites (both from the PaSh playbook, paper E2):
//!
//! * [`parallelize_node`] — replace a splittable command node with
//!   `split → k clones → merge(agg)`;
//! * [`fuse_merge_split`] — cancel a `merge(concat)` feeding a `split`,
//!   wiring the k upstream branches straight into the k downstream
//!   branches, so a chain of stateless stages parallelizes end-to-end with
//!   a single split at the head and a single aggregate at the tail.
//!
//! Rewrites preserve the order-aware semantics: every aggregator
//! reconstructs exactly the sequential output.

use crate::graph::{Dfg, FusedStage, NodeId, NodeKind};
use jash_spec::Aggregator;

/// Whether the node is a command that may be replicated.
pub fn is_parallelizable(dfg: &Dfg, n: NodeId) -> bool {
    match &dfg.node(n).kind {
        NodeKind::Command { spec, .. } => {
            spec.class.is_splittable()
                && dfg.node(n).inputs.len() == 1
                && dfg.node(n).outputs.len() <= 1
                // Extra declared outputs (tee) would be written k times.
                && spec.output_files.is_empty()
        }
        _ => false,
    }
}

/// Replaces command node `n` with `split → width copies → merge`.
///
/// Returns the new merge node, or `None` when the node is not
/// parallelizable or `width < 2`.
pub fn parallelize_node(dfg: &mut Dfg, n: NodeId, width: usize) -> Option<NodeId> {
    if width < 2 || !is_parallelizable(dfg, n) {
        return None;
    }
    let (name, args, spec) = match &dfg.node(n).kind {
        NodeKind::Command { name, args, spec } => (name.clone(), args.clone(), spec.clone()),
        _ => return None,
    };
    let agg = spec.class.aggregator()?;

    let in_edge = dfg.node(n).inputs[0];
    let out_edge = dfg.node(n).outputs.first().copied();

    let split = dfg.add_node(NodeKind::Split { width });
    let merge = dfg.add_node(NodeKind::Merge { agg });

    // The old node becomes the first clone (keeps ids stable and the old
    // edges reusable).
    dfg.retarget_consumer(in_edge, split);
    dfg.connect(split, n);
    if let Some(e) = out_edge {
        dfg.retarget_producer(e, merge);
    }
    dfg.connect(n, merge);
    for _ in 1..width {
        let clone = dfg.add_node(NodeKind::Command {
            name: name.clone(),
            args: args.clone(),
            spec: spec.clone(),
        });
        dfg.connect(split, clone);
        dfg.connect(clone, merge);
    }
    Some(merge)
}

/// Fuses every `merge(concat) → split(k)` pair whose widths match,
/// connecting the merge's inputs directly to the split's consumers in
/// order. Returns the number of pairs fused.
pub fn fuse_merge_split(dfg: &mut Dfg) -> usize {
    let mut fused = 0;
    loop {
        let Some((merge, split)) = find_fusable(dfg) else {
            return fused;
        };
        let in_edges: Vec<_> = dfg.node(merge).inputs.clone();
        let out_edges: Vec<_> = dfg.node(split).outputs.clone();
        debug_assert_eq!(in_edges.len(), out_edges.len());
        for (ie, oe) in in_edges.iter().zip(out_edges.iter()) {
            let consumer = dfg.edge(*oe).to;
            // Re-point the upstream edge at the downstream consumer and
            // drop the split's edge from the consumer's input list,
            // preserving that input's position.
            let pos = dfg
                .node(consumer)
                .inputs
                .iter()
                .position(|e| e == oe)
                .expect("consumer lists the edge");
            dfg.node_mut(consumer).inputs[pos] = *ie;
            dfg.edges[ie.0].to = consumer;
            dfg.node_mut(merge).inputs.clear();
        }
        // Detach the merge→split edge and neutralize both nodes (arena
        // nodes are cheap; leaving tombstones keeps NodeIds stable).
        dfg.node_mut(merge).inputs.clear();
        dfg.node_mut(merge).outputs.clear();
        dfg.node_mut(split).inputs.clear();
        dfg.node_mut(split).outputs.clear();
        tombstone(dfg, merge);
        tombstone(dfg, split);
        fused += 1;
    }
}

fn tombstone(dfg: &mut Dfg, n: NodeId) {
    dfg.node_mut(n).kind = NodeKind::Discard;
    // A Discard with no inputs is pruned by the executor; mark it
    // explicitly disconnected.
}

fn find_fusable(dfg: &Dfg) -> Option<(NodeId, NodeId)> {
    for n in dfg.node_ids() {
        if let NodeKind::Merge {
            agg: Aggregator::Concat,
        } = dfg.node(n).kind
        {
            if dfg.node(n).outputs.len() != 1 {
                continue;
            }
            let out = dfg.edge(dfg.node(n).outputs[0]).to;
            if let NodeKind::Split { width } = dfg.node(out).kind {
                if width == dfg.node(n).inputs.len() {
                    return Some((n, out));
                }
            }
        }
    }
    None
}

/// Whether the node participates in execution.
///
/// Rewrites leave fully disconnected `Discard` tombstones behind (node
/// ids stay valid); everything else is live — including port-less
/// commands like a bare `echo`, which produce output without any edges.
pub fn is_live(dfg: &Dfg, n: NodeId) -> bool {
    !(matches!(dfg.node(n).kind, NodeKind::Discard)
        && dfg.node(n).inputs.is_empty()
        && dfg.node(n).outputs.is_empty())
}

/// Parallelizes every eligible node in the graph at `width`, then fuses
/// adjacent merge/split pairs. Returns how many command nodes were
/// replicated.
pub fn parallelize_all(dfg: &mut Dfg, width: usize) -> usize {
    let mut count = 0;
    for n in dfg.command_nodes() {
        if parallelize_node(dfg, n, width).is_some() {
            count += 1;
        }
    }
    if count > 0 {
        fuse_merge_split(dfg);
    }
    count
}

/// Whether the node can join a fused kernel run: a command whose
/// concrete invocation the kernel layer reproduces exactly, wired as a
/// plain one-in/at-most-one-out pipeline stage.
fn is_fusible(dfg: &Dfg, n: NodeId) -> bool {
    match &dfg.node(n).kind {
        NodeKind::Command { name, args, spec } => {
            jash_spec::fusibility(name, args, spec).is_fusible()
                && dfg.node(n).inputs.len() == 1
                && dfg.node(n).outputs.len() <= 1
        }
        _ => false,
    }
}

/// Whether `a`'s single output feeds `b` directly.
fn feeds(dfg: &Dfg, a: NodeId, b: NodeId) -> bool {
    dfg.node(a).outputs.len() == 1 && dfg.edge(dfg.node(a).outputs[0]).to == b
}

/// Maximal runs (length ≥ 2, in pipeline order) of fusible command
/// nodes connected as a linear chain. Each run is what
/// [`fuse_kernels`] collapses into one [`NodeKind::Fused`] node.
pub fn fusible_runs(dfg: &Dfg) -> Vec<Vec<NodeId>> {
    let mut runs = Vec::new();
    let mut in_run = vec![false; dfg.nodes.len()];
    for n in dfg.topo_order().unwrap_or_default() {
        if in_run[n.0] || !is_fusible(dfg, n) {
            continue;
        }
        // Only start a run at a node whose producer cannot extend it.
        let producer = dfg.edge(dfg.node(n).inputs[0]).from;
        if is_fusible(dfg, producer) && feeds(dfg, producer, n) {
            continue;
        }
        let mut run = vec![n];
        let mut cur = n;
        loop {
            if dfg.node(cur).outputs.len() != 1 {
                break;
            }
            let next = dfg.edge(dfg.node(cur).outputs[0]).to;
            if !is_fusible(dfg, next) || !feeds(dfg, cur, next) {
                break;
            }
            run.push(next);
            cur = next;
        }
        if run.len() >= 2 {
            for &m in &run {
                in_run[m.0] = true;
            }
            runs.push(run);
        }
    }
    runs
}

/// Collapses every maximal fusible run into a single
/// [`NodeKind::Fused`] kernel node. The run's head node becomes the
/// fused node (keeping its input edge); the tail's output edge is
/// re-pointed at it; interior nodes become disconnected tombstones.
/// Returns the number of runs fused.
pub fn fuse_kernels(dfg: &mut Dfg) -> usize {
    let runs = fusible_runs(dfg);
    for run in &runs {
        let head = run[0];
        let tail = *run.last().expect("runs are non-empty");
        let stages: Vec<FusedStage> = run
            .iter()
            .map(|&n| match &dfg.node(n).kind {
                NodeKind::Command { name, args, .. } => FusedStage {
                    name: name.clone(),
                    args: args.clone(),
                },
                _ => unreachable!("fusible runs contain only commands"),
            })
            .collect();
        let tail_outputs: Vec<_> = dfg.node(tail).outputs.clone();
        // Drop the head's interior edge, neutralize the rest of the run,
        // then adopt the tail's output edge. Interior edges end up
        // referenced by no port list, like other rewrite tombstones.
        dfg.node_mut(head).outputs.clear();
        for &n in &run[1..] {
            let node = dfg.node_mut(n);
            node.inputs.clear();
            node.outputs.clear();
            tombstone(dfg, n);
        }
        for e in tail_outputs {
            dfg.edges[e.0].from = head;
            dfg.node_mut(head).outputs.push(e);
        }
        dfg.node_mut(head).kind = NodeKind::Fused { stages };
    }
    runs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, ExpandedCommand, Region};
    use jash_spec::Registry;

    fn spell_dfg() -> Dfg {
        let cmds = vec![
            ExpandedCommand::new("cat", &["/f1", "/f2"]),
            ExpandedCommand::new("tr", &["A-Z", "a-z"]),
            ExpandedCommand::new("sort", &["-u"]),
        ];
        compile(&Region { commands: cmds }, &Registry::builtin())
            .unwrap()
            .dfg
    }

    #[test]
    fn parallelize_single_stateless_node() {
        let mut dfg = spell_dfg();
        let tr = dfg
            .command_nodes()
            .into_iter()
            .find(|n| matches!(&dfg.node(*n).kind, NodeKind::Command { name, .. } if name == "tr"))
            .unwrap();
        let merge = parallelize_node(&mut dfg, tr, 4).unwrap();
        dfg.validate().unwrap();
        assert_eq!(dfg.node(merge).inputs.len(), 4);
        let splits = dfg
            .node_ids()
            .filter(|n| matches!(dfg.node(*n).kind, NodeKind::Split { .. }))
            .count();
        assert_eq!(splits, 1);
        // 4 tr clones total.
        let trs = dfg
            .node_ids()
            .filter(
                |n| matches!(&dfg.node(*n).kind, NodeKind::Command { name, .. } if name == "tr"),
            )
            .count();
        assert_eq!(trs, 4);
    }

    #[test]
    fn head_not_parallelizable() {
        let cmds = vec![
            ExpandedCommand::new("cat", &["/f"]),
            ExpandedCommand::new("head", &["-n1"]),
        ];
        let mut c = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        let head = c.dfg.command_nodes()[0];
        assert!(parallelize_node(&mut c.dfg, head, 4).is_none());
    }

    #[test]
    fn parallelize_all_fuses_chain() {
        let mut dfg = spell_dfg();
        let replicated = parallelize_all(&mut dfg, 3);
        assert_eq!(replicated, 2, "tr and sort both splittable");
        dfg.validate().unwrap();
        // After fusion: one split at head, tr/sort chains of width 3, one
        // merge-sort at the tail, and one concat merge from the cat fusion.
        let live_splits = dfg
            .node_ids()
            .filter(|n| is_live(&dfg, *n) && matches!(dfg.node(*n).kind, NodeKind::Split { .. }))
            .count();
        assert_eq!(live_splits, 1);
        let live_merges: Vec<_> = dfg
            .node_ids()
            .filter(|n| is_live(&dfg, *n) && matches!(dfg.node(*n).kind, NodeKind::Merge { .. }))
            .collect();
        // cat-concat merge + final sort merge; the tr→sort concat/split
        // pair fused away.
        assert_eq!(live_merges.len(), 2);
    }

    #[test]
    fn width_one_is_identity() {
        let mut dfg = spell_dfg();
        let before = dfg.nodes.len();
        assert_eq!(parallelize_all(&mut dfg, 1), 0);
        assert_eq!(dfg.nodes.len(), before);
    }

    fn compile_pipeline(cmds: Vec<ExpandedCommand>) -> Dfg {
        compile(&Region { commands: cmds }, &Registry::builtin())
            .unwrap()
            .dfg
    }

    #[test]
    fn fusible_runs_found_and_bounded_by_barriers() {
        // cat /in is rewritten to a ReadFile; tr|grep|cut is the run;
        // sort is a barrier.
        let dfg = compile_pipeline(vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("tr", &["A-Z", "a-z"]),
            ExpandedCommand::new("grep", &["x"]),
            ExpandedCommand::new("cut", &["-c", "1-3"]),
            ExpandedCommand::new("sort", &[]),
        ]);
        let runs = fusible_runs(&dfg);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].len(), 3);
        let names: Vec<String> = runs[0]
            .iter()
            .map(|&n| match &dfg.node(n).kind {
                NodeKind::Command { name, .. } => name.clone(),
                _ => panic!("non-command in run"),
            })
            .collect();
        assert_eq!(names, ["tr", "grep", "cut"]);
    }

    #[test]
    fn single_fusible_stage_is_not_a_run() {
        let dfg = compile_pipeline(vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("tr", &["A-Z", "a-z"]),
            ExpandedCommand::new("sort", &[]),
        ]);
        assert!(fusible_runs(&dfg).is_empty());
    }

    #[test]
    fn fuse_kernels_collapses_run_into_one_node() {
        let mut dfg = compile_pipeline(vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("tr", &["A-Z", "a-z"]),
            ExpandedCommand::new("grep", &["x"]),
            ExpandedCommand::new("cut", &["-c", "1-3"]),
            ExpandedCommand::new("sort", &[]),
        ]);
        assert_eq!(fuse_kernels(&mut dfg), 1);
        dfg.validate().unwrap();
        let fused: Vec<_> = dfg
            .node_ids()
            .filter(|&n| matches!(dfg.node(n).kind, NodeKind::Fused { .. }))
            .collect();
        assert_eq!(fused.len(), 1);
        match &dfg.node(fused[0]).kind {
            NodeKind::Fused { stages } => {
                let names: Vec<&str> = stages.iter().map(|s| s.name.as_str()).collect();
                assert_eq!(names, ["tr", "grep", "cut"]);
            }
            _ => unreachable!(),
        }
        // The fused node sits between the read and the sort barrier.
        let read_out = dfg
            .node_ids()
            .find(|&n| matches!(dfg.node(n).kind, NodeKind::ReadFile { .. }))
            .map(|n| dfg.edge(dfg.node(n).outputs[0]).to)
            .unwrap();
        assert_eq!(read_out, fused[0]);
        let downstream = dfg.edge(dfg.node(fused[0]).outputs[0]).to;
        assert!(
            matches!(&dfg.node(downstream).kind, NodeKind::Command { name, .. } if name == "sort")
        );
        // Interior nodes are dead tombstones.
        let live_commands = dfg
            .node_ids()
            .filter(|&n| is_live(&dfg, n) && matches!(dfg.node(n).kind, NodeKind::Command { .. }))
            .count();
        assert_eq!(live_commands, 1, "only sort survives as a command");
    }

    #[test]
    fn fuse_kernels_fuses_terminal_run() {
        // The run ends the region (captured stdout): tail has no output
        // edge.
        let mut dfg = compile_pipeline(vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("grep", &["x"]),
            ExpandedCommand::new("head", &["-n2"]),
        ]);
        assert_eq!(fuse_kernels(&mut dfg), 1);
        dfg.validate().unwrap();
        let fused = dfg
            .node_ids()
            .find(|&n| matches!(dfg.node(n).kind, NodeKind::Fused { .. }))
            .unwrap();
        assert!(dfg.node(fused).outputs.is_empty());
    }

    #[test]
    fn fuse_kernels_after_parallelize_fuses_each_branch() {
        let mut dfg = compile_pipeline(vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("tr", &["a", "b"]),
            ExpandedCommand::new("tr", &["b", "c"]),
            ExpandedCommand::new("sort", &[]),
        ]);
        parallelize_all(&mut dfg, 3);
        dfg.validate().unwrap();
        let fused = fuse_kernels(&mut dfg);
        assert_eq!(fused, 3, "one tr|tr kernel per branch");
        dfg.validate().unwrap();
    }

    #[test]
    fn fused_graph_preserves_branch_order() {
        // Build tr | tr, parallelize both, fuse; the k branches must pair
        // first-with-first (order preservation).
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("tr", &["a", "b"]),
            ExpandedCommand::new("tr", &["b", "c"]),
        ];
        let mut c = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        parallelize_all(&mut c.dfg, 2);
        c.dfg.validate().unwrap();
        // Find the split; its i-th consumer chain must reach the final
        // merge as input i.
        let split = c
            .dfg
            .node_ids()
            .find(|n| {
                is_live(&c.dfg, *n) && matches!(c.dfg.node(*n).kind, NodeKind::Split { .. })
            })
            .unwrap();
        let final_merge = c
            .dfg
            .node_ids()
            .find(|n| {
                is_live(&c.dfg, *n) && matches!(c.dfg.node(*n).kind, NodeKind::Merge { .. })
            })
            .unwrap();
        for (i, &out) in c.dfg.node(split).outputs.iter().enumerate() {
            // Walk the chain from this branch to the merge.
            let mut cur = c.dfg.edge(out).to;
            let mut last_edge = out;
            loop {
                if cur == final_merge {
                    break;
                }
                last_edge = c.dfg.node(cur).outputs[0];
                cur = c.dfg.edge(last_edge).to;
            }
            let pos = c
                .dfg
                .node(final_merge)
                .inputs
                .iter()
                .position(|e| *e == last_edge)
                .unwrap();
            assert_eq!(pos, i, "branch {i} arrives at merge position {pos}");
        }
    }
}
