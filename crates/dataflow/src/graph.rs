//! The dataflow graph IR.
//!
//! A [`Dfg`] is a DAG of nodes connected by ordered byte-stream edges.
//! Ordering is part of the model (this is the *order-aware* dataflow of
//! Handa et al. that PaSh builds on): a node's input edges form an ordered
//! list, and every aggregator must reproduce exactly the byte stream the
//! sequential pipeline would have produced.

use jash_spec::{Aggregator, InstanceSpec};

/// Identifies a node within one [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifies an edge within one [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(pub usize);

/// What a node does.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Streams a file's bytes. No inputs, one output.
    ReadFile {
        /// Absolute virtual path.
        path: String,
    },
    /// Drains its input to a file. One input, no outputs.
    WriteFile {
        /// Absolute virtual path.
        path: String,
        /// Append instead of truncate.
        append: bool,
    },
    /// A command invocation (coreutil or user command with a spec).
    ///
    /// At most one stdin edge; file arguments in `args` are read directly
    /// from the filesystem by the command itself.
    Command {
        /// Command name.
        name: String,
        /// Fully expanded argument vector.
        args: Vec<String>,
        /// Resolved specification.
        spec: InstanceSpec,
    },
    /// Distributes its input across `width` outputs on line boundaries.
    Split {
        /// Number of output branches.
        width: usize,
    },
    /// Recombines its (ordered) inputs under an aggregator.
    Merge {
        /// How partial streams recombine.
        agg: Aggregator,
    },
    /// A maximal run of fusible stages collapsed into one single-pass
    /// kernel (see `rewrite::fuse_kernels`). At most one stdin edge and
    /// one stdout edge; executes with zero intermediate channels.
    Fused {
        /// The collapsed stages, in pipeline order.
        stages: Vec<FusedStage>,
    },
    /// Discards its input (used for `>/dev/null`-style sinks).
    Discard,
}

/// One stage of a [`NodeKind::Fused`] kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedStage {
    /// Command name.
    pub name: String,
    /// Fully expanded argument vector.
    pub args: Vec<String>,
}

impl NodeKind {
    /// A short label for display and DOT output.
    pub fn label(&self) -> String {
        match self {
            NodeKind::ReadFile { path } => format!("read {path}"),
            NodeKind::WriteFile { path, append } => {
                format!("write{} {path}", if *append { "+" } else { "" })
            }
            NodeKind::Command { name, args, .. } => {
                if args.is_empty() {
                    name.clone()
                } else {
                    format!("{name} {}", args.join(" "))
                }
            }
            NodeKind::Split { width } => format!("split x{width}"),
            NodeKind::Merge { agg } => format!("merge {agg:?}"),
            NodeKind::Fused { stages } => {
                let names: Vec<&str> = stages.iter().map(|s| s.name.as_str()).collect();
                format!("fused[{}]", names.join("|"))
            }
            NodeKind::Discard => "discard".to_string(),
        }
    }
}

/// A node plus its ordered connections.
#[derive(Debug, Clone)]
pub struct Node {
    /// Behavior.
    pub kind: NodeKind,
    /// Incoming edges, in order (order matters for merges and multi-reads).
    pub inputs: Vec<EdgeId>,
    /// Outgoing edges, in order (order matters for splits).
    pub outputs: Vec<EdgeId>,
}

/// A directed byte-stream edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Producer.
    pub from: NodeId,
    /// Consumer.
    pub to: NodeId,
}

/// The dataflow graph.
#[derive(Debug, Clone, Default)]
pub struct Dfg {
    /// Node arena.
    pub nodes: Vec<Node>,
    /// Edge arena.
    pub edges: Vec<Edge>,
}

impl Dfg {
    /// An empty graph.
    pub fn new() -> Self {
        Dfg::default()
    }

    /// Adds a node.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        self.nodes.push(Node {
            kind,
            inputs: Vec::new(),
            outputs: Vec::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Connects `from` → `to`, appending to both port lists.
    pub fn connect(&mut self, from: NodeId, to: NodeId) -> EdgeId {
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { from, to });
        self.nodes[from.0].outputs.push(id);
        self.nodes[to.0].inputs.push(id);
        id
    }

    /// Accessors.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Mutable accessor.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0]
    }

    /// The edge record.
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id.0]
    }

    /// Re-points an existing edge's consumer, preserving the producer.
    ///
    /// The edge keeps its position in the producer's output list; it is
    /// appended to the new consumer's input list.
    pub fn retarget_consumer(&mut self, e: EdgeId, new_to: NodeId) {
        let old_to = self.edges[e.0].to;
        self.nodes[old_to.0].inputs.retain(|&x| x != e);
        self.edges[e.0].to = new_to;
        self.nodes[new_to.0].inputs.push(e);
    }

    /// Re-points an existing edge's producer.
    pub fn retarget_producer(&mut self, e: EdgeId, new_from: NodeId) {
        let old_from = self.edges[e.0].from;
        self.nodes[old_from.0].outputs.retain(|&x| x != e);
        self.edges[e.0].from = new_from;
        self.nodes[new_from.0].outputs.push(e);
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Topological order (construction guarantees acyclicity; this is a
    /// Kahn sort that also detects accidental cycles from bad rewrites).
    pub fn topo_order(&self) -> Result<Vec<NodeId>, String> {
        let mut indeg: Vec<usize> = self.nodes.iter().map(|n| n.inputs.len()).collect();
        // FIFO keeps ready nodes in id (construction) order, which the
        // emitter relies on for stable output.
        let mut queue: std::collections::VecDeque<NodeId> =
            self.node_ids().filter(|n| indeg[n.0] == 0).collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(n) = queue.pop_front() {
            order.push(n);
            for &e in &self.nodes[n.0].outputs {
                let to = self.edges[e.0].to;
                indeg[to.0] -= 1;
                if indeg[to.0] == 0 {
                    queue.push_back(to);
                }
            }
        }
        if order.len() != self.nodes.len() {
            return Err("dataflow graph contains a cycle".to_string());
        }
        Ok(order)
    }

    /// Structural validation: port arities match node kinds.
    pub fn validate(&self) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            let (ins, outs) = (n.inputs.len(), n.outputs.len());
            let ok = match &n.kind {
                NodeKind::ReadFile { .. } => ins == 0 && outs == 1,
                NodeKind::WriteFile { .. } => ins == 1 && outs == 0,
                // Disconnected discards are rewrite tombstones.
                NodeKind::Discard => ins <= 1 && outs == 0,
                NodeKind::Command { spec, .. } => {
                    let stdin_ok = ins <= 1;
                    let stdout_ok = outs <= 1;
                    let _ = spec;
                    stdin_ok && stdout_ok
                }
                NodeKind::Fused { stages } => ins == 1 && outs <= 1 && !stages.is_empty(),
                NodeKind::Split { width } => ins == 1 && outs == *width && *width >= 2,
                // A merge may be terminal (its output is the region's
                // captured stdout).
                NodeKind::Merge { .. } => ins >= 2 && outs <= 1,
            };
            if !ok {
                return Err(format!(
                    "node {i} ({}) has bad arity: {ins} in, {outs} out",
                    n.kind.label()
                ));
            }
            for &e in n.inputs.iter() {
                if self.edges[e.0].to != NodeId(i) {
                    return Err(format!("edge {e:?} not consistent with node {i} inputs"));
                }
            }
            for &e in n.outputs.iter() {
                if self.edges[e.0].from != NodeId(i) {
                    return Err(format!("edge {e:?} not consistent with node {i} outputs"));
                }
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Graphviz DOT rendering for debugging and docs.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph dfg {\n  rankdir=LR;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            s.push_str(&format!(
                "  n{i} [label=\"{}\"];\n",
                n.kind.label().replace('"', "\\\"")
            ));
        }
        for e in &self.edges {
            s.push_str(&format!("  n{} -> n{};\n", e.from.0, e.to.0));
        }
        s.push_str("}\n");
        s
    }

    /// The command nodes, in topological order.
    pub fn command_nodes(&self) -> Vec<NodeId> {
        self.topo_order()
            .unwrap_or_default()
            .into_iter()
            .filter(|n| matches!(self.node(*n).kind, NodeKind::Command { .. }))
            .collect()
    }

    /// A normalized structural fingerprint of the graph's *shape*.
    ///
    /// Two regions that compile to the same pipeline — same commands,
    /// arguments, and file endpoints, in the same topological order —
    /// share a fingerprint regardless of parallelization width: `Split`
    /// nodes hash without their width and `Command`/`Merge` clones
    /// introduced by `parallelize_all` collapse via deduplication of
    /// identical labels at the same depth. In practice callers fingerprint
    /// the *pre-parallelization* graph, which makes the width-invariance
    /// trivially exact; the normalization here keeps the key stable even
    /// if a rewritten graph is fingerprinted by mistake. The supervision
    /// layer's circuit breaker uses this as its per-shape key.
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over deduplicated, width-normalized labels in topo order.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut write = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
        };
        let mut last: Option<String> = None;
        for n in self.topo_order().unwrap_or_default() {
            let label = match &self.node(n).kind {
                NodeKind::Split { .. } => "split".to_string(),
                other => other.label(),
            };
            if last.as_deref() == Some(label.as_str()) {
                continue; // Parallel clones of one stage collapse.
            }
            write(label.as_bytes());
            write(&[0]);
            last = Some(label);
        }
        hash
    }

    /// Like [`Dfg::fingerprint`], but with file endpoints normalized
    /// away: `ReadFile`/`WriteFile` nodes hash as bare `read`/`write`
    /// regardless of path. This is the *plan-cache* key — iteration 2..N
    /// of a loop like `for f in *.txt; do cat $f | tr … ; done` compiles
    /// to the same shape with a different path each time, and the chosen
    /// plan (width, buffering, fusion) depends on the shape and the input
    /// *size*, never on the path itself. Callers pair this key with a
    /// size bucket and a planner-options signature; the circuit breaker
    /// keeps using the path-sensitive [`Dfg::fingerprint`].
    pub fn plan_fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut write = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
        };
        let mut last: Option<String> = None;
        for n in self.topo_order().unwrap_or_default() {
            let label = match &self.node(n).kind {
                NodeKind::Split { .. } => "split".to_string(),
                NodeKind::ReadFile { .. } => "read".to_string(),
                NodeKind::WriteFile { append, .. } => {
                    if *append { "write+" } else { "write" }.to_string()
                }
                other => other.label(),
            };
            if last.as_deref() == Some(label.as_str()) {
                continue;
            }
            write(label.as_bytes());
            write(&[0]);
            last = Some(label);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat_spec() -> InstanceSpec {
        jash_spec::resolve_builtin("cat", &[]).unwrap()
    }

    #[test]
    fn build_and_validate_linear_graph() {
        let mut g = Dfg::new();
        let r = g.add_node(NodeKind::ReadFile {
            path: "/in".into(),
        });
        let c = g.add_node(NodeKind::Command {
            name: "cat".into(),
            args: vec![],
            spec: cat_spec(),
        });
        let w = g.add_node(NodeKind::WriteFile {
            path: "/out".into(),
            append: false,
        });
        g.connect(r, c);
        g.connect(c, w);
        g.validate().unwrap();
        assert_eq!(g.topo_order().unwrap().len(), 3);
    }

    #[test]
    fn bad_arity_rejected() {
        let mut g = Dfg::new();
        let r = g.add_node(NodeKind::ReadFile {
            path: "/in".into(),
        });
        let w = g.add_node(NodeKind::WriteFile {
            path: "/out".into(),
            append: false,
        });
        g.connect(r, w);
        g.connect(r, w); // ReadFile with two outputs: invalid.
        assert!(g.validate().is_err());
    }

    #[test]
    fn retarget_preserves_consistency() {
        let mut g = Dfg::new();
        let r = g.add_node(NodeKind::ReadFile {
            path: "/in".into(),
        });
        let c1 = g.add_node(NodeKind::Command {
            name: "cat".into(),
            args: vec![],
            spec: cat_spec(),
        });
        let c2 = g.add_node(NodeKind::Command {
            name: "cat".into(),
            args: vec![],
            spec: cat_spec(),
        });
        let w = g.add_node(NodeKind::WriteFile {
            path: "/out".into(),
            append: false,
        });
        let e1 = g.connect(r, c1);
        g.connect(c1, w);
        // Splice c2 between r and c1.
        g.retarget_consumer(e1, c2);
        g.connect(c2, c1);
        g.validate().unwrap();
        let order = g.topo_order().unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(r) < pos(c2));
        assert!(pos(c2) < pos(c1));
    }

    #[test]
    fn dot_output_mentions_nodes() {
        let mut g = Dfg::new();
        let r = g.add_node(NodeKind::ReadFile {
            path: "/data".into(),
        });
        let w = g.add_node(NodeKind::Discard);
        g.connect(r, w);
        let dot = g.to_dot();
        assert!(dot.contains("read /data"));
        assert!(dot.contains("n0 -> n1"));
    }

    #[test]
    fn fingerprint_keys_shape_not_width() {
        let linear = |args: &[&str]| {
            let mut g = Dfg::new();
            let r = g.add_node(NodeKind::ReadFile { path: "/in".into() });
            let c = g.add_node(NodeKind::Command {
                name: "grep".into(),
                args: args.iter().map(|s| s.to_string()).collect(),
                spec: jash_spec::resolve_builtin("grep", &["x".into()]).unwrap(),
            });
            g.connect(r, c);
            g
        };
        assert_eq!(linear(&["x"]).fingerprint(), linear(&["x"]).fingerprint());
        assert_ne!(linear(&["x"]).fingerprint(), linear(&["y"]).fingerprint());
        // Split width does not enter the key.
        let with_split = |w: usize| {
            let mut g = Dfg::new();
            let r = g.add_node(NodeKind::ReadFile { path: "/in".into() });
            let s = g.add_node(NodeKind::Split { width: w });
            g.connect(r, s);
            for _ in 0..w {
                let d = g.add_node(NodeKind::Discard);
                g.connect(s, d);
            }
            g.fingerprint()
        };
        assert_eq!(with_split(2), with_split(4));
    }

    #[test]
    fn plan_fingerprint_ignores_paths_but_not_flags() {
        let chain = |path: &str, args: &[&str]| {
            let mut g = Dfg::new();
            let r = g.add_node(NodeKind::ReadFile { path: path.into() });
            let c = g.add_node(NodeKind::Command {
                name: "grep".into(),
                args: args.iter().map(|s| s.to_string()).collect(),
                spec: jash_spec::resolve_builtin("grep", &["x".into()]).unwrap(),
            });
            g.connect(r, c);
            g
        };
        // Same shape over a different file: same plan key, different
        // breaker key.
        let a = chain("/data/f1.txt", &["x"]);
        let b = chain("/data/f2.txt", &["x"]);
        assert_eq!(a.plan_fingerprint(), b.plan_fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Different flags still re-plan.
        let c = chain("/data/f1.txt", &["y"]);
        assert_ne!(a.plan_fingerprint(), c.plan_fingerprint());
    }

    #[test]
    fn cycle_detected() {
        let mut g = Dfg::new();
        let a = g.add_node(NodeKind::Command {
            name: "cat".into(),
            args: vec![],
            spec: cat_spec(),
        });
        let b = g.add_node(NodeKind::Command {
            name: "cat".into(),
            args: vec![],
            spec: cat_spec(),
        });
        g.connect(a, b);
        g.connect(b, a);
        assert!(g.topo_order().is_err());
    }
}
