//! Dataflow-to-shell translation (the inverse of
//! [`compile()`](crate::compile::compile)).
//!
//! Linear graphs translate back to an ordinary pipeline AST — this closes
//! the parse → compile → optimize → unparse loop the paper inherits from
//! libdash, and is what makes optimized regions *inspectable*: `jash
//! --explain` prints both the rewritten graph and the equivalent shell.
//! Parallelized graphs have no POSIX equivalent (the runtime primitives
//! are in `jash-exec`), so they render via [`crate::graph::Dfg::to_dot`]
//! and a textual plan instead.

use crate::graph::{Dfg, NodeId, NodeKind};
use crate::rewrite::is_live;
use jash_ast::{
    AndOrList, Command, CommandKind, ListItem, Pipeline, Program, Redirect, RedirectOp,
    SimpleCommand, Word,
};

/// Renders a *linear* graph back to a shell pipeline AST.
///
/// Returns `None` when the graph contains splits/merges other than the
/// `cat`-fusion concat at the head (those have no POSIX spelling).
pub fn to_shell(dfg: &Dfg) -> Option<Program> {
    let order = dfg.topo_order().ok()?;
    let mut stages: Vec<Command> = Vec::new();
    let mut stdin_path: Option<String> = None;
    let mut cat_files: Vec<String> = Vec::new();
    let mut stdout: Option<(String, bool)> = None;

    for n in order {
        if !is_live(dfg, n) {
            continue;
        }
        match &dfg.node(n).kind {
            NodeKind::ReadFile { path } => {
                if is_cat_fusion_read(dfg, n) {
                    cat_files.push(path.clone());
                } else if stages.is_empty() && stdin_path.is_none() {
                    stdin_path = Some(path.clone());
                } else {
                    return None;
                }
            }
            NodeKind::Merge { agg } => {
                // Only the head concat from cat-fusion is expressible.
                if !matches!(agg, jash_spec::Aggregator::Concat) || !stages.is_empty() {
                    return None;
                }
            }
            // A fused kernel has no single-command POSIX spelling.
            NodeKind::Fused { .. } => return None,
            NodeKind::Split { .. } => return None,
            NodeKind::Discard => {
                if !dfg.node(n).inputs.is_empty() {
                    return None;
                }
            }
            NodeKind::WriteFile { path, append } => {
                stdout = Some((path.clone(), *append));
            }
            NodeKind::Command { name, args, .. } => {
                let mut words = vec![Word::literal(name.clone())];
                words.extend(args.iter().map(|a| Word::literal(a.clone())));
                let mut cmd = Command::new(CommandKind::Simple(SimpleCommand {
                    assignments: vec![],
                    words,
                }));
                if stages.is_empty() {
                    if !cat_files.is_empty() {
                        // Re-materialize the fused cat.
                        let mut cat_words = vec![Word::literal("cat")];
                        cat_words
                            .extend(cat_files.drain(..).map(Word::literal));
                        stages.push(Command::new(CommandKind::Simple(SimpleCommand {
                            assignments: vec![],
                            words: cat_words,
                        })));
                    } else if let Some(p) = stdin_path.take() {
                        cmd.redirects
                            .push(Redirect::new(RedirectOp::Read, Word::literal(p)));
                    }
                }
                stages.push(cmd);
            }
        }
    }
    // A bare fused cat with no downstream command.
    if stages.is_empty() && !cat_files.is_empty() {
        let mut cat_words = vec![Word::literal("cat")];
        cat_words.extend(cat_files.drain(..).map(Word::literal));
        stages.push(Command::new(CommandKind::Simple(SimpleCommand {
            assignments: vec![],
            words: cat_words,
        })));
        if let Some(p) = stdin_path.take() {
            stages[0]
                .redirects
                .push(Redirect::new(RedirectOp::Read, Word::literal(p)));
        }
    }
    if stages.is_empty() {
        return None;
    }
    if let Some((path, append)) = stdout {
        let op = if append {
            RedirectOp::Append
        } else {
            RedirectOp::Write
        };
        stages
            .last_mut()
            .expect("nonempty")
            .redirects
            .push(Redirect::new(op, Word::literal(path)));
    }
    Some(Program {
        items: vec![ListItem {
            and_or: AndOrList::single(Pipeline {
                negated: false,
                commands: stages,
            }),
            background: false,
        }],
    })
}

fn is_cat_fusion_read(dfg: &Dfg, n: NodeId) -> bool {
    dfg.node(n)
        .outputs
        .first()
        .map(|&e| {
            matches!(
                dfg.node(dfg.edge(e).to).kind,
                NodeKind::Merge {
                    agg: jash_spec::Aggregator::Concat
                }
            )
        })
        .unwrap_or(false)
}

/// A human-readable execution plan (works for parallel graphs too).
pub fn explain(dfg: &Dfg) -> String {
    let mut out = String::new();
    let order = dfg.topo_order().unwrap_or_default();
    for n in order {
        if !is_live(dfg, n) {
            continue;
        }
        let node = dfg.node(n);
        out.push_str(&format!(
            "#{:<3} {:<40} in={} out={}\n",
            n.0,
            node.kind.label(),
            node.inputs.len(),
            node.outputs.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, ExpandedCommand, Region};
    use crate::rewrite::parallelize_all;
    use jash_spec::Registry;

    #[test]
    fn linear_graph_roundtrips_to_shell() {
        let mut cut = ExpandedCommand::new("cut", &["-c", "89-92"]);
        cut.stdin_redirect = Some("/noaa".into());
        let mut head = ExpandedCommand::new("head", &["-n1"]);
        head.stdout_redirect = Some(("/max".into(), false));
        let cmds = vec![
            cut,
            ExpandedCommand::new("grep", &["-v", "999"]),
            ExpandedCommand::new("sort", &["-rn"]),
            head,
        ];
        let c = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        let prog = to_shell(&c.dfg).unwrap();
        let text = jash_ast::unparse(&prog);
        assert_eq!(
            text,
            "cut -c 89-92 < /noaa | grep -v 999 | sort -rn | head -n1 > /max"
        );
        // And the emitted text parses back.
        jash_parser::parse(&text).unwrap();
    }

    #[test]
    fn cat_fusion_rematerializes() {
        let cmds = vec![
            ExpandedCommand::new("cat", &["/f1", "/f2"]),
            ExpandedCommand::new("wc", &["-l"]),
        ];
        let c = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        let prog = to_shell(&c.dfg).unwrap();
        assert_eq!(jash_ast::unparse(&prog), "cat /f1 /f2 | wc -l");
    }

    #[test]
    fn parallel_graph_not_expressible() {
        let cmds = vec![
            ExpandedCommand::new("cat", &["/f"]),
            ExpandedCommand::new("tr", &["a", "b"]),
        ];
        let mut c = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        assert!(to_shell(&c.dfg).is_some());
        parallelize_all(&mut c.dfg, 4);
        assert!(to_shell(&c.dfg).is_none());
        let plan = explain(&c.dfg);
        assert!(plan.contains("split x4"));
        assert!(plan.contains("merge"));
    }
}
