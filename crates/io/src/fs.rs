//! Virtual filesystem abstraction.
//!
//! All shell-visible file IO goes through [`Fs`], so the same script can
//! run against the host filesystem ([`RealFs`]) or a hermetic in-memory
//! tree ([`MemFs`]) whose transfers are charged to a [`DiskModel`]. Paths
//! are absolute, `/`-separated strings; [`normalize`] resolves `.`, `..`,
//! and duplicate separators.

use crate::disk::DiskModel;
use crate::stream::{ByteStream, DEFAULT_CHUNK};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::io;
use std::sync::Arc;

/// Metadata for a filesystem entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileMeta {
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Whether the entry is a directory.
    pub is_dir: bool,
}

/// A readable file handle.
pub trait ReadHandle: Send {
    /// Reads up to `max` bytes; `None` at end of file.
    fn read_chunk(&mut self, max: usize) -> io::Result<Option<Bytes>>;
}

/// A writable file handle. Contents become visible as they are written.
pub trait WriteHandle: Send {
    /// Appends `data` to the file.
    fn write_all(&mut self, data: &[u8]) -> io::Result<()>;
}

/// The filesystem interface used by the interpreter, the coreutils, and
/// the dataflow executor.
pub trait Fs: Send + Sync {
    /// Opens a file for reading.
    fn open_read(&self, path: &str) -> io::Result<Box<dyn ReadHandle>>;
    /// Opens a file for writing, truncating unless `append`.
    fn open_write(&self, path: &str, append: bool) -> io::Result<Box<dyn WriteHandle>>;
    /// Stats a path.
    fn metadata(&self, path: &str) -> io::Result<FileMeta>;
    /// Lists directory entry names (not full paths), sorted.
    fn list_dir(&self, path: &str) -> io::Result<Vec<String>>;
    /// Removes a file.
    fn remove(&self, path: &str) -> io::Result<()>;

    /// Removes an (expected-empty) directory. Filesystems whose
    /// directories are implicit in file paths ([`MemFs`]) treat this as
    /// a no-op success; [`RealFs`] removes the host directory so a
    /// recovered run scope leaves nothing behind.
    fn remove_dir(&self, _path: &str) -> io::Result<()> {
        Ok(())
    }
    /// Atomically renames `from` to `to`, replacing any existing file.
    ///
    /// This is the commit step of transactional region execution: sinks
    /// write to a staging path and are renamed into place only if the
    /// whole region succeeded.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;
    /// Whether the path exists.
    fn exists(&self, path: &str) -> bool {
        self.metadata(path).is_ok()
    }
    /// Flushes a file's contents to stable storage (`fsync`). The
    /// durability half of transactional commit: staged sinks are synced
    /// *before* the atomic rename, so the renamed-in file can never be an
    /// empty or partial shell of itself after a power loss. Default
    /// no-op for filesystems with no durability story.
    fn sync(&self, path: &str) -> io::Result<()> {
        let _ = path;
        Ok(())
    }
    /// Flushes a directory's entry table to stable storage, making a
    /// preceding rename within it durable. Default no-op.
    fn sync_dir(&self, path: &str) -> io::Result<()> {
        let _ = path;
        Ok(())
    }
    /// The disk model charging this filesystem's transfers, if any.
    fn disk(&self) -> Option<Arc<DiskModel>> {
        None
    }
}

/// Resolves `.`/`..`/`//` in an absolute or `cwd`-relative path.
pub fn normalize(cwd: &str, path: &str) -> String {
    let joined = if path.starts_with('/') {
        path.to_string()
    } else {
        format!("{}/{}", cwd.trim_end_matches('/'), path)
    };
    let mut parts: Vec<&str> = Vec::new();
    for seg in joined.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            s => parts.push(s),
        }
    }
    let mut out = String::from("/");
    out.push_str(&parts.join("/"));
    out
}

/// Convenience: reads a whole file.
pub fn read_to_vec(fs: &dyn Fs, path: &str) -> io::Result<Vec<u8>> {
    let mut h = fs.open_read(path)?;
    let mut out = Vec::new();
    while let Some(chunk) = h.read_chunk(DEFAULT_CHUNK)? {
        out.extend_from_slice(&chunk);
    }
    Ok(out)
}

/// Convenience: reads a whole file as UTF-8 (lossy).
pub fn read_to_string(fs: &dyn Fs, path: &str) -> io::Result<String> {
    Ok(String::from_utf8_lossy(&read_to_vec(fs, path)?).into_owned())
}

/// Convenience: writes a whole file.
pub fn write_file(fs: &dyn Fs, path: &str, data: &[u8]) -> io::Result<()> {
    let mut h = fs.open_write(path, false)?;
    h.write_all(data)
}

/// A [`ByteStream`] over a [`ReadHandle`].
pub struct FileStream {
    handle: Box<dyn ReadHandle>,
    chunk: usize,
}

impl FileStream {
    /// Opens `path` on `fs` as a stream.
    pub fn open(fs: &dyn Fs, path: &str) -> io::Result<Self> {
        Ok(FileStream {
            handle: fs.open_read(path)?,
            chunk: DEFAULT_CHUNK,
        })
    }
}

impl ByteStream for FileStream {
    fn next_chunk(&mut self) -> io::Result<Option<Bytes>> {
        self.handle.read_chunk(self.chunk)
    }
}

/// A [`crate::Sink`] over a [`WriteHandle`].
pub struct FileSink {
    handle: Box<dyn WriteHandle>,
}

impl FileSink {
    /// Opens `path` for writing on `fs`.
    pub fn create(fs: &dyn Fs, path: &str, append: bool) -> io::Result<Self> {
        Ok(FileSink {
            handle: fs.open_write(path, append)?,
        })
    }
}

impl crate::Sink for FileSink {
    fn write_chunk(&mut self, chunk: Bytes) -> io::Result<()> {
        self.handle.write_all(&chunk)
    }

    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// MemFs
// ---------------------------------------------------------------------

type FileCell = Arc<RwLock<Vec<u8>>>;

/// An in-memory filesystem, optionally throttled by a [`DiskModel`].
///
/// Directories are implicit: any path prefix of an existing file "exists"
/// as a directory.
pub struct MemFs {
    files: RwLock<HashMap<String, FileCell>>,
    disk: Option<Arc<DiskModel>>,
    syncs: std::sync::atomic::AtomicU64,
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

impl MemFs {
    /// An unthrottled in-memory filesystem.
    pub fn new() -> Self {
        MemFs {
            files: RwLock::new(HashMap::new()),
            disk: None,
            syncs: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// A filesystem whose IO is charged to `model`.
    pub fn with_disk(model: DiskModel) -> Self {
        MemFs {
            files: RwLock::new(HashMap::new()),
            disk: Some(Arc::new(model)),
            syncs: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// How many [`Fs::sync`]/[`Fs::sync_dir`] calls this filesystem has
    /// absorbed. Memory needs no fsync, so the counter exists purely so
    /// tests can observe the durability protocol's barrier points.
    pub fn sync_count(&self) -> u64 {
        self.syncs.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Installs `data` at `path` without charging the disk model.
    ///
    /// Used by workload generators to stage inputs for free.
    pub fn install(&self, path: &str, data: impl Into<Vec<u8>>) {
        let path = normalize("/", path);
        self.files
            .write()
            .insert(path, Arc::new(RwLock::new(data.into())));
    }

    fn lookup(&self, path: &str) -> Option<FileCell> {
        self.files.read().get(path).cloned()
    }
}

impl Fs for MemFs {
    fn open_read(&self, path: &str) -> io::Result<Box<dyn ReadHandle>> {
        let path = normalize("/", path);
        let cell = self.lookup(&path).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("{path}: no such file"))
        })?;
        Ok(Box::new(MemReadHandle {
            cell,
            pos: 0,
            disk: self.disk.clone(),
        }))
    }

    fn open_write(&self, path: &str, append: bool) -> io::Result<Box<dyn WriteHandle>> {
        let path = normalize("/", path);
        let mut files = self.files.write();
        let cell = files
            .entry(path)
            .or_insert_with(|| Arc::new(RwLock::new(Vec::new())))
            .clone();
        if !append {
            cell.write().clear();
        }
        Ok(Box::new(MemWriteHandle {
            cell,
            disk: self.disk.clone(),
        }))
    }

    fn metadata(&self, path: &str) -> io::Result<FileMeta> {
        let path = normalize("/", path);
        if let Some(cell) = self.lookup(&path) {
            return Ok(FileMeta {
                size: cell.read().len() as u64,
                is_dir: false,
            });
        }
        // Implicit directory: some file lives beneath this prefix.
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        if path == "/" || self.files.read().keys().any(|k| k.starts_with(&prefix)) {
            return Ok(FileMeta {
                size: 0,
                is_dir: true,
            });
        }
        Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{path}: no such file or directory"),
        ))
    }

    fn list_dir(&self, path: &str) -> io::Result<Vec<String>> {
        let path = normalize("/", path);
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let mut names: Vec<String> = self
            .files
            .read()
            .keys()
            .filter_map(|k| k.strip_prefix(&prefix))
            .map(|rest| match rest.find('/') {
                Some(i) => rest[..i].to_string(),
                None => rest.to_string(),
            })
            .collect();
        names.sort();
        names.dedup();
        if names.is_empty() && !self.exists(&path) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{path}: no such directory"),
            ));
        }
        Ok(names)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        let path = normalize("/", path);
        self.files.write().remove(&path).map(|_| ()).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("{path}: no such file"))
        })
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let from = normalize("/", from);
        let to = normalize("/", to);
        let mut files = self.files.write();
        let cell = files.remove(&from).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("{from}: no such file"))
        })?;
        // Single map operation under one write lock: readers see either
        // the old file or the new one, never a half-moved state.
        files.insert(to, cell);
        Ok(())
    }

    fn disk(&self) -> Option<Arc<DiskModel>> {
        self.disk.clone()
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        let path = normalize("/", path);
        if !self.exists(&path) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{path}: no such file"),
            ));
        }
        self.syncs.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        Ok(())
    }

    fn sync_dir(&self, path: &str) -> io::Result<()> {
        // Implicit directories always "exist" once a file lives beneath
        // them; counting the call is all an in-memory tree can do.
        let _ = path;
        self.syncs.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        Ok(())
    }
}

struct MemReadHandle {
    cell: FileCell,
    pos: usize,
    disk: Option<Arc<DiskModel>>,
}

impl ReadHandle for MemReadHandle {
    fn read_chunk(&mut self, max: usize) -> io::Result<Option<Bytes>> {
        let data = self.cell.read();
        if self.pos >= data.len() {
            return Ok(None);
        }
        let end = (self.pos + max).min(data.len());
        let chunk = Bytes::copy_from_slice(&data[self.pos..end]);
        drop(data);
        self.pos = end;
        if let Some(disk) = &self.disk {
            disk.charge_read(chunk.len() as u64);
        }
        Ok(Some(chunk))
    }
}

struct MemWriteHandle {
    cell: FileCell,
    disk: Option<Arc<DiskModel>>,
}

impl WriteHandle for MemWriteHandle {
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        self.cell.write().extend_from_slice(data);
        if let Some(disk) = &self.disk {
            disk.charge_write(data.len() as u64);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// RealFs
// ---------------------------------------------------------------------

/// A passthrough to the host filesystem, rooted at a base directory.
///
/// Virtual path `/a/b` maps to `<root>/a/b`. Used by the examples so the
/// library is usable on real data; benchmarks use [`MemFs`].
pub struct RealFs {
    root: std::path::PathBuf,
}

impl RealFs {
    /// Creates a view rooted at `root`.
    pub fn new(root: impl Into<std::path::PathBuf>) -> Self {
        RealFs { root: root.into() }
    }

    fn host_path(&self, path: &str) -> std::path::PathBuf {
        let norm = normalize("/", path);
        self.root.join(norm.trim_start_matches('/'))
    }
}

impl Fs for RealFs {
    fn open_read(&self, path: &str) -> io::Result<Box<dyn ReadHandle>> {
        let f = std::fs::File::open(self.host_path(path))?;
        Ok(Box::new(RealReadHandle { file: f }))
    }

    fn open_write(&self, path: &str, append: bool) -> io::Result<Box<dyn WriteHandle>> {
        let p = self.host_path(path);
        if let Some(parent) = p.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let f = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .append(append)
            .truncate(!append)
            .open(p)?;
        Ok(Box::new(RealWriteHandle { file: f }))
    }

    fn metadata(&self, path: &str) -> io::Result<FileMeta> {
        let m = std::fs::metadata(self.host_path(path))?;
        Ok(FileMeta {
            size: m.len(),
            is_dir: m.is_dir(),
        })
    }

    fn list_dir(&self, path: &str) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(self.host_path(path))? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        std::fs::remove_file(self.host_path(path))
    }

    fn remove_dir(&self, path: &str) -> io::Result<()> {
        std::fs::remove_dir(self.host_path(path))
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let to = self.host_path(to);
        if let Some(parent) = to.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::rename(self.host_path(from), to)
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        std::fs::File::open(self.host_path(path))?.sync_all()
    }

    fn sync_dir(&self, path: &str) -> io::Result<()> {
        // On Unix a directory opened read-only accepts fsync, which is
        // what makes a completed rename inside it durable.
        std::fs::File::open(self.host_path(path))?.sync_all()
    }
}

struct RealReadHandle {
    file: std::fs::File,
}

impl ReadHandle for RealReadHandle {
    fn read_chunk(&mut self, max: usize) -> io::Result<Option<Bytes>> {
        use std::io::Read;
        let mut buf = vec![0u8; max];
        let n = self.file.read(&mut buf)?;
        if n == 0 {
            return Ok(None);
        }
        buf.truncate(n);
        Ok(Some(Bytes::from(buf)))
    }
}

struct RealWriteHandle {
    file: std::fs::File,
}

impl WriteHandle for RealWriteHandle {
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.file.write_all(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_paths() {
        assert_eq!(normalize("/", "a/b"), "/a/b");
        assert_eq!(normalize("/x", "a"), "/x/a");
        assert_eq!(normalize("/x", "/a"), "/a");
        assert_eq!(normalize("/x/y", ".."), "/x");
        assert_eq!(normalize("/", "a//b/./c/../d"), "/a/b/d");
        assert_eq!(normalize("/", "../.."), "/");
    }

    #[test]
    fn memfs_write_then_read() {
        let fs = MemFs::new();
        write_file(&fs, "/f.txt", b"hello").unwrap();
        assert_eq!(read_to_vec(&fs, "/f.txt").unwrap(), b"hello");
        assert_eq!(fs.metadata("/f.txt").unwrap().size, 5);
    }

    #[test]
    fn memfs_append() {
        let fs = MemFs::new();
        write_file(&fs, "/f", b"ab").unwrap();
        let mut h = fs.open_write("/f", true).unwrap();
        h.write_all(b"cd").unwrap();
        assert_eq!(read_to_vec(&fs, "/f").unwrap(), b"abcd");
    }

    #[test]
    fn memfs_truncate_on_rewrite() {
        let fs = MemFs::new();
        write_file(&fs, "/f", b"long content").unwrap();
        write_file(&fs, "/f", b"x").unwrap();
        assert_eq!(read_to_vec(&fs, "/f").unwrap(), b"x");
    }

    #[test]
    fn memfs_missing_file_errors() {
        let fs = MemFs::new();
        assert!(fs.open_read("/nope").is_err());
        assert!(fs.metadata("/nope").is_err());
        assert!(fs.remove("/nope").is_err());
    }

    #[test]
    fn memfs_implicit_directories() {
        let fs = MemFs::new();
        fs.install("/dir/a.txt", b"1".to_vec());
        fs.install("/dir/sub/b.txt", b"2".to_vec());
        let meta = fs.metadata("/dir").unwrap();
        assert!(meta.is_dir);
        assert_eq!(fs.list_dir("/dir").unwrap(), vec!["a.txt", "sub"]);
    }

    #[test]
    fn memfs_remove() {
        let fs = MemFs::new();
        fs.install("/f", b"x".to_vec());
        fs.remove("/f").unwrap();
        assert!(!fs.exists("/f"));
    }

    #[test]
    fn memfs_rename_moves_atomically() {
        let fs = MemFs::new();
        fs.install("/out.stage", b"staged".to_vec());
        fs.install("/out", b"old".to_vec());
        fs.rename("/out.stage", "/out").unwrap();
        assert_eq!(read_to_vec(&fs, "/out").unwrap(), b"staged");
        assert!(!fs.exists("/out.stage"));
        assert!(fs.rename("/missing", "/x").is_err());
    }

    #[test]
    fn file_stream_reads_in_chunks() {
        let fs = MemFs::new();
        let payload: Vec<u8> = (0..300_000u32).map(|i| (i % 251) as u8).collect();
        fs.install("/big", payload.clone());
        let mut s = FileStream::open(&fs, "/big").unwrap();
        let got = crate::stream::read_all(&mut s).unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn memfs_reads_are_charged() {
        let fs = MemFs::with_disk(DiskModel::new(
            crate::DiskProfile::ramdisk().scaled(0.0),
        ));
        fs.install("/f", vec![0u8; 1000]);
        let _ = read_to_vec(&fs, "/f").unwrap();
        let stats = fs.disk().unwrap().stats();
        assert_eq!(stats.bytes_read, 1000);
    }

    #[test]
    fn realfs_roundtrip() {
        let dir = crate::tempdir::TempDir::new("jash-io-test");
        let fs = RealFs::new(dir.path());
        write_file(&fs, "/sub/file.txt", b"real").unwrap();
        assert_eq!(read_to_vec(&fs, "/sub/file.txt").unwrap(), b"real");
        assert!(fs.list_dir("/sub").unwrap().contains(&"file.txt".to_string()));
        fs.remove("/sub/file.txt").unwrap();
    }
}
