//! Deterministic fault injection for the virtual filesystem.
//!
//! The paper's soundness promise — "optimize only when safe — no
//! regressions!" (§3.2) — has to hold when commands *fail*, not just when
//! they are slow. This module provides the measurement instrument: a
//! [`FaultPlan`] describes, deterministically and seedably, which IO
//! operations misbehave and how; [`FaultFs`] decorates any [`Fs`] so the
//! same script can run under the same faults on every engine; and
//! [`FaultStream`] decorates a single [`ByteStream`] for unit-level
//! testing of operators.
//!
//! Faults are *sticky by default*: a rule keyed on a byte offset fires on
//! every handle that crosses that offset, so an optimized execution, its
//! sequential fallback, and a plain interpreted baseline all observe the
//! identical failure — which is exactly what the engine-equivalence fault
//! matrix needs. One-shot rules (`once`) model transient faults instead.
//!
//! # Example
//!
//! ```
//! use jash_io::fault::{FaultFs, FaultPlan};
//! use jash_io::Fs;
//!
//! let fs = jash_io::mem_fs();
//! jash_io::fs::write_file(fs.as_ref(), "/in", &vec![b'x'; 4096]).unwrap();
//! let plan = FaultPlan::new().read_error_at("/in", 1024, "injected: disk surface error");
//! let faulty = FaultFs::wrap(fs, plan);
//! let mut h = faulty.open_read("/in").unwrap();
//! let first = h.read_chunk(4096).unwrap();      // clean prefix released
//! assert_eq!(first.unwrap().len(), 1024);
//! assert!(h.read_chunk(4096).is_err());         // at byte 1024: injected
//! ```

use crate::cancel::CancelToken;
use crate::fs::{FileMeta, Fs, ReadHandle, WriteHandle};
use crate::FsHandle;
use bytes::Bytes;
use parking_lot::Mutex;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which filesystem operation a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Chunk reads through a read handle.
    Read,
    /// Writes through a write handle.
    Write,
    /// Opening for read or write.
    Open,
    /// Renames (the transactional commit step).
    Rename,
    /// Removals.
    Remove,
    /// fsyncs of files or directories (the durability barriers around
    /// commit).
    Sync,
}

/// What happens when a rule fires.
#[derive(Debug, Clone)]
pub enum FaultKind {
    /// The operation fails with an [`io::Error`] of this kind/message.
    Error {
        /// Error kind to inject.
        kind: io::ErrorKind,
        /// Human-readable message (prefixed with `injected:` by the
        /// convenience constructors so diagnostics are attributable).
        msg: String,
    },
    /// Reads return at most this many bytes per call (exercises chunking
    /// assumptions; never fails).
    ShortRead {
        /// Per-call byte cap.
        max: usize,
    },
    /// The stream ends early: reads at or past the trigger report EOF even
    /// though data remains (models mid-stream truncation / a dropped
    /// connection).
    Truncate,
    /// The operation blocks for this long before proceeding (models a
    /// wedged device). Interruptible via the plan's [`CancelToken`].
    Stall {
        /// Modeled delay.
        dur: Duration,
    },
}

/// When a matching rule fires.
#[derive(Debug, Clone, Copy)]
pub enum Trigger {
    /// Every matching operation.
    Always,
    /// Once the handle's byte position reaches this offset (reads report
    /// bytes below the offset normally first, so the failure point is
    /// byte-exact and chunk-size independent).
    AtByte(u64),
    /// On the Nth matching operation (1-based), counted plan-wide.
    AtOp(u64),
    /// On each of the first N matching operations, then disarms — a
    /// bounded burst (models a resource that is exhausted for a while and
    /// then frees up, e.g. a descriptor table under pressure).
    FirstOps(u64),
    /// Each matching operation fires with this probability, sampled from
    /// the plan's seeded generator — deterministic per seed.
    Probability(f64),
}

/// One injection rule.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Path the rule applies to (exact virtual path), or `None` for all.
    pub path: Option<String>,
    /// Operation class.
    pub op: FaultOp,
    /// Firing condition.
    pub trigger: Trigger,
    /// Effect.
    pub kind: FaultKind,
    /// Fire at most once, then disarm (transient fault). Sticky when
    /// false.
    pub once: bool,
}

/// A deterministic, seedable fault schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    seed: u64,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Sets the seed for probabilistic triggers.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds an arbitrary rule.
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Reads of `path` fail once the handle position reaches `offset`.
    pub fn read_error_at(self, path: &str, offset: u64, msg: &str) -> Self {
        self.rule(FaultRule {
            path: Some(path.to_string()),
            op: FaultOp::Read,
            trigger: Trigger::AtByte(offset),
            kind: FaultKind::Error {
                kind: io::ErrorKind::Other,
                msg: format!("injected: {msg}"),
            },
            once: false,
        })
    }

    /// Writes to `path` fail once the handle has written `offset` bytes.
    pub fn write_error_at(self, path: &str, offset: u64, msg: &str) -> Self {
        self.rule(FaultRule {
            path: Some(path.to_string()),
            op: FaultOp::Write,
            trigger: Trigger::AtByte(offset),
            kind: FaultKind::Error {
                kind: io::ErrorKind::Other,
                msg: format!("injected: {msg}"),
            },
            once: false,
        })
    }

    /// Reads of `path` report EOF once the handle position reaches
    /// `offset` (mid-stream truncation).
    pub fn truncate_at(self, path: &str, offset: u64) -> Self {
        self.rule(FaultRule {
            path: Some(path.to_string()),
            op: FaultOp::Read,
            trigger: Trigger::AtByte(offset),
            kind: FaultKind::Truncate,
            once: false,
        })
    }

    /// Reads of `path` return at most `max` bytes per call.
    pub fn short_reads(self, path: &str, max: usize) -> Self {
        self.rule(FaultRule {
            path: Some(path.to_string()),
            op: FaultOp::Read,
            trigger: Trigger::Always,
            kind: FaultKind::ShortRead { max: max.max(1) },
            once: false,
        })
    }

    /// Every read of `path` stalls for `dur` before returning.
    pub fn stall_reads(self, path: &str, dur: Duration) -> Self {
        self.rule(FaultRule {
            path: Some(path.to_string()),
            op: FaultOp::Read,
            trigger: Trigger::Always,
            kind: FaultKind::Stall { dur },
            once: false,
        })
    }

    /// Opening `path` fails outright.
    pub fn open_error(self, path: &str, msg: &str) -> Self {
        self.rule(FaultRule {
            path: Some(path.to_string()),
            op: FaultOp::Open,
            trigger: Trigger::Always,
            kind: FaultKind::Error {
                kind: io::ErrorKind::Other,
                msg: format!("injected: {msg}"),
            },
            once: false,
        })
    }

    /// The first `n` opens of `path` fail with a resource-exhaustion
    /// error ("resource temporarily unavailable"), then the resource
    /// frees up. Classified `Resource` by the supervision taxonomy, so
    /// this is the canonical way to exercise width degradation.
    pub fn resource_open_errors(self, path: &str, n: u64) -> Self {
        self.rule(FaultRule {
            path: Some(path.to_string()),
            op: FaultOp::Open,
            trigger: Trigger::FirstOps(n),
            kind: FaultKind::Error {
                kind: io::ErrorKind::Other,
                msg: "injected: resource temporarily unavailable".to_string(),
            },
            once: false,
        })
    }

    /// Writes to `path` stall for `dur` once the handle has written
    /// `offset` bytes. With the staging-suffix stripping below, a rule on
    /// a final output path holds its *staged* write mid-flight — the
    /// deterministic crash window the kill/resume sweep SIGKILLs into.
    pub fn stall_writes_at(self, path: &str, offset: u64, dur: Duration) -> Self {
        self.rule(FaultRule {
            path: Some(path.to_string()),
            op: FaultOp::Write,
            trigger: Trigger::AtByte(offset),
            kind: FaultKind::Stall { dur },
            once: false,
        })
    }

    /// fsyncing `path` fails (a dying device acknowledges writes but
    /// cannot flush them).
    pub fn sync_error(self, path: &str, msg: &str) -> Self {
        self.rule(FaultRule {
            path: Some(path.to_string()),
            op: FaultOp::Sync,
            trigger: Trigger::Always,
            kind: FaultKind::Error {
                kind: io::ErrorKind::Other,
                msg: format!("injected: {msg}"),
            },
            once: false,
        })
    }

    /// Renaming onto (or from) `path` fails (breaks the commit step).
    pub fn rename_error(self, path: &str, msg: &str) -> Self {
        self.rule(FaultRule {
            path: Some(path.to_string()),
            op: FaultOp::Rename,
            trigger: Trigger::Always,
            kind: FaultKind::Error {
                kind: io::ErrorKind::Other,
                msg: format!("injected: {msg}"),
            },
            once: false,
        })
    }

    /// Whether the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Strips the executor's transactional staging suffix (`.jash-stage-N`)
/// so fault rules aimed at a final path also govern its staged writes —
/// otherwise an optimized (staged) run and its sequential rerun would see
/// different faults and the engine-equivalence guarantee would not hold.
fn logical_path(path: &str) -> &str {
    const MARK: &str = ".jash-stage-";
    match path.rfind(MARK) {
        Some(i)
            if path.len() > i + MARK.len()
                && path[i + MARK.len()..].bytes().all(|b| b.is_ascii_digit()) =>
        {
            &path[..i]
        }
        _ => path,
    }
}

/// Shared runtime state of an armed plan.
struct PlanState {
    rules: Vec<FaultRule>,
    /// Per-rule state: op counter (for `AtOp`) and a fired flag (for
    /// `once`). A fired `once` rule stays disarmed forever.
    op_counts: Vec<AtomicU64>,
    fired: Vec<AtomicU64>,
    rng: Mutex<u64>,
    cancel: Option<CancelToken>,
    /// Total faults injected so far (for reporting).
    injected: AtomicU64,
}

impl PlanState {
    fn new(plan: FaultPlan, cancel: Option<CancelToken>) -> Self {
        let n = plan.rules.len();
        PlanState {
            op_counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            fired: (0..n).map(|_| AtomicU64::new(0)).collect(),
            rng: Mutex::new(plan.seed | 1),
            rules: plan.rules,
            cancel,
            injected: AtomicU64::new(0),
        }
    }

    fn next_random_unit(&self) -> f64 {
        // xorshift64*; good enough for fault sampling, fully deterministic.
        let mut s = self.rng.lock();
        let mut x = *s;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *s = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decides whether `rule_idx` fires for an op at byte `pos` reading
    /// `len` bytes. Returns the number of clean bytes before the fault
    /// (for byte triggers), or `None` when the rule does not fire.
    fn fires(&self, rule_idx: usize, pos: u64) -> Option<u64> {
        let rule = &self.rules[rule_idx];
        if rule.once && self.fired[rule_idx].load(Ordering::SeqCst) > 0 {
            return None;
        }
        let hit = match rule.trigger {
            Trigger::Always => Some(u64::MAX),
            Trigger::AtByte(off) => {
                if pos >= off {
                    Some(0)
                } else {
                    Some(off - pos)
                }
            }
            Trigger::AtOp(n) => {
                let seen = self.op_counts[rule_idx].fetch_add(1, Ordering::SeqCst) + 1;
                if seen == n || (!rule.once && seen >= n) {
                    Some(u64::MAX)
                } else {
                    None
                }
            }
            Trigger::FirstOps(n) => {
                let seen = self.op_counts[rule_idx].fetch_add(1, Ordering::SeqCst) + 1;
                if seen <= n {
                    Some(u64::MAX)
                } else {
                    None
                }
            }
            Trigger::Probability(p) => {
                if self.next_random_unit() < p {
                    Some(u64::MAX)
                } else {
                    None
                }
            }
        };
        match hit {
            Some(u64::MAX) => Some(0),
            other => other,
        }
    }

    fn mark_fired(&self, rule_idx: usize) {
        self.fired[rule_idx].fetch_add(1, Ordering::SeqCst);
        self.injected.fetch_add(1, Ordering::SeqCst);
    }

    fn matching(&self, path: &str, op: FaultOp) -> Vec<usize> {
        let path = logical_path(path);
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.op == op && r.path.as_deref().is_none_or(|p| p == path))
            .map(|(i, _)| i)
            .collect()
    }

    fn stall(&self, dur: Duration) -> io::Result<()> {
        match &self.cancel {
            Some(tok) => tok.sleep(dur),
            None => {
                std::thread::sleep(dur);
                Ok(())
            }
        }
    }
}

/// An [`Fs`] decorator injecting the plan's faults.
///
/// Wraps any filesystem handle; every engine that takes an [`FsHandle`]
/// can therefore run under faults with no further plumbing.
pub struct FaultFs {
    inner: FsHandle,
    state: Arc<PlanState>,
}

impl FaultFs {
    /// Wraps `inner` under `plan`, returning a new handle.
    pub fn wrap(inner: FsHandle, plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultFs {
            inner,
            state: Arc::new(PlanState::new(plan, None)),
        })
    }

    /// Like [`FaultFs::wrap`], with stalls interruptible through `cancel`.
    pub fn wrap_with_cancel(inner: FsHandle, plan: FaultPlan, cancel: CancelToken) -> Arc<Self> {
        Arc::new(FaultFs {
            inner,
            state: Arc::new(PlanState::new(plan, Some(cancel))),
        })
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.injected.load(Ordering::SeqCst)
    }

    /// The wrapped filesystem.
    pub fn inner(&self) -> &FsHandle {
        &self.inner
    }

    /// Checks `Always`-style faults for a whole-operation class (open,
    /// rename, remove).
    fn check_op(&self, path: &str, op: FaultOp) -> io::Result<()> {
        for i in self.state.matching(path, op) {
            if self.state.fires(i, 0) == Some(0) {
                match &self.state.rules[i].kind {
                    FaultKind::Error { kind, msg } => {
                        self.state.mark_fired(i);
                        return Err(io::Error::new(*kind, format!("{path}: {msg}")));
                    }
                    FaultKind::Stall { dur } => {
                        self.state.mark_fired(i);
                        self.state.stall(*dur)?;
                    }
                    // Short reads / truncation are stream-level effects.
                    FaultKind::ShortRead { .. } | FaultKind::Truncate => {}
                }
            }
        }
        Ok(())
    }
}

impl Fs for FaultFs {
    fn open_read(&self, path: &str) -> io::Result<Box<dyn ReadHandle>> {
        let path = crate::fs::normalize("/", path);
        self.check_op(&path, FaultOp::Open)?;
        let inner = self.inner.open_read(&path)?;
        Ok(Box::new(FaultReadHandle {
            inner,
            path,
            pos: 0,
            pending: None,
            state: Arc::clone(&self.state),
        }))
    }

    fn open_write(&self, path: &str, append: bool) -> io::Result<Box<dyn WriteHandle>> {
        let path = crate::fs::normalize("/", path);
        self.check_op(&path, FaultOp::Open)?;
        let inner = self.inner.open_write(&path, append)?;
        Ok(Box::new(FaultWriteHandle {
            inner,
            path,
            pos: 0,
            state: Arc::clone(&self.state),
        }))
    }

    fn metadata(&self, path: &str) -> io::Result<FileMeta> {
        self.inner.metadata(path)
    }

    fn list_dir(&self, path: &str) -> io::Result<Vec<String>> {
        self.inner.list_dir(path)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        let path = crate::fs::normalize("/", path);
        self.check_op(&path, FaultOp::Remove)?;
        self.inner.remove(&path)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let from = crate::fs::normalize("/", from);
        let to = crate::fs::normalize("/", to);
        self.check_op(&from, FaultOp::Rename)?;
        self.check_op(&to, FaultOp::Rename)?;
        self.inner.rename(&from, &to)
    }

    fn disk(&self) -> Option<Arc<crate::disk::DiskModel>> {
        self.inner.disk()
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        let path = crate::fs::normalize("/", path);
        self.check_op(&path, FaultOp::Sync)?;
        self.inner.sync(&path)
    }

    fn sync_dir(&self, path: &str) -> io::Result<()> {
        let path = crate::fs::normalize("/", path);
        self.check_op(&path, FaultOp::Sync)?;
        self.inner.sync_dir(&path)
    }
}

struct FaultReadHandle {
    inner: Box<dyn ReadHandle>,
    path: String,
    pos: u64,
    /// A chunk already pulled from the inner handle but only partially
    /// released (the clean prefix before a byte-triggered fault).
    pending: Option<Bytes>,
    state: Arc<PlanState>,
}

impl ReadHandle for FaultReadHandle {
    fn read_chunk(&mut self, max: usize) -> io::Result<Option<Bytes>> {
        let mut max = max.max(1);

        // Pre-read effects: stalls, short-read caps, and faults whose
        // trigger point is at or before the current position.
        let mut clean_limit = u64::MAX;
        for i in self.state.matching(&self.path, FaultOp::Read) {
            let Some(clean) = self.state.fires(i, self.pos) else {
                continue;
            };
            match &self.state.rules[i].kind {
                FaultKind::Stall { dur } => {
                    if clean == 0 {
                        self.state.mark_fired(i);
                        self.state.stall(*dur)?;
                    }
                }
                FaultKind::ShortRead { max: cap } => {
                    if clean == 0 {
                        max = max.min(*cap);
                    }
                }
                FaultKind::Error { kind, msg } => {
                    if clean == 0 {
                        self.state.mark_fired(i);
                        return Err(io::Error::new(
                            *kind,
                            format!("{}: {msg} (at byte {})", self.path, self.pos),
                        ));
                    }
                    clean_limit = clean_limit.min(clean);
                }
                FaultKind::Truncate => {
                    if clean == 0 {
                        self.state.mark_fired(i);
                        return Ok(None);
                    }
                    clean_limit = clean_limit.min(clean);
                }
            }
        }

        // Release only the clean prefix, so the fault lands byte-exactly
        // on the next call regardless of the caller's chunk size.
        max = max.min(clean_limit.min(usize::MAX as u64) as usize);
        let chunk = match self.pending.take() {
            Some(p) => Some(p),
            None => self.inner.read_chunk(max)?,
        };
        let Some(chunk) = chunk else { return Ok(None) };
        if chunk.len() > max {
            self.pending = Some(chunk.slice(max..));
            let head = chunk.slice(..max);
            self.pos += head.len() as u64;
            return Ok(Some(head));
        }
        self.pos += chunk.len() as u64;
        Ok(Some(chunk))
    }
}

struct FaultWriteHandle {
    inner: Box<dyn WriteHandle>,
    path: String,
    pos: u64,
    state: Arc<PlanState>,
}

impl WriteHandle for FaultWriteHandle {
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        for i in self.state.matching(&self.path, FaultOp::Write) {
            let Some(clean) = self.state.fires(i, self.pos) else {
                continue;
            };
            match &self.state.rules[i].kind {
                FaultKind::Error { kind, msg } => {
                    // Cross-call byte precision: write the clean prefix,
                    // then fail.
                    if (clean as usize) < data.len() {
                        if clean > 0 {
                            self.inner.write_all(&data[..clean as usize])?;
                            self.pos += clean;
                        }
                        self.state.mark_fired(i);
                        return Err(io::Error::new(
                            *kind,
                            format!("{}: {msg} (at byte {})", self.path, self.pos),
                        ));
                    }
                }
                FaultKind::Stall { dur } => {
                    if clean == 0 {
                        self.state.mark_fired(i);
                        self.state.stall(*dur)?;
                    }
                }
                FaultKind::ShortRead { .. } | FaultKind::Truncate => {}
            }
        }
        self.inner.write_all(data)?;
        self.pos += data.len() as u64;
        Ok(())
    }
}

/// A [`ByteStream`] decorator applying read-class faults to one stream.
///
/// For operator-level tests that have no filesystem in play (pipes,
/// merges, splits).
pub struct FaultStream {
    inner: Box<dyn crate::ByteStream>,
    handle: FaultReadHandle,
}

impl FaultStream {
    /// Wraps `inner` under `plan`; rules match the pseudo-path
    /// `"<stream>"` or `None`.
    pub fn new(inner: Box<dyn crate::ByteStream>, plan: FaultPlan) -> Self {
        FaultStream {
            inner,
            handle: FaultReadHandle {
                inner: Box::new(NullRead),
                path: "<stream>".to_string(),
                pos: 0,
                pending: None,
                state: Arc::new(PlanState::new(plan, None)),
            },
        }
    }
}

struct NullRead;

impl ReadHandle for NullRead {
    fn read_chunk(&mut self, _max: usize) -> io::Result<Option<Bytes>> {
        Ok(None)
    }
}

impl crate::ByteStream for FaultStream {
    fn next_chunk(&mut self) -> io::Result<Option<Bytes>> {
        // Feed the inner stream through the handle's fault logic: stage
        // the next chunk as `pending`, then let the handle release it.
        if self.handle.pending.is_none() {
            self.handle.pending = self.inner.next_chunk()?;
            if self.handle.pending.is_none() {
                // Still consult rules (an Always error must fire at EOF
                // boundaries too), then report end of stream.
                return self.handle.read_chunk(crate::DEFAULT_CHUNK);
            }
        }
        self.handle.read_chunk(crate::DEFAULT_CHUNK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{read_to_vec, write_file};
    use crate::MemStream;

    fn staged(path: &str, len: usize) -> FsHandle {
        let fs = crate::mem_fs();
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        write_file(fs.as_ref(), path, &data).unwrap();
        fs
    }

    #[test]
    fn read_error_fires_byte_exactly() {
        let fs = staged("/f", 10_000);
        let faulty = FaultFs::wrap(fs, FaultPlan::new().read_error_at("/f", 4096, "boom"));
        let mut h = faulty.open_read("/f").unwrap();
        let mut got = 0usize;
        let err = loop {
            match h.read_chunk(1000) {
                Ok(Some(c)) => got += c.len(),
                Ok(None) => panic!("hit EOF before the injected error"),
                Err(e) => break e,
            }
        };
        assert_eq!(got, 4096, "clean prefix must be byte-exact");
        assert!(err.to_string().contains("injected: boom"));
        assert_eq!(faulty.injected(), 1);
    }

    #[test]
    fn truncation_ends_the_stream_early() {
        let fs = staged("/f", 10_000);
        let faulty = FaultFs::wrap(fs, FaultPlan::new().truncate_at("/f", 1234));
        let got = read_to_vec(faulty.as_ref(), "/f").unwrap();
        assert_eq!(got.len(), 1234);
    }

    #[test]
    fn short_reads_cap_chunk_size() {
        let fs = staged("/f", 5_000);
        let faulty = FaultFs::wrap(fs, FaultPlan::new().short_reads("/f", 7));
        let mut h = faulty.open_read("/f").unwrap();
        let mut total = 0;
        while let Some(c) = h.read_chunk(4096).unwrap() {
            assert!(c.len() <= 7);
            total += c.len();
        }
        assert_eq!(total, 5_000, "short reads must not lose data");
    }

    #[test]
    fn write_error_keeps_clean_prefix() {
        let fs = staged("/seed", 1);
        let faulty = FaultFs::wrap(
            Arc::clone(&fs),
            FaultPlan::new().write_error_at("/out", 100, "disk full"),
        );
        let mut h = faulty.open_write("/out", false).unwrap();
        let err = h.write_all(&[b'a'; 300]).unwrap_err();
        assert!(err.to_string().contains("disk full"));
        assert_eq!(fs.metadata("/out").unwrap().size, 100);
    }

    #[test]
    fn open_error_fires_for_reads_and_writes() {
        let fs = staged("/f", 10);
        let faulty = FaultFs::wrap(fs, FaultPlan::new().open_error("/f", "gone"));
        assert!(faulty.open_read("/f").is_err());
        assert!(faulty.open_write("/f", false).is_err());
    }

    #[test]
    fn unrelated_paths_are_untouched() {
        let fs = staged("/f", 100);
        write_file(fs.as_ref(), "/other", b"fine").unwrap();
        let faulty = FaultFs::wrap(fs, FaultPlan::new().read_error_at("/f", 0, "x"));
        assert_eq!(read_to_vec(faulty.as_ref(), "/other").unwrap(), b"fine");
        assert!(faulty.open_read("/f").unwrap().read_chunk(10).is_err());
    }

    #[test]
    fn probability_rules_are_deterministic_per_seed() {
        let count_failures = |seed: u64| {
            let fs = staged("/f", 100);
            let plan = FaultPlan::new().with_seed(seed).rule(FaultRule {
                path: Some("/f".to_string()),
                op: FaultOp::Open,
                trigger: Trigger::Probability(0.5),
                kind: FaultKind::Error {
                    kind: io::ErrorKind::Other,
                    msg: "injected: flaky".to_string(),
                },
                once: false,
            });
            let faulty = FaultFs::wrap(fs, plan);
            (0..100)
                .filter(|_| faulty.open_read("/f").is_err())
                .count()
        };
        let a = count_failures(42);
        let b = count_failures(42);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a > 10 && a < 90, "p=0.5 should fire sometimes ({a}/100)");
    }

    #[test]
    fn once_rules_disarm_after_firing() {
        let fs = staged("/f", 100);
        let plan = FaultPlan::new().rule(FaultRule {
            path: Some("/f".to_string()),
            op: FaultOp::Open,
            trigger: Trigger::AtOp(1),
            kind: FaultKind::Error {
                kind: io::ErrorKind::Other,
                msg: "injected: transient".to_string(),
            },
            once: true,
        });
        let faulty = FaultFs::wrap(fs, plan);
        assert!(faulty.open_read("/f").is_err());
        assert!(faulty.open_read("/f").is_ok(), "transient fault must clear");
    }

    #[test]
    fn first_ops_trigger_fires_then_frees_up() {
        let fs = staged("/f", 100);
        let faulty = FaultFs::wrap(fs, FaultPlan::new().resource_open_errors("/f", 2));
        let e1 = match faulty.open_read("/f") {
            Err(e) => e,
            Ok(_) => panic!("first open must fail"),
        };
        assert!(e1.to_string().contains("resource temporarily unavailable"));
        assert!(faulty.open_read("/f").is_err());
        assert!(
            faulty.open_read("/f").is_ok(),
            "the resource must free up after n ops"
        );
        assert!(faulty.open_read("/f").is_ok());
        assert_eq!(faulty.injected(), 2);
    }

    #[test]
    fn stall_is_interruptible_via_cancel() {
        let fs = staged("/f", 100);
        let token = CancelToken::new();
        let faulty = FaultFs::wrap_with_cancel(
            fs,
            FaultPlan::new().stall_reads("/f", Duration::from_secs(60)),
            token.clone(),
        );
        let h = std::thread::spawn(move || {
            let mut r = faulty.open_read("/f").unwrap();
            r.read_chunk(10)
        });
        std::thread::sleep(Duration::from_millis(30));
        token.cancel("watchdog: node stalled");
        let err = h.join().unwrap().unwrap_err();
        assert!(err.to_string().contains("watchdog"));
    }

    #[test]
    fn fault_stream_decorates_plain_streams() {
        let chunks = vec![Bytes::from(vec![b'a'; 600]), Bytes::from(vec![b'b'; 600])];
        let inner = Box::new(MemStream::from_chunks(chunks));
        let plan = FaultPlan::new().truncate_at("<stream>", 700);
        let mut s = FaultStream::new(inner, plan);
        let got = crate::stream::read_all(&mut s).unwrap();
        assert_eq!(got.len(), 700);
    }

    #[test]
    fn staging_paths_inherit_final_path_rules() {
        let fs = staged("/seed", 1);
        let faulty = FaultFs::wrap(
            Arc::clone(&fs),
            FaultPlan::new().write_error_at("/out", 10, "dying disk"),
        );
        // The executor stages transactional writes at `<path>.jash-stage-N`;
        // rules on the final path must fire there too.
        let mut h = faulty.open_write("/out.jash-stage-3", false).unwrap();
        assert!(h.write_all(&[b'z'; 64]).is_err());
        // But an unrelated path that merely contains the marker pattern
        // with a non-numeric tail is matched verbatim.
        let mut h = faulty.open_write("/out.jash-stage-x", false).unwrap();
        assert!(h.write_all(&[b'z'; 64]).is_ok());
    }

    #[test]
    fn rename_faults_break_commits() {
        let fs = staged("/stage", 10);
        let faulty = FaultFs::wrap(fs, FaultPlan::new().rename_error("/final", "commit torn"));
        let err = faulty.rename("/stage", "/final").unwrap_err();
        assert!(err.to_string().contains("commit torn"));
    }
}
