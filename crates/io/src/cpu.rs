//! Simulated multi-core CPU model.
//!
//! Companion to [`crate::disk`]: where the disk model makes one device's
//! contention visible, the CPU model makes *N cores'* parallelism visible
//! — even when the host has fewer physical cores than the machine being
//! modeled (the paper's c5.2xlarge has 8 vCPUs; CI containers often have
//! one).
//!
//! Each virtual core is a completion horizon. A charge picks the earliest
//! free core, advances it by the modeled duration, and sleeps until that
//! completion. Concurrent streams (parallel clones, pipeline stages) land
//! on different cores and overlap; more streams than cores queue — so
//! measured wall time scales the way the modeled machine would, as long
//! as the modeled durations dominate the host's real compute time (pick
//! `time_scale` accordingly).

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Modeled per-command processing rates, bytes/second on one modeled core.
///
/// Relative magnitudes are what matter (`sort` ≪ `cat`); see the cost
/// model in `jash-cost`, which uses the same table for its estimates —
/// keeping the planner's beliefs and the simulation consistent.
pub fn cpu_rate(command: &str) -> f64 {
    const MB: f64 = 1024.0 * 1024.0;
    match command {
        "cat" | "tee" => 2000.0 * MB,
        "wc" => 800.0 * MB,
        "cut" => 400.0 * MB,
        "tr" => 300.0 * MB,
        "grep" => 120.0 * MB,
        "uniq" => 500.0 * MB,
        "comm" | "join" => 300.0 * MB,
        "sort" => 60.0 * MB,
        "sed" => 80.0 * MB,
        "rev" | "fold" | "nl" | "paste" => 250.0 * MB,
        "head" | "tail" => 1500.0 * MB,
        _ => 100.0 * MB,
    }
}

/// Modeled throughput of a fused kernel running `names` in one pass.
///
/// A fused chain still does every stage's per-byte work, but on one
/// core with no channel hops, no per-stage buffer copies, and no
/// cross-thread handoff — modeled as 2× the harmonic composition of the
/// member rates. The cost model uses the same formula, and `--calibrate`
/// replaces it with measured `fused` span throughput.
pub fn fused_cpu_rate(names: &[&str]) -> f64 {
    let inv: f64 = names.iter().map(|n| 1.0 / cpu_rate(n)).sum();
    if inv <= 0.0 {
        return cpu_rate("");
    }
    2.0 / inv
}

/// An N-core virtual CPU.
///
/// A model is either the *machine* (owns the core horizons) or a tenant
/// *sub-account* created by [`CpuModel::sub_model`]: the sub-account
/// tallies its own busy time and a [`crate::UsageMeter`], then forwards
/// the charge to its parent so global queueing and contention still
/// happen on the shared cores.
pub struct CpuModel {
    cores: Mutex<Vec<Duration>>,
    epoch: Instant,
    time_scale: f64,
    busy_ns: std::sync::atomic::AtomicU64,
    parent: Option<Arc<CpuModel>>,
    meter: Option<Arc<crate::UsageMeter>>,
}

impl CpuModel {
    /// A model with `cores` virtual cores; all modeled durations are
    /// multiplied by `time_scale`.
    pub fn new(cores: usize, time_scale: f64) -> Arc<Self> {
        Arc::new(CpuModel {
            cores: Mutex::new(vec![Duration::ZERO; cores.max(1)]),
            epoch: Instant::now(),
            time_scale,
            busy_ns: std::sync::atomic::AtomicU64::new(0),
            parent: None,
            meter: None,
        })
    }

    /// A tenant-scoped sub-account of this model: charges are recorded on
    /// `meter` (and the sub-account's own busy tally), then forwarded to
    /// this model, so per-tenant attribution never changes the machine's
    /// modeled contention.
    pub fn sub_model(self: &Arc<Self>, meter: Arc<crate::UsageMeter>) -> Arc<CpuModel> {
        Arc::new(CpuModel {
            cores: Mutex::new(Vec::new()),
            epoch: self.epoch,
            time_scale: self.time_scale,
            busy_ns: std::sync::atomic::AtomicU64::new(0),
            parent: Some(Arc::clone(self)),
            meter: Some(meter),
        })
    }

    /// Charges `seconds` of modeled single-core work and blocks until the
    /// modeled completion instant.
    pub fn charge(&self, seconds: f64) {
        if seconds <= 0.0 {
            return;
        }
        self.busy_ns.fetch_add(
            (seconds * 1e9) as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        if let Some(meter) = &self.meter {
            meter.add_cpu_ns((seconds * 1e9) as u64);
        }
        if let Some(parent) = &self.parent {
            // Queueing and sleeping happen on the shared machine cores.
            return parent.charge(seconds);
        }
        let service = Duration::from_secs_f64(seconds * self.time_scale);
        let wait = {
            let mut cores = self.cores.lock();
            let now = self.epoch.elapsed();
            // Earliest-free core takes the work.
            let (idx, _) = cores
                .iter()
                .enumerate()
                .min_by_key(|(_, h)| **h)
                .expect("at least one core");
            let start = cores[idx].max(now);
            cores[idx] = start + service;
            cores[idx].saturating_sub(now)
        };
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
    }

    /// Total modeled busy seconds across all cores (unscaled).
    pub fn busy_seconds(&self) -> f64 {
        self.busy_ns.load(std::sync::atomic::Ordering::Relaxed) as f64 / 1e9
    }

    /// Number of modeled cores (a sub-account reports its machine's).
    pub fn cores(&self) -> usize {
        match &self.parent {
            Some(p) => p.cores(),
            None => self.cores.lock().len(),
        }
    }
}

/// Wraps a stream so consuming it charges modeled CPU time.
pub struct CpuMeteredStream<S> {
    inner: S,
    model: Arc<CpuModel>,
    seconds_per_byte: f64,
}

impl<S> CpuMeteredStream<S> {
    /// Meters `inner` at `rate` bytes/second.
    pub fn new(inner: S, model: Arc<CpuModel>, rate: f64) -> Self {
        CpuMeteredStream {
            inner,
            model,
            seconds_per_byte: 1.0 / rate.max(1.0),
        }
    }
}

impl<S: crate::ByteStream> crate::ByteStream for CpuMeteredStream<S> {
    fn next_chunk(&mut self) -> std::io::Result<Option<bytes::Bytes>> {
        let chunk = self.inner.next_chunk()?;
        if let Some(c) = &chunk {
            self.model.charge(c.len() as f64 * self.seconds_per_byte);
        }
        Ok(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{read_all, MemStream};

    #[test]
    fn rates_relative_order() {
        assert!(cpu_rate("cat") > cpu_rate("grep"));
        assert!(cpu_rate("grep") > cpu_rate("sort"));
    }

    #[test]
    fn parallel_charges_overlap_across_cores() {
        // 4 threads × 20ms of modeled work on 4 cores ≈ 20ms; on 1 core
        // ≈ 80ms.
        let elapsed = |cores: usize| {
            let m = CpuModel::new(cores, 1.0);
            let t0 = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let m = Arc::clone(&m);
                    s.spawn(move || m.charge(0.02));
                }
            });
            t0.elapsed()
        };
        let wide = elapsed(4);
        let narrow = elapsed(1);
        assert!(
            narrow.as_secs_f64() > wide.as_secs_f64() * 2.0,
            "narrow {narrow:?} vs wide {wide:?}"
        );
    }

    #[test]
    fn metered_stream_charges_per_byte() {
        let m = CpuModel::new(1, 1.0);
        let inner = MemStream::from_bytes(vec![0u8; 1024 * 1024]);
        // 1 MiB at 32 MiB/s ≈ 31ms.
        let mut s = CpuMeteredStream::new(inner, Arc::clone(&m), 32.0 * 1024.0 * 1024.0);
        let t0 = Instant::now();
        let data = read_all(&mut s).unwrap();
        assert_eq!(data.len(), 1024 * 1024);
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert!(m.busy_seconds() > 0.02);
    }

    #[test]
    fn zero_charge_is_free() {
        let m = CpuModel::new(2, 1.0);
        m.charge(0.0);
        assert_eq!(m.busy_seconds(), 0.0);
    }
}
