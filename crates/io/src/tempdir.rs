//! Shared scratch-directory guard for tests and harnesses that touch the
//! real filesystem.
//!
//! Integration tests and the bench crash sweep need genuine on-disk
//! roots (a `RealFs`, a real child process, real SIGKILL). Hand-rolled
//! `std::env::temp_dir().join(...)` scratch dirs leak whenever the test
//! panics before its trailing `remove_dir_all` — and a panicking test is
//! exactly when a later run must not find stale journals or
//! `.jash-stage-*` debris from the last one. [`TempDir`] is the RAII
//! answer: creation is collision-free across processes and threads, and
//! the directory is removed on drop, which Rust runs during unwinding
//! too.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// An owned scratch directory under the system temp dir, removed
/// (recursively) when the guard drops — including on panic.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
    keep: bool,
}

impl TempDir {
    /// Creates a fresh, empty directory named after `prefix`, the
    /// process id, and a process-wide counter, so concurrent tests and
    /// concurrent *processes* never collide.
    ///
    /// # Panics
    /// Panics if the directory cannot be created — scratch space is a
    /// test precondition, not a recoverable condition.
    #[must_use]
    pub fn new(prefix: &str) -> Self {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "{prefix}-{}-{n}",
            std::process::id()
        ));
        // A clash can only be leftovers from a dead run with our pid
        // recycled; reclaim it.
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path)
            .unwrap_or_else(|e| panic!("create scratch dir {}: {e}", path.display()));
        Self { path, keep: false }
    }

    /// The directory's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Disarms cleanup, leaving the directory on disk (e.g. to inspect a
    /// failure by hand). Returns the path.
    pub fn keep(mut self) -> PathBuf {
        self.keep = true;
        self.path.clone()
    }

    /// Recursively lists files under the guard whose *file name* matches
    /// `pred` — the audit primitive for "no `.jash-stage-*` or journal
    /// debris left behind".
    #[must_use]
    pub fn find_files(&self, pred: impl Fn(&str) -> bool) -> Vec<PathBuf> {
        let mut found = Vec::new();
        let mut stack = vec![self.path.clone()];
        while let Some(dir) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&dir) else {
                continue;
            };
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.file_name().and_then(|n| n.to_str()).is_some_and(&pred) {
                    found.push(p);
                }
            }
        }
        found.sort();
        found
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if !self.keep {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_removes_on_drop() {
        let a = TempDir::new("jash-guard");
        let b = TempDir::new("jash-guard");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir() && b.path().is_dir());
        let (pa, pb) = (a.path().to_path_buf(), b.path().to_path_buf());
        std::fs::write(pa.join("f"), b"x").unwrap();
        drop(a);
        drop(b);
        assert!(!pa.exists(), "guard must remove its dir");
        assert!(!pb.exists());
    }

    #[test]
    fn cleans_up_even_when_the_owner_panics() {
        let leaked = std::sync::Mutex::new(PathBuf::new());
        let r = std::panic::catch_unwind(|| {
            let t = TempDir::new("jash-guard-panic");
            std::fs::write(t.path().join("debris.jash-stage-1"), b"x").unwrap();
            *leaked.lock().unwrap() = t.path().to_path_buf();
            panic!("boom");
        });
        assert!(r.is_err());
        let path = leaked.lock().unwrap().clone();
        assert!(
            !path.exists(),
            "unwinding must still sweep the scratch dir"
        );
    }

    #[test]
    fn keep_disarms_cleanup_and_find_files_audits_debris() {
        let t = TempDir::new("jash-guard-keep");
        std::fs::create_dir_all(t.path().join("deep")).unwrap();
        std::fs::write(t.path().join("deep/out.jash-stage-3"), b"x").unwrap();
        std::fs::write(t.path().join("clean.txt"), b"x").unwrap();
        let debris = t.find_files(|n| n.contains(".jash-stage-"));
        assert_eq!(debris.len(), 1);
        let path = t.keep();
        assert!(path.exists(), "keep() must leave the dir behind");
        std::fs::remove_dir_all(&path).unwrap();
    }
}
