//! The serve admission ledger: a durable record of every submission the
//! daemon accepted and every terminal result it produced.
//!
//! The per-run execution [`crate::journal`] makes one *run* crash-safe;
//! the ledger makes the *daemon* crash-safe. Before a `jash serve`
//! instance answers `Accepted` it appends [`LedgerRecord::Accepted`]
//! (idempotency key, tenant, script, script hash) here, and when the run
//! reaches a terminal state it writes the result blobs
//! ([`write_result_blobs`], data before metadata) and then appends
//! [`LedgerRecord::Done`]. A restarted daemon replays the ledger
//! ([`Ledger::replay`] + [`fold`]) and knows exactly which runs were in
//! flight when it died (accepted, no `Done` — the orphans to finalize)
//! and which finished (cached results to replay to duplicate
//! submissions).
//!
//! The on-disk format is the journal's: one checksummed line per record
//! (`<fnv1a:016x> <payload>`), percent-escaped fields, torn-tail
//! detection on replay — a half-written final record from a crash
//! mid-append is dropped, never trusted. Like the journal, the ledger is
//! `cat`-debuggable on purpose.

use crate::fs::Fs;
use crate::journal::{escape, parent_dir, unescape};
use crate::memo::fnv1a;
use crate::FsHandle;
use std::collections::HashMap;
use std::io;

/// One admission-ledger record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerRecord {
    /// A submission was admitted; written *before* the `Accepted` frame,
    /// so every run the daemon ever promised to execute is on record.
    Accepted {
        /// Daemon-wide run id (also the `run-<id>` journal scope name).
        run_id: u64,
        /// Client-supplied idempotency key; empty = none.
        key: String,
        /// Tenant label.
        tenant: String,
        /// Wall-clock limit the submission asked for (0 = none).
        timeout_ms: u64,
        /// FNV-1a of the script bytes — an end-to-end integrity check
        /// over and above the per-line checksum; a mismatch on replay
        /// marks the record corrupt rather than executing a mangled
        /// script at recovery.
        script_hash: u64,
        /// The script source itself, so recovery can finalize the run
        /// without the (dead) client.
        script: String,
    },
    /// The run reached a terminal state; its result blobs were written
    /// before this record.
    Done {
        /// Run id, matching a prior `Accepted`.
        run_id: u64,
        /// Exit status the client was (or will be) told.
        status: i32,
        /// Abort reason, when the run was cancelled rather than run to
        /// completion.
        aborted: Option<String>,
    },
}

impl LedgerRecord {
    fn encode(&self) -> String {
        match self {
            LedgerRecord::Accepted {
                run_id,
                key,
                tenant,
                timeout_ms,
                script_hash,
                script,
            } => format!(
                "accepted {run_id} {} {} {timeout_ms} {script_hash:016x} {}",
                escape(key),
                escape(tenant),
                escape(script)
            ),
            LedgerRecord::Done {
                run_id,
                status,
                aborted,
            } => match aborted {
                Some(r) => format!("done {run_id} {status} 1 {}", escape(r)),
                None => format!("done {run_id} {status} 0"),
            },
        }
    }

    fn decode(payload: &str) -> Option<LedgerRecord> {
        let mut parts = payload.split(' ');
        match parts.next()? {
            "accepted" => Some(LedgerRecord::Accepted {
                run_id: parts.next()?.parse().ok()?,
                key: unescape(parts.next()?),
                tenant: unescape(parts.next()?),
                timeout_ms: parts.next()?.parse().ok()?,
                script_hash: u64::from_str_radix(parts.next()?, 16).ok()?,
                script: unescape(parts.next()?),
            }),
            "done" => Some(LedgerRecord::Done {
                run_id: parts.next()?.parse().ok()?,
                status: parts.next()?.parse().ok()?,
                aborted: match parts.next()? {
                    "0" => None,
                    "1" => Some(unescape(parts.next()?)),
                    _ => return None,
                },
            }),
            _ => None,
        }
    }
}

/// The result of replaying a ledger file.
#[derive(Debug, Clone, Default)]
pub struct LedgerReplay {
    /// All intact records, in append order.
    pub records: Vec<LedgerRecord>,
    /// Whether the file ended in a torn or corrupt record (dropped).
    pub torn_tail: bool,
}

/// An append-only checksummed admission ledger on a virtual filesystem.
/// Same durability contract as [`crate::Journal`]: when `durable`, every
/// append fsyncs the file and its parent directory.
pub struct Ledger {
    fs: FsHandle,
    path: String,
    durable: bool,
}

impl Ledger {
    /// Opens (or creates on first append) a ledger at `path`.
    pub fn open(fs: FsHandle, path: impl Into<String>, durable: bool) -> Ledger {
        Ledger {
            fs,
            path: path.into(),
            durable,
        }
    }

    /// The ledger's file path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Appends one record, durably when the ledger is durable.
    pub fn append(&self, record: &LedgerRecord) -> io::Result<()> {
        let payload = record.encode();
        let line = format!("{:016x} {payload}\n", fnv1a(payload.as_bytes()));
        let mut h = self.fs.open_write(&self.path, true)?;
        h.write_all(line.as_bytes())?;
        drop(h);
        if self.durable {
            self.fs.sync(&self.path)?;
            self.fs.sync_dir(parent_dir(&self.path))?;
        }
        Ok(())
    }

    /// Replays the ledger at `path`. A missing file is an empty replay.
    /// Parsing stops at the first torn or checksum-corrupt line.
    pub fn replay(fs: &dyn Fs, path: &str) -> io::Result<LedgerReplay> {
        let mut replay = LedgerReplay::default();
        if !fs.exists(path) {
            return Ok(replay);
        }
        let raw = crate::fs::read_to_vec(fs, path)?;
        let text = String::from_utf8_lossy(&raw);
        let mut rest = text.as_ref();
        while !rest.is_empty() {
            let Some(nl) = rest.find('\n') else {
                replay.torn_tail = true;
                break;
            };
            let line = &rest[..nl];
            rest = &rest[nl + 1..];
            let parsed = line.split_once(' ').and_then(|(crc, payload)| {
                let crc = u64::from_str_radix(crc, 16).ok()?;
                if crc != fnv1a(payload.as_bytes()) {
                    return None;
                }
                LedgerRecord::decode(payload)
            });
            match parsed {
                Some(r) => replay.records.push(r),
                None => {
                    replay.torn_tail = true;
                    break;
                }
            }
        }
        Ok(replay)
    }
}

/// One accepted submission still awaiting a terminal record — what a
/// restarted daemon must finalize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submission {
    /// Run id (names the `run-<id>` journal scope).
    pub run_id: u64,
    /// Idempotency key; empty = none.
    pub key: String,
    /// Tenant label.
    pub tenant: String,
    /// Requested wall-clock limit in ms.
    pub timeout_ms: u64,
    /// Script source.
    pub script: String,
}

/// One run the ledger records as finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedRun {
    /// Run id.
    pub run_id: u64,
    /// Idempotency key from the matching `Accepted`; empty = none.
    pub key: String,
    /// Terminal exit status.
    pub status: i32,
    /// Abort reason, when aborted.
    pub aborted: Option<String>,
}

/// The daemon-relevant digest of a ledger replay.
#[derive(Debug, Clone, Default)]
pub struct LedgerState {
    /// Accepted runs with no terminal record, in run-id order: the runs
    /// that were in flight (queued or executing) when the daemon died.
    pub orphans: Vec<Submission>,
    /// Runs with terminal records, in completion order.
    pub finished: Vec<FinishedRun>,
    /// Highest run id the ledger has ever assigned; a restarted daemon
    /// continues numbering from here so scopes never collide.
    pub next_run: u64,
}

/// Folds a record stream into the [`LedgerState`] a restarting daemon
/// needs. `Accepted` records whose script hash does not match their
/// script bytes are dropped as corrupt (never executed at recovery);
/// `Done` records without a matching `Accepted` are ignored.
pub fn fold(records: &[LedgerRecord]) -> LedgerState {
    let mut state = LedgerState::default();
    let mut open: HashMap<u64, Submission> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    for r in records {
        match r {
            LedgerRecord::Accepted {
                run_id,
                key,
                tenant,
                timeout_ms,
                script_hash,
                script,
            } => {
                state.next_run = state.next_run.max(*run_id);
                if *script_hash != fnv1a(script.as_bytes()) {
                    continue;
                }
                open.insert(
                    *run_id,
                    Submission {
                        run_id: *run_id,
                        key: key.clone(),
                        tenant: tenant.clone(),
                        timeout_ms: *timeout_ms,
                        script: script.clone(),
                    },
                );
                order.push(*run_id);
            }
            LedgerRecord::Done {
                run_id,
                status,
                aborted,
            } => {
                state.next_run = state.next_run.max(*run_id);
                if let Some(sub) = open.remove(run_id) {
                    state.finished.push(FinishedRun {
                        run_id: *run_id,
                        key: sub.key,
                        status: *status,
                        aborted: aborted.clone(),
                    });
                }
            }
        }
    }
    state.orphans = order
        .into_iter()
        .filter_map(|id| open.remove(&id))
        .collect();
    state
}

/// Path of a terminal result blob (`ext` is `out` or `err`).
pub fn result_blob_path(root: &str, run_id: u64, ext: &str) -> String {
    format!("{root}/result-{run_id}.{ext}")
}

/// Writes a finished run's stdout/stderr blobs under `root`. Called
/// *before* the `Done` record is appended — data before metadata, so a
/// `Done` the replay returns always has its blobs on disk.
pub fn write_result_blobs(
    fs: &dyn Fs,
    root: &str,
    run_id: u64,
    stdout: &[u8],
    stderr: &[u8],
    durable: bool,
) -> io::Result<()> {
    for (ext, data) in [("out", stdout), ("err", stderr)] {
        let path = result_blob_path(root, run_id, ext);
        crate::fs::write_file(fs, &path, data)?;
        if durable {
            fs.sync(&path)?;
        }
    }
    if durable {
        fs.sync_dir(root)?;
    }
    Ok(())
}

/// Reads one result blob back; a missing blob is empty output (a run
/// whose `Done` was ledgered but whose blobs were evicted or lost
/// replays with empty streams rather than failing).
pub fn read_result_blob(fs: &dyn Fs, root: &str, run_id: u64, ext: &str) -> Vec<u8> {
    crate::fs::read_to_vec(fs, &result_blob_path(root, run_id, ext)).unwrap_or_default()
}

/// Removes a run's result blobs (cache eviction).
pub fn remove_result_blobs(fs: &dyn Fs, root: &str, run_id: u64) {
    for ext in ["out", "err"] {
        let _ = fs.remove(&result_blob_path(root, run_id, ext));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accepted(run_id: u64, key: &str, script: &str) -> LedgerRecord {
        LedgerRecord::Accepted {
            run_id,
            key: key.to_string(),
            tenant: "cli".to_string(),
            timeout_ms: 0,
            script_hash: fnv1a(script.as_bytes()),
            script: script.to_string(),
        }
    }

    #[test]
    fn records_roundtrip_with_awkward_bytes() {
        let fs = crate::mem_fs();
        let l = Ledger::open(std::sync::Arc::clone(&fs), "/.jash-serve/ledger", true);
        let records = vec![
            accepted(1, "job 7%", "cat /in a.txt | sort > /out\necho done"),
            LedgerRecord::Done {
                run_id: 1,
                status: 0,
                aborted: None,
            },
            accepted(2, "", "true"),
            LedgerRecord::Done {
                run_id: 2,
                status: 143,
                aborted: Some("shutdown: SIGTERM (15) received".to_string()),
            },
        ];
        for r in &records {
            l.append(r).unwrap();
        }
        let replay = Ledger::replay(fs.as_ref(), "/.jash-serve/ledger").unwrap();
        assert_eq!(replay.records, records);
        assert!(!replay.torn_tail);
    }

    #[test]
    fn fold_separates_orphans_from_finished_and_advances_next_run() {
        let records = vec![
            accepted(1, "k1", "echo one"),
            LedgerRecord::Done {
                run_id: 1,
                status: 0,
                aborted: None,
            },
            accepted(2, "k2", "echo two"),
            accepted(3, "", "echo three"),
        ];
        let state = fold(&records);
        assert_eq!(state.next_run, 3);
        assert_eq!(state.finished.len(), 1);
        assert_eq!(state.finished[0].key, "k1");
        assert_eq!(
            state.orphans.iter().map(|o| o.run_id).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(state.orphans[0].key, "k2");
        assert!(state.orphans[1].key.is_empty());
    }

    #[test]
    fn corrupt_script_hash_drops_the_record_instead_of_executing_it() {
        let mut rec = accepted(1, "k", "echo safe");
        if let LedgerRecord::Accepted { script, .. } = &mut rec {
            *script = "rm -rf /".to_string(); // hash no longer matches
        }
        let state = fold(&[rec]);
        assert!(state.orphans.is_empty(), "corrupt record must not recover");
        assert_eq!(state.next_run, 1, "run id still reserved");
    }

    #[test]
    fn torn_tail_is_dropped_on_replay() {
        let fs = crate::mem_fs();
        let l = Ledger::open(std::sync::Arc::clone(&fs), "/ledger", true);
        l.append(&accepted(1, "k", "true")).unwrap();
        let mut h = fs.open_write("/ledger", true).unwrap();
        h.write_all(b"0000000000000000 done 1 0").unwrap(); // bad crc, no newline
        drop(h);
        let replay = Ledger::replay(fs.as_ref(), "/ledger").unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.records.len(), 1, "intact prefix survives");
        let state = fold(&replay.records);
        assert_eq!(state.orphans.len(), 1, "torn Done leaves the run open");
    }

    #[test]
    fn result_blobs_roundtrip_and_missing_blobs_read_empty() {
        let fs = crate::mem_fs();
        write_result_blobs(fs.as_ref(), "/.jash-serve", 7, b"out!", b"err!", true).unwrap();
        assert_eq!(read_result_blob(fs.as_ref(), "/.jash-serve", 7, "out"), b"out!");
        assert_eq!(read_result_blob(fs.as_ref(), "/.jash-serve", 7, "err"), b"err!");
        assert!(read_result_blob(fs.as_ref(), "/.jash-serve", 8, "out").is_empty());
        remove_result_blobs(fs.as_ref(), "/.jash-serve", 7);
        assert!(read_result_blob(fs.as_ref(), "/.jash-serve", 7, "out").is_empty());
    }
}
