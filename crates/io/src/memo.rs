//! Content-addressed memo table stored on the virtual filesystem.
//!
//! This lives in `jash-io` (rather than `jash-incremental`, which
//! re-exports it) because both the incremental runner *and* the core
//! session's crash-recovery path consult it: resume after a crash
//! satisfies journaled-clean regions from the memo instead of
//! re-executing them, and `jash-core` sits below `jash-incremental` in
//! the dependency order.

use crate::FsHandle;
use std::io;

/// 64-bit FNV-1a — small, dependency-free, adequate for cache addressing
/// (keys also embed lengths, so accidental collisions need both a hash
/// and a length match). Also the per-record checksum of the execution
/// journal ([`crate::journal`]).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hit/miss counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Full replays from cache.
    pub hits: u64,
    /// Partial (suffix) reuses.
    pub partial_hits: u64,
    /// Complete executions.
    pub misses: u64,
}

/// A memo table rooted at a directory on the shell's filesystem.
pub struct Memo {
    fs: FsHandle,
    dir: String,
    durable: bool,
}

/// One cached entry: the input fingerprint it was computed from plus the
/// output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Byte length of the input the output corresponds to.
    pub input_len: u64,
    /// FNV-1a of that input.
    pub input_hash: u64,
    /// Cached stdout.
    pub output: Vec<u8>,
}

impl Memo {
    /// Opens (or implicitly creates) a memo table under `dir`. Durable by
    /// default: entries that gate crash resume must themselves survive
    /// the crash (disable via [`Memo::with_durable`]).
    pub fn new(fs: FsHandle, dir: impl Into<String>) -> Self {
        Memo {
            fs,
            dir: dir.into(),
            durable: true,
        }
    }

    /// Sets whether [`Memo::put`] fsyncs entry files and the table
    /// directory.
    pub fn with_durable(mut self, durable: bool) -> Self {
        self.durable = durable;
        self
    }

    fn meta_path(&self, key: u64) -> String {
        format!("{}/{key:016x}.meta", self.dir.trim_end_matches('/'))
    }

    fn data_path(&self, key: u64) -> String {
        format!("{}/{key:016x}.out", self.dir.trim_end_matches('/'))
    }

    /// Looks up an entry by plan key.
    pub fn get(&self, key: u64) -> io::Result<Option<Entry>> {
        if !self.fs.exists(&self.meta_path(key)) {
            return Ok(None);
        }
        let meta = crate::fs::read_to_string(self.fs.as_ref(), &self.meta_path(key))?;
        let mut parts = meta.split_whitespace();
        let (Some(len), Some(hash)) = (parts.next(), parts.next()) else {
            return Ok(None);
        };
        let (Ok(input_len), Ok(input_hash)) = (len.parse(), u64::from_str_radix(hash, 16))
        else {
            return Ok(None);
        };
        let output = crate::fs::read_to_vec(self.fs.as_ref(), &self.data_path(key))?;
        Ok(Some(Entry {
            input_len,
            input_hash,
            output,
        }))
    }

    /// Stores an entry. The data file is written (and fsync'd, when
    /// durable) *before* the meta file that makes the entry visible, so a
    /// crash between the two leaves a missing entry, never a dangling one.
    pub fn put(&self, key: u64, entry: &Entry) -> io::Result<()> {
        crate::fs::write_file(self.fs.as_ref(), &self.data_path(key), &entry.output)?;
        if self.durable {
            self.fs.sync(&self.data_path(key))?;
        }
        crate::fs::write_file(
            self.fs.as_ref(),
            &self.meta_path(key),
            format!("{} {:016x}\n", entry.input_len, entry.input_hash).as_bytes(),
        )?;
        if self.durable {
            self.fs.sync(&self.meta_path(key))?;
            self.fs.sync_dir(self.dir.trim_end_matches('/'))?;
        }
        Ok(())
    }

    /// Drops an entry (used when an execution supersedes it).
    pub fn invalidate(&self, key: u64) -> io::Result<()> {
        let _ = self.fs.remove(&self.meta_path(key));
        let _ = self.fs.remove(&self.data_path(key));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn memo_roundtrip() {
        let fs = crate::mem_fs();
        let memo = Memo::new(fs, "/.cache");
        assert!(memo.get(42).unwrap().is_none());
        let e = Entry {
            input_len: 10,
            input_hash: 0xdead_beef,
            output: b"result\n".to_vec(),
        };
        memo.put(42, &e).unwrap();
        assert_eq!(memo.get(42).unwrap().unwrap(), e);
        memo.invalidate(42).unwrap();
        assert!(memo.get(42).unwrap().is_none());
    }

    #[test]
    fn durable_puts_sync_through_the_fs() {
        let mem = std::sync::Arc::new(crate::MemFs::new());
        let fs: FsHandle = std::sync::Arc::clone(&mem) as FsHandle;
        let entry = Entry {
            input_len: 1,
            input_hash: 2,
            output: b"x".to_vec(),
        };
        Memo::new(std::sync::Arc::clone(&fs), "/.cache")
            .put(1, &entry)
            .unwrap();
        assert!(mem.sync_count() >= 3, "data + meta + directory fsync");
        let before = mem.sync_count();
        Memo::new(fs, "/.cache")
            .with_durable(false)
            .put(2, &entry)
            .unwrap();
        assert_eq!(mem.sync_count(), before);
    }
}
