//! Per-tenant resource sub-accounts.
//!
//! The serve daemon multiplexes many tenants over one shared
//! [`DiskModel`](crate::DiskModel)/[`CpuModel`] pair. Those models answer
//! "how loaded is the machine?"; this module answers "*who* loaded it?".
//! A [`UsageMeter`] is a cheap atomic tally of one tenant's consumed CPU
//! time and disk bytes, fed by a [`CpuModel::sub_model`] (CPU side) and a
//! [`MeteredFs`] wrapper (disk side). A [`FairShareBucket`] converts the
//! tally into a token-bucket *pressure* signal: each tenant continuously
//! earns resource-seconds in proportion to its configured weight share of
//! the machine, spends them as its runs consume CPU and disk, and reads
//! back an overdraft fraction in `[0, 1]` once it has burned through its
//! burst allowance. Heavy tenants therefore see planner pressure (narrower
//! widths, eventually sequential plans) before light tenants do, while an
//! idle machine lets any single tenant burst to full speed.
//!
//! Determinism: the bucket never reads the wall clock itself — callers
//! pass `Instant`s — so tests can replay an exact refill/debit schedule.

use crate::fs::{FileMeta, Fs, ReadHandle, WriteHandle};
use crate::DiskModel;
use bytes::Bytes;
use parking_lot::Mutex;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// An atomic tally of one tenant's resource consumption.
#[derive(Debug, Default)]
pub struct UsageMeter {
    cpu_ns: AtomicU64,
    disk_bytes: AtomicU64,
}

impl UsageMeter {
    /// A fresh, zeroed meter.
    pub fn new() -> Arc<Self> {
        Arc::new(UsageMeter::default())
    }

    /// Adds modeled CPU time.
    pub fn add_cpu_ns(&self, ns: u64) {
        self.cpu_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Adds disk transfer bytes (reads and writes alike).
    pub fn add_disk_bytes(&self, n: u64) {
        self.disk_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Total modeled CPU seconds consumed so far.
    pub fn cpu_seconds(&self) -> f64 {
        self.cpu_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Total modeled CPU nanoseconds consumed so far.
    pub fn cpu_ns(&self) -> u64 {
        self.cpu_ns.load(Ordering::Relaxed)
    }

    /// Total disk bytes moved so far.
    pub fn disk_bytes(&self) -> u64 {
        self.disk_bytes.load(Ordering::Relaxed)
    }
}

struct BucketState {
    /// Spendable resource-seconds. Refills toward `capacity`; debits may
    /// drive it negative (overdraft), floored at `-capacity` so one
    /// enormous run saturates pressure instead of exiling the tenant.
    tokens: f64,
    last_refill: Instant,
    /// High-water marks of the meter already debited, so each consumed
    /// nanosecond/byte is charged exactly once.
    charged_cpu_ns: u64,
    charged_disk_bytes: u64,
}

/// A per-tenant token bucket over modeled resource-seconds.
///
/// `refill_per_sec` is the tenant's entitled share of the machine in
/// resource-seconds per wall second (e.g. weight-share × modeled core
/// count); `capacity` is the burst allowance. [`FairShareBucket::settle`]
/// refills for elapsed wall time, debits any new consumption recorded on
/// the tenant's [`UsageMeter`], and returns the resulting pressure.
pub struct FairShareBucket {
    capacity: f64,
    refill_per_sec: f64,
    /// Bytes/second used to convert disk bytes into resource-seconds.
    disk_rate: f64,
    state: Mutex<BucketState>,
}

impl FairShareBucket {
    /// A full bucket created at `now`.
    pub fn new(capacity: f64, refill_per_sec: f64, disk_rate: f64, now: Instant) -> Self {
        let capacity = capacity.max(0.001);
        FairShareBucket {
            capacity,
            refill_per_sec: refill_per_sec.max(0.0),
            disk_rate: disk_rate.max(1.0),
            state: Mutex::new(BucketState {
                tokens: capacity,
                last_refill: now,
                charged_cpu_ns: 0,
                charged_disk_bytes: 0,
            }),
        }
    }

    /// Refills for wall time elapsed up to `now`, debits consumption newly
    /// recorded on `meter`, and returns the pressure in `[0, 1]`: `0`
    /// while the tenant is within its allowance, rising linearly with
    /// overdraft to `1` at a full bucket-capacity of debt.
    pub fn settle(&self, meter: &UsageMeter, now: Instant) -> f64 {
        let mut st = self.state.lock();
        let elapsed = now
            .saturating_duration_since(st.last_refill)
            .as_secs_f64();
        st.last_refill = now;
        st.tokens = (st.tokens + elapsed * self.refill_per_sec).min(self.capacity);

        let cpu = meter.cpu_ns();
        let disk = meter.disk_bytes();
        let new_cpu = cpu.saturating_sub(st.charged_cpu_ns) as f64 / 1e9;
        let new_disk = disk.saturating_sub(st.charged_disk_bytes) as f64 / self.disk_rate;
        st.charged_cpu_ns = cpu;
        st.charged_disk_bytes = disk;
        st.tokens = (st.tokens - new_cpu - new_disk).max(-self.capacity);

        if st.tokens >= 0.0 {
            0.0
        } else {
            (-st.tokens / self.capacity).clamp(0.0, 1.0)
        }
    }

    /// Current pressure without refilling or debiting — the value the last
    /// [`FairShareBucket::settle`] left behind.
    pub fn pressure(&self) -> f64 {
        let st = self.state.lock();
        if st.tokens >= 0.0 {
            0.0
        } else {
            (-st.tokens / self.capacity).clamp(0.0, 1.0)
        }
    }
}

/// A delegating [`Fs`] wrapper that tallies every transferred byte into a
/// [`UsageMeter`], attributing shared-filesystem traffic to one tenant.
///
/// Mirrors the [`FaultFs`](crate::FaultFs) idiom: wrap the handles, pass
/// everything else through (including [`Fs::disk`], so global disk
/// accounting and throttling still apply).
pub struct MeteredFs {
    inner: crate::FsHandle,
    meter: Arc<UsageMeter>,
}

impl MeteredFs {
    /// Wraps `inner`, attributing its traffic to `meter`.
    pub fn new(inner: crate::FsHandle, meter: Arc<UsageMeter>) -> Self {
        MeteredFs { inner, meter }
    }
}

impl Fs for MeteredFs {
    fn open_read(&self, path: &str) -> io::Result<Box<dyn ReadHandle>> {
        let inner = self.inner.open_read(path)?;
        Ok(Box::new(MeteredReadHandle {
            inner,
            meter: Arc::clone(&self.meter),
        }))
    }

    fn open_write(&self, path: &str, append: bool) -> io::Result<Box<dyn WriteHandle>> {
        let inner = self.inner.open_write(path, append)?;
        Ok(Box::new(MeteredWriteHandle {
            inner,
            meter: Arc::clone(&self.meter),
        }))
    }

    fn metadata(&self, path: &str) -> io::Result<FileMeta> {
        self.inner.metadata(path)
    }

    fn list_dir(&self, path: &str) -> io::Result<Vec<String>> {
        self.inner.list_dir(path)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        self.inner.sync(path)
    }

    fn sync_dir(&self, path: &str) -> io::Result<()> {
        self.inner.sync_dir(path)
    }

    fn disk(&self) -> Option<Arc<DiskModel>> {
        self.inner.disk()
    }
}

struct MeteredReadHandle {
    inner: Box<dyn ReadHandle>,
    meter: Arc<UsageMeter>,
}

impl ReadHandle for MeteredReadHandle {
    fn read_chunk(&mut self, max: usize) -> io::Result<Option<Bytes>> {
        let chunk = self.inner.read_chunk(max)?;
        if let Some(c) = &chunk {
            self.meter.add_disk_bytes(c.len() as u64);
        }
        Ok(chunk)
    }
}

struct MeteredWriteHandle {
    inner: Box<dyn WriteHandle>,
    meter: Arc<UsageMeter>,
}

impl WriteHandle for MeteredWriteHandle {
    fn write_all(&mut self, data: &[u8]) -> io::Result<()> {
        self.inner.write_all(data)?;
        self.meter.add_disk_bytes(data.len() as u64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{read_to_vec, write_file, MemFs};
    use std::time::Duration;

    #[test]
    fn meter_tallies() {
        let m = UsageMeter::new();
        m.add_cpu_ns(1_500_000_000);
        m.add_disk_bytes(4096);
        assert!((m.cpu_seconds() - 1.5).abs() < 1e-9);
        assert_eq!(m.disk_bytes(), 4096);
    }

    #[test]
    fn metered_fs_attributes_bytes() {
        let meter = UsageMeter::new();
        let fs = MeteredFs::new(crate::mem_fs(), Arc::clone(&meter));
        write_file(&fs, "/f", b"hello world").unwrap();
        assert_eq!(meter.disk_bytes(), 11);
        let back = read_to_vec(&fs, "/f").unwrap();
        assert_eq!(back, b"hello world");
        assert_eq!(meter.disk_bytes(), 22);
    }

    #[test]
    fn metered_fs_delegates_everything_else() {
        let meter = UsageMeter::new();
        let mem = MemFs::new();
        mem.install("/d/a", b"x".to_vec());
        let fs = MeteredFs::new(Arc::new(mem), meter);
        assert!(fs.exists("/d/a"));
        assert_eq!(fs.list_dir("/d").unwrap(), vec!["a"]);
        fs.rename("/d/a", "/d/b").unwrap();
        assert!(fs.metadata("/d/b").is_ok());
        fs.sync("/d/b").unwrap();
        fs.remove("/d/b").unwrap();
        assert!(!fs.exists("/d/b"));
    }

    #[test]
    fn bucket_pressure_rises_with_overdraft_and_refills() {
        let t0 = Instant::now();
        // 2 resource-seconds of burst, earning 1 resource-second per wall
        // second, disk at 1 MiB/s.
        let b = FairShareBucket::new(2.0, 1.0, 1024.0 * 1024.0, t0);
        let m = UsageMeter::new();

        // Within allowance: no pressure.
        m.add_cpu_ns(1_000_000_000);
        assert_eq!(b.settle(&m, t0), 0.0);

        // Burn 3 more seconds instantly: tokens 1.0 → -2.0 → pressure 1.
        m.add_cpu_ns(3_000_000_000);
        let p = b.settle(&m, t0);
        assert!((p - 1.0).abs() < 1e-9, "pressure {p}");

        // Each consumed unit is charged once: settling again is free.
        assert_eq!(b.settle(&m, t0), 1.0);

        // One wall second of refill pays back half the debt.
        let p = b.settle(&m, t0 + Duration::from_secs(1));
        assert!((p - 0.5).abs() < 1e-9, "pressure {p}");

        // Enough wall time clears the debt entirely (refill caps at
        // capacity, never above).
        let p = b.settle(&m, t0 + Duration::from_secs(60));
        assert_eq!(p, 0.0);
        assert_eq!(b.pressure(), 0.0);
    }

    #[test]
    fn bucket_charges_disk_bytes_at_disk_rate() {
        let t0 = Instant::now();
        let b = FairShareBucket::new(1.0, 0.0, 1000.0, t0);
        let m = UsageMeter::new();
        // 1500 bytes at 1000 B/s = 1.5 resource-seconds against a 1.0
        // bucket → 0.5s overdraft → pressure 0.5.
        m.add_disk_bytes(1500);
        let p = b.settle(&m, t0);
        assert!((p - 0.5).abs() < 1e-9, "pressure {p}");
    }

    #[test]
    fn sub_model_forwards_to_parent_and_meters() {
        let parent = crate::CpuModel::new(4, 0.0);
        let meter = UsageMeter::new();
        let sub = parent.sub_model(Arc::clone(&meter));
        assert_eq!(sub.cores(), 4);
        sub.charge(0.25);
        // Both the tenant's view and the machine's view advance; the
        // meter records the tenant's share.
        assert!((sub.busy_seconds() - 0.25).abs() < 1e-9);
        assert!((parent.busy_seconds() - 0.25).abs() < 1e-9);
        assert!((meter.cpu_seconds() - 0.25).abs() < 1e-9);
    }
}
