//! Simulated block-device performance model.
//!
//! This module substitutes for the EC2 EBS volumes in the paper's Figure 1.
//! A [`DiskModel`] is shared by every file handle on a [`crate::MemFs`];
//! each read/write *charges* the model, which computes when the request
//! would complete on the modeled device and sleeps until then. Because the
//! completion horizon is shared, N concurrent streams each see roughly
//! 1/N-th of the device — precisely the contention that makes
//! resource-oblivious parallelization (PaSh on the "Standard" instance)
//! regress behind sequential bash.
//!
//! The model captures the two gp2-vs-gp3 axes the paper names:
//! * **throughput** (`read_mbps` / `write_mbps`), and
//! * **IOPS** with a **burst bucket** (gp2: 100 IOPS baseline bursting to
//!   3000 until the bucket drains; gp3: a flat 15000).
//!
//! A `time_scale` shrinks all sleeps proportionally so benchmarks finish in
//! seconds while preserving every ratio.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Bytes covered by one modeled IO request.
pub const IO_REQUEST_BYTES: u64 = 256 * 1024;

/// Static description of a block device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskProfile {
    /// Sequential read throughput, MiB/s.
    pub read_mbps: f64,
    /// Sequential write throughput, MiB/s.
    pub write_mbps: f64,
    /// Sustained IOPS once burst credit is exhausted.
    pub base_iops: f64,
    /// Burst IOPS while credit remains.
    pub burst_iops: f64,
    /// Number of requests servable at burst rate before falling back to
    /// `base_iops` (the gp2 IO-credit bucket).
    pub burst_credit_ios: f64,
    /// Multiplier applied to all modeled durations (`0.1` = 10x faster than
    /// real time). Ratios between engines are unaffected.
    pub time_scale: f64,
}

impl DiskProfile {
    /// The paper's *Standard* instance disk: gp2, 100 IOPS bursting to 3 K.
    ///
    /// Throughput numbers follow the gp2 spec for a small volume (128 MiB/s
    /// ceiling, IOPS-bound in practice).
    pub fn gp2_standard() -> Self {
        DiskProfile {
            read_mbps: 128.0,
            write_mbps: 128.0,
            base_iops: 100.0,
            burst_iops: 3000.0,
            burst_credit_ios: 5_400.0,
            time_scale: 1.0,
        }
    }

    /// The paper's *IO-opt* instance disk: gp3 with 15 K IOPS.
    pub fn gp3_io_opt() -> Self {
        DiskProfile {
            read_mbps: 350.0,
            write_mbps: 350.0,
            base_iops: 15_000.0,
            burst_iops: 15_000.0,
            burst_credit_ios: 0.0,
            time_scale: 1.0,
        }
    }

    /// An effectively unconstrained device (RAM-backed).
    pub fn ramdisk() -> Self {
        DiskProfile {
            read_mbps: 20_000.0,
            write_mbps: 20_000.0,
            base_iops: 10_000_000.0,
            burst_iops: 10_000_000.0,
            burst_credit_ios: 0.0,
            time_scale: 1.0,
        }
    }

    /// Returns the profile with all modeled durations multiplied by
    /// `scale`.
    pub fn scaled(mut self, scale: f64) -> Self {
        self.time_scale = scale;
        self
    }
}

/// Aggregate counters, readable at any time.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskStats {
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total modeled IO requests.
    pub requests: u64,
    /// Total modeled busy time, nanoseconds (unscaled).
    pub busy_ns: u64,
}

struct BucketState {
    /// Completion horizon: the modeled time at which the device becomes
    /// free again, expressed as an offset from `epoch`.
    next_free: Duration,
    /// Remaining burst credit, in IO requests.
    burst_remaining: f64,
}

/// A shared, contention-aware device model.
pub struct DiskModel {
    profile: DiskProfile,
    epoch: Instant,
    state: Mutex<BucketState>,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    requests: AtomicU64,
    busy_ns: AtomicU64,
}

impl DiskModel {
    /// Creates a model for `profile`.
    pub fn new(profile: DiskProfile) -> Self {
        DiskModel {
            epoch: Instant::now(),
            state: Mutex::new(BucketState {
                next_free: Duration::ZERO,
                burst_remaining: profile.burst_credit_ios,
            }),
            profile,
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
        }
    }

    /// The profile this model was built from.
    pub fn profile(&self) -> DiskProfile {
        self.profile
    }

    /// Charges a read of `bytes` and blocks until the modeled completion.
    pub fn charge_read(&self, bytes: u64) {
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.charge(bytes, self.profile.read_mbps);
    }

    /// Charges a write of `bytes` and blocks until the modeled completion.
    pub fn charge_write(&self, bytes: u64) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.charge(bytes, self.profile.write_mbps);
    }

    fn charge(&self, bytes: u64, mbps: f64) {
        // Fractional request accounting: the model targets streaming IO,
        // where small writes coalesce in the page cache — charging a full
        // request per tiny write would bill a line-oriented writer
        // thousands of IOPS it would never issue.
        let ios = bytes as f64 / IO_REQUEST_BYTES as f64;
        self.requests
            .fetch_add(bytes.div_ceil(IO_REQUEST_BYTES).max(1), Ordering::Relaxed);

        let throughput_s = bytes as f64 / (mbps * 1024.0 * 1024.0);
        let wait = {
            let mut st = self.state.lock();
            let burst_ios = st.burst_remaining.min(ios);
            st.burst_remaining -= burst_ios;
            let base_ios = ios - burst_ios;
            let iops_s = burst_ios / self.profile.burst_iops + base_ios / self.profile.base_iops;
            // The device pipelines transfers and seeks; the slower of the
            // two gates completion.
            let service_s = throughput_s.max(iops_s);
            let service = Duration::from_secs_f64(service_s * self.profile.time_scale);
            self.busy_ns
                .fetch_add((service_s * 1e9) as u64, Ordering::Relaxed);
            let now = self.epoch.elapsed();
            // Requests queue behind the shared completion horizon.
            let start = st.next_free.max(now);
            st.next_free = start + service;
            st.next_free.saturating_sub(now)
        };
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
        }
    }

    /// Resets the completion horizon and burst credit (not the counters).
    ///
    /// Benchmarks call this between runs so one engine's queue does not
    /// penalize the next.
    pub fn reset(&self) {
        let mut st = self.state.lock();
        st.next_free = self.epoch.elapsed();
        st.burst_remaining = self.profile.burst_credit_ios;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn fast(profile: DiskProfile) -> DiskProfile {
        // Keep test sleeps in the low milliseconds.
        profile.scaled(1e-4)
    }

    #[test]
    fn counters_accumulate() {
        let m = DiskModel::new(fast(DiskProfile::gp3_io_opt()));
        m.charge_read(1024);
        m.charge_write(2048);
        let s = m.stats();
        assert_eq!(s.bytes_read, 1024);
        assert_eq!(s.bytes_written, 2048);
        assert!(s.requests >= 2);
    }

    #[test]
    fn slow_disk_takes_longer_than_fast_disk() {
        let slow = DiskModel::new(DiskProfile::gp2_standard().scaled(1e-2));
        let fast_disk = DiskModel::new(DiskProfile::gp3_io_opt().scaled(1e-2));
        let mb = 64 * 1024 * 1024;

        // Exhaust gp2 burst credit first so the baseline rate applies.
        let burst = DiskProfile::gp2_standard().burst_credit_ios as u64 * IO_REQUEST_BYTES;
        slow.charge_read(burst);

        let t0 = Instant::now();
        slow.charge_read(mb);
        let slow_t = t0.elapsed();
        let t0 = Instant::now();
        fast_disk.charge_read(mb);
        let fast_t = t0.elapsed();
        assert!(
            slow_t > fast_t * 3,
            "expected gp2 post-burst to be much slower: {slow_t:?} vs {fast_t:?}"
        );
    }

    #[test]
    fn concurrent_readers_contend() {
        // Two threads each reading X should take about twice as long as
        // one thread reading X, because the horizon is shared.
        let profile = DiskProfile {
            read_mbps: 100.0,
            write_mbps: 100.0,
            base_iops: 1e9,
            burst_iops: 1e9,
            burst_credit_ios: 0.0,
            time_scale: 1e-2,
        };
        let chunk = 10 * 1024 * 1024;

        let solo = DiskModel::new(profile);
        let t0 = Instant::now();
        solo.charge_read(chunk);
        let solo_t = t0.elapsed();

        let shared = Arc::new(DiskModel::new(profile));
        let t0 = Instant::now();
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&shared);
                std::thread::spawn(move || m.charge_read(chunk))
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let dual_t = t0.elapsed();
        assert!(
            dual_t.as_secs_f64() > solo_t.as_secs_f64() * 1.5,
            "contention missing: solo {solo_t:?}, dual {dual_t:?}"
        );
    }

    #[test]
    fn burst_credit_drains() {
        let profile = DiskProfile {
            read_mbps: 1e9,
            write_mbps: 1e9,
            base_iops: 100.0,
            burst_iops: 100_000.0,
            burst_credit_ios: 4.0,
            time_scale: 1.0,
        };
        let m = DiskModel::new(profile);
        // First 4 requests ride the burst rate.
        let t0 = Instant::now();
        m.charge_read(4 * IO_REQUEST_BYTES);
        let burst_t = t0.elapsed();
        // Next 4 fall back to base_iops (1000x slower per IO).
        let t0 = Instant::now();
        m.charge_read(4 * IO_REQUEST_BYTES);
        let base_t = t0.elapsed();
        assert!(
            base_t.as_secs_f64() > burst_t.as_secs_f64() * 10.0,
            "burst {burst_t:?} vs base {base_t:?}"
        );
    }

    #[test]
    fn reset_clears_queue() {
        let m = DiskModel::new(DiskProfile::gp2_standard().scaled(1e-3));
        m.charge_read(64 * IO_REQUEST_BYTES);
        m.reset();
        let t0 = Instant::now();
        m.charge_read(1024);
        // After reset a tiny read must not wait behind the old horizon.
        assert!(t0.elapsed() < Duration::from_millis(250));
    }
}
