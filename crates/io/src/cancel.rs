//! Cooperative cancellation.
//!
//! A [`CancelToken`] is shared by everything participating in one
//! execution region: pipes ([`crate::pipe::pipe_with`]), injected fault
//! stalls ([`crate::fault`]), and the executor's watchdog. Cancelling the
//! token wakes every blocked participant with a descriptive
//! [`io::Error`], which is what lets a wedged region abort instead of
//! hanging the session.

use parking_lot::Mutex;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;

struct Inner {
    cancelled: AtomicBool,
    reason: Mutex<Option<String>>,
    // Sleepers park on this pair so `cancel` can wake them immediately.
    gate: StdMutex<()>,
    wake: Condvar,
}

/// A cloneable cancellation handle.
///
/// # Guarantees
///
/// - **First reason wins.** [`CancelToken::cancel`] is idempotent: the
///   first call's reason is the one [`CancelToken::reason`] and
///   [`CancelToken::error`] report forever after; later calls only
///   re-notify sleepers and never overwrite it. Concurrent cancellers
///   (say, the stall watchdog and a user abort racing) therefore produce
///   one stable diagnosis, not a last-writer-wins scramble.
/// - **Cancellation is permanent.** There is no reset; a region that
///   observes `is_cancelled()` can cache that answer.
/// - **`Default` is `new`.** `CancelToken::default()` is a fresh,
///   un-cancelled, unshared token — callers holding an
///   `Option<CancelToken>` can `unwrap_or_default()` and get a token
///   that simply never fires.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    /// Equivalent to [`CancelToken::new`]: fresh and un-cancelled.
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                reason: Mutex::new(None),
                gate: StdMutex::new(()),
                wake: Condvar::new(),
            }),
        }
    }

    /// Cancels the token with `reason`, waking all cooperative sleepers.
    ///
    /// Idempotent: the *first* reason wins. A later call never replaces
    /// the stored reason — it only re-notifies sleepers — so every
    /// participant that asks "why was I cancelled?" gets the same answer
    /// regardless of how many cancellers raced.
    pub fn cancel(&self, reason: impl Into<String>) {
        {
            let mut r = self.inner.reason.lock();
            if r.is_none() {
                *r = Some(reason.into());
            }
        }
        self.inner.cancelled.store(true, Ordering::SeqCst);
        self.inner.wake.notify_all();
    }

    /// Whether the token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// The cancellation reason, if cancelled.
    pub fn reason(&self) -> Option<String> {
        self.inner.reason.lock().clone()
    }

    /// An [`io::Error`] describing the cancellation.
    pub fn error(&self) -> io::Error {
        let why = self
            .reason()
            .unwrap_or_else(|| "region cancelled".to_string());
        io::Error::new(io::ErrorKind::Interrupted, why)
    }

    /// Sleeps for `dur` unless cancelled first. Returns `Ok(())` after a
    /// full sleep, or the cancellation error if woken by [`cancel`].
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn sleep(&self, dur: Duration) -> io::Result<()> {
        let deadline = std::time::Instant::now() + dur;
        let mut guard = self
            .inner
            .gate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if self.is_cancelled() {
                return Err(self.error());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(());
            }
            let (g, _timeout) = self
                .inner
                .wake
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard = g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn first_reason_wins() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel("first");
        t.cancel("second");
        assert!(t.is_cancelled());
        assert_eq!(t.reason().as_deref(), Some("first"));
        assert_eq!(t.error().kind(), io::ErrorKind::Interrupted);
    }

    #[test]
    fn sleep_completes_when_not_cancelled() {
        let t = CancelToken::new();
        let t0 = Instant::now();
        t.sleep(Duration::from_millis(20)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn cancel_interrupts_sleep() {
        let t = CancelToken::new();
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            let t0 = Instant::now();
            let r = t2.sleep(Duration::from_secs(30));
            (r, t0.elapsed())
        });
        std::thread::sleep(Duration::from_millis(30));
        t.cancel("watchdog fired");
        let (r, waited) = h.join().unwrap();
        assert!(r.is_err());
        assert!(waited < Duration::from_secs(5), "sleep was not interrupted");
        assert!(r.unwrap_err().to_string().contains("watchdog fired"));
    }
}
