//! Cooperative cancellation.
//!
//! A [`CancelToken`] is shared by everything participating in one
//! execution region: pipes ([`crate::pipe::pipe_with`]), injected fault
//! stalls ([`crate::fault`]), and the executor's watchdog. Cancelling the
//! token wakes every blocked participant with a descriptive
//! [`io::Error`], which is what lets a wedged region abort instead of
//! hanging the session.

use parking_lot::Mutex;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;

struct Inner {
    cancelled: AtomicBool,
    reason: Mutex<Option<String>>,
    // Sleepers park on this pair so `cancel` can wake them immediately.
    gate: StdMutex<()>,
    wake: Condvar,
}

/// A cloneable cancellation handle.
///
/// # Guarantees
///
/// - **First reason wins.** [`CancelToken::cancel`] is idempotent: the
///   first call's reason is the one [`CancelToken::reason`] and
///   [`CancelToken::error`] report forever after; later calls only
///   re-notify sleepers and never overwrite it. Concurrent cancellers
///   (say, the stall watchdog and a user abort racing) therefore produce
///   one stable diagnosis, not a last-writer-wins scramble.
/// - **Cancellation is permanent.** There is no reset; a region that
///   observes `is_cancelled()` can cache that answer.
/// - **`Default` is `new`.** `CancelToken::default()` is a fresh,
///   un-cancelled, unshared token — callers holding an
///   `Option<CancelToken>` can `unwrap_or_default()` and get a token
///   that simply never fires.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    /// Equivalent to [`CancelToken::new`]: fresh and un-cancelled.
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                reason: Mutex::new(None),
                gate: StdMutex::new(()),
                wake: Condvar::new(),
            }),
        }
    }

    /// Cancels the token with `reason`, waking all cooperative sleepers.
    ///
    /// Idempotent: the *first* reason wins. A later call never replaces
    /// the stored reason — it only re-notifies sleepers — so every
    /// participant that asks "why was I cancelled?" gets the same answer
    /// regardless of how many cancellers raced.
    pub fn cancel(&self, reason: impl Into<String>) {
        {
            let mut r = self.inner.reason.lock();
            if r.is_none() {
                *r = Some(reason.into());
            }
        }
        self.inner.cancelled.store(true, Ordering::SeqCst);
        self.inner.wake.notify_all();
    }

    /// Whether the token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// The cancellation reason, if cancelled.
    pub fn reason(&self) -> Option<String> {
        self.inner.reason.lock().clone()
    }

    /// An [`io::Error`] describing the cancellation.
    pub fn error(&self) -> io::Error {
        let why = self
            .reason()
            .unwrap_or_else(|| "region cancelled".to_string());
        io::Error::new(io::ErrorKind::Interrupted, why)
    }

    /// Sleeps for `dur` unless cancelled first. Returns `Ok(())` after a
    /// full sleep, or the cancellation error if woken by [`cancel`].
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn sleep(&self, dur: Duration) -> io::Result<()> {
        let deadline = std::time::Instant::now() + dur;
        let mut guard = self
            .inner
            .gate
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if self.is_cancelled() {
                return Err(self.error());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(());
            }
            let (g, _timeout) = self
                .inner
                .wake
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard = g;
        }
    }
}

/// Reason prefix a wall-clock deadline writes into a [`CancelToken`].
///
/// Mirrors the `shutdown:` convention from graceful signal handling: the
/// session layer recognizes the prefix, aborts the in-flight region
/// (journaled, resumable) instead of failing over, and surfaces exit
/// code 124 — the `timeout(1)` convention.
pub const DEADLINE_PREFIX: &str = "deadline:";

/// The cancellation reason for a deadline of `limit`.
pub fn deadline_reason(limit: Duration) -> String {
    format!("{DEADLINE_PREFIX} wall-clock limit {}ms exceeded", limit.as_millis())
}

/// Parses a cancellation reason back into the timeout exit code (124,
/// the `timeout(1)` convention). `None` when the reason is not a
/// deadline cancellation.
pub fn deadline_code(reason: &str) -> Option<i32> {
    reason.starts_with(DEADLINE_PREFIX).then_some(124)
}

/// Arms a wall-clock deadline over a [`CancelToken`]: a watcher thread
/// cancels the token with [`deadline_reason`] when the limit elapses.
///
/// The guard is the *disarm* handle. Dropping it (run finished first)
/// retires the watcher promptly instead of leaving a thread parked for
/// the rest of a long limit — which matters in a daemon arming one per
/// run. The watcher sleeps on a private token, so disarming never
/// touches the run's own token.
pub struct DeadlineGuard {
    disarm: CancelToken,
}

impl DeadlineGuard {
    /// Starts the watcher: after `limit`, `token` is cancelled with the
    /// deadline reason (first-reason-wins: if something else cancelled
    /// the run earlier, that diagnosis is preserved).
    pub fn arm(token: &CancelToken, limit: Duration) -> DeadlineGuard {
        let disarm = CancelToken::new();
        let watcher = disarm.clone();
        let target = token.clone();
        std::thread::spawn(move || {
            if watcher.sleep(limit).is_ok() {
                target.cancel(deadline_reason(limit));
            }
        });
        DeadlineGuard { disarm }
    }
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        self.disarm.cancel("deadline disarmed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn first_reason_wins() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel("first");
        t.cancel("second");
        assert!(t.is_cancelled());
        assert_eq!(t.reason().as_deref(), Some("first"));
        assert_eq!(t.error().kind(), io::ErrorKind::Interrupted);
    }

    #[test]
    fn sleep_completes_when_not_cancelled() {
        let t = CancelToken::new();
        let t0 = Instant::now();
        t.sleep(Duration::from_millis(20)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn deadline_guard_fires_and_maps_to_124() {
        let t = CancelToken::new();
        let _g = DeadlineGuard::arm(&t, Duration::from_millis(20));
        let r = t.sleep(Duration::from_secs(10));
        assert!(r.is_err(), "deadline must interrupt the sleep");
        let reason = t.reason().unwrap();
        assert!(reason.starts_with(DEADLINE_PREFIX), "reason: {reason}");
        assert_eq!(deadline_code(&reason), Some(124));
        assert_eq!(deadline_code("shutdown: SIGTERM (15) received"), None);
    }

    #[test]
    fn dropped_guard_never_fires() {
        let t = CancelToken::new();
        {
            let _g = DeadlineGuard::arm(&t, Duration::from_millis(30));
        }
        std::thread::sleep(Duration::from_millis(80));
        assert!(!t.is_cancelled(), "disarmed deadline must not cancel the run");
    }

    #[test]
    fn earlier_cancellation_outranks_the_deadline() {
        let t = CancelToken::new();
        let _g = DeadlineGuard::arm(&t, Duration::from_millis(10));
        t.cancel("client disconnected");
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(t.reason().as_deref(), Some("client disconnected"));
    }

    #[test]
    fn cancel_interrupts_sleep() {
        let t = CancelToken::new();
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            let t0 = Instant::now();
            let r = t2.sleep(Duration::from_secs(30));
            (r, t0.elapsed())
        });
        std::thread::sleep(Duration::from_millis(30));
        t.cancel("watchdog fired");
        let (r, waited) = h.join().unwrap();
        assert!(r.is_err());
        assert!(waited < Duration::from_secs(5), "sleep was not interrupted");
        assert!(r.unwrap_err().to_string().contains("watchdog fired"));
    }
}
