//! Newline framing over chunked byte streams.
//!
//! Coreutils operators are line-oriented but streams are chunk-oriented;
//! [`LineBuffer`] converts between the two incrementally, without ever
//! buffering more than one partial line.

use crate::stream::ByteStream;
use bytes::{Bytes, BytesMut};
use std::io;

/// Incremental newline framer.
///
/// Push chunks with [`LineBuffer::push`], pop complete lines (including the
/// trailing `\n`) with [`LineBuffer::next_line`], and flush any final
/// unterminated line with [`LineBuffer::take_rest`].
#[derive(Default)]
pub struct LineBuffer {
    buf: BytesMut,
    scan_from: usize,
}

impl LineBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        LineBuffer::default()
    }

    /// Appends a chunk.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete line (including `\n`), if one is buffered.
    pub fn next_line(&mut self) -> Option<Bytes> {
        let idx = self.buf[self.scan_from..]
            .iter()
            .position(|&b| b == b'\n')?;
        let line = self.buf.split_to(self.scan_from + idx + 1).freeze();
        self.scan_from = 0;
        Some(line)
    }

    /// Returns the final unterminated line, if any, consuming it.
    pub fn take_rest(&mut self) -> Option<Bytes> {
        self.scan_from = 0;
        if self.buf.is_empty() {
            None
        } else {
            Some(self.buf.split().freeze())
        }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Marks the current buffer as scanned (no newline found), so the next
    /// [`LineBuffer::next_line`] only scans newly pushed bytes.
    pub fn mark_scanned(&mut self) {
        self.scan_from = self.buf.len();
    }
}

/// Splits a byte slice into lines (without trailing `\n`).
pub fn split_lines(data: &[u8]) -> Vec<&[u8]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            out.push(&data[start..i]);
            start = i + 1;
        }
    }
    if start < data.len() {
        out.push(&data[start..]);
    }
    out
}

/// Calls `f` for every line of `stream` (lines include the trailing `\n`
/// except possibly the last). Stops early if `f` returns `Ok(false)`.
pub fn for_each_line(
    stream: &mut dyn ByteStream,
    mut f: impl FnMut(&[u8]) -> io::Result<bool>,
) -> io::Result<()> {
    let mut lb = LineBuffer::new();
    while let Some(chunk) = stream.next_chunk()? {
        lb.push(&chunk);
        while let Some(line) = lb.next_line() {
            if !f(&line)? {
                return Ok(());
            }
        }
        lb.mark_scanned();
    }
    if let Some(rest) = lb.take_rest() {
        f(&rest)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::MemStream;

    #[test]
    fn frames_lines_across_chunks() {
        let mut lb = LineBuffer::new();
        lb.push(b"hel");
        assert!(lb.next_line().is_none());
        lb.push(b"lo\nwor");
        assert_eq!(lb.next_line().unwrap(), Bytes::from_static(b"hello\n"));
        assert!(lb.next_line().is_none());
        lb.push(b"ld");
        assert_eq!(lb.take_rest().unwrap(), Bytes::from_static(b"world"));
    }

    #[test]
    fn split_lines_handles_edges() {
        assert_eq!(split_lines(b""), Vec::<&[u8]>::new());
        assert_eq!(split_lines(b"a"), vec![b"a" as &[u8]]);
        assert_eq!(split_lines(b"a\n"), vec![b"a" as &[u8]]);
        assert_eq!(split_lines(b"a\nb"), vec![b"a" as &[u8], b"b"]);
        assert_eq!(split_lines(b"\n\n"), vec![b"" as &[u8], b""]);
    }

    #[test]
    fn for_each_line_iterates_all() {
        let mut s = MemStream::from_chunks(vec![
            Bytes::from_static(b"one\ntw"),
            Bytes::from_static(b"o\nthree"),
        ]);
        let mut lines = Vec::new();
        for_each_line(&mut s, |l| {
            lines.push(String::from_utf8_lossy(l).into_owned());
            Ok(true)
        })
        .unwrap();
        assert_eq!(lines, vec!["one\n", "two\n", "three"]);
    }

    #[test]
    fn for_each_line_early_stop() {
        let mut s = MemStream::from_bytes("1\n2\n3\n");
        let mut n = 0;
        for_each_line(&mut s, |_| {
            n += 1;
            Ok(n < 2)
        })
        .unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn mark_scanned_avoids_rescans_correctly() {
        let mut lb = LineBuffer::new();
        lb.push(b"abc");
        assert!(lb.next_line().is_none());
        lb.mark_scanned();
        lb.push(b"\n");
        assert_eq!(lb.next_line().unwrap(), Bytes::from_static(b"abc\n"));
    }
}
