//! Pull-based byte streams and push-based sinks.

use bytes::Bytes;
use std::io;

/// Default chunk granularity for streaming operators.
pub const DEFAULT_CHUNK: usize = 128 * 1024;

/// A pull-based stream of byte chunks.
///
/// Streams connect coreutils operators, pipes, and files. `next_chunk`
/// returns `Ok(None)` exactly once, at end of stream; implementations may
/// return chunks of any non-zero size.
pub trait ByteStream: Send {
    /// Pulls the next chunk, or `None` at end of stream.
    fn next_chunk(&mut self) -> io::Result<Option<Bytes>>;

    /// Reads the remainder of the stream into one buffer.
    fn read_to_vec(&mut self) -> io::Result<Vec<u8>>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        while let Some(chunk) = self.next_chunk()? {
            out.extend_from_slice(&chunk);
        }
        Ok(out)
    }
}

/// Boxed stream alias used across crate boundaries.
pub type BoxStream = Box<dyn ByteStream>;

impl ByteStream for Box<dyn ByteStream> {
    fn next_chunk(&mut self) -> io::Result<Option<Bytes>> {
        (**self).next_chunk()
    }
}

/// Reads everything from a boxed stream.
pub fn read_all(stream: &mut dyn ByteStream) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    while let Some(chunk) = stream.next_chunk()? {
        out.extend_from_slice(&chunk);
    }
    Ok(out)
}

/// A push-based consumer of byte chunks.
pub trait Sink: Send {
    /// Accepts one chunk. May block for backpressure.
    fn write_chunk(&mut self, chunk: Bytes) -> io::Result<()>;

    /// Signals end of stream. Must be called exactly once.
    fn finish(&mut self) -> io::Result<()>;
}

impl Sink for Box<dyn Sink> {
    fn write_chunk(&mut self, chunk: Bytes) -> io::Result<()> {
        (**self).write_chunk(chunk)
    }

    fn finish(&mut self) -> io::Result<()> {
        (**self).finish()
    }
}

/// An in-memory stream over a fixed sequence of chunks.
pub struct MemStream {
    chunks: std::vec::IntoIter<Bytes>,
}

impl MemStream {
    /// Streams `data` as a single chunk.
    pub fn from_bytes(data: impl Into<Bytes>) -> Self {
        let b: Bytes = data.into();
        let chunks = if b.is_empty() { vec![] } else { vec![b] };
        MemStream {
            chunks: chunks.into_iter(),
        }
    }

    /// Streams a sequence of chunks.
    pub fn from_chunks(chunks: Vec<Bytes>) -> Self {
        MemStream {
            chunks: chunks.into_iter(),
        }
    }

    /// An empty stream.
    pub fn empty() -> Self {
        MemStream::from_chunks(Vec::new())
    }
}

impl ByteStream for MemStream {
    fn next_chunk(&mut self) -> io::Result<Option<Bytes>> {
        Ok(self.chunks.next())
    }
}

/// A sink that collects everything into a `Vec<u8>`.
#[derive(Default)]
pub struct VecSink {
    /// Collected bytes.
    pub data: Vec<u8>,
    finished: bool,
}

impl VecSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Whether `finish` has been called.
    pub fn is_finished(&self) -> bool {
        self.finished
    }
}

impl Sink for VecSink {
    fn write_chunk(&mut self, chunk: Bytes) -> io::Result<()> {
        self.data.extend_from_slice(&chunk);
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.finished = true;
        Ok(())
    }
}

/// Copies a stream into a sink, returning the number of bytes moved.
pub fn copy(src: &mut dyn ByteStream, dst: &mut dyn Sink) -> io::Result<u64> {
    let mut n = 0u64;
    while let Some(chunk) = src.next_chunk()? {
        n += chunk.len() as u64;
        dst.write_chunk(chunk)?;
    }
    dst.finish()?;
    Ok(n)
}

/// Batches small writes into ~128 KiB chunks before forwarding.
///
/// Line-oriented producers (`grep`, `sed`, `uniq`, …) emit one write per
/// line; a pipe send or a modeled disk request per line would dominate
/// everything, so executors wrap command stdout in this.
pub struct CoalescingSink<S: Sink> {
    inner: S,
    buf: Vec<u8>,
    threshold: usize,
}

impl<S: Sink> CoalescingSink<S> {
    /// Wraps `inner` with the default 128 KiB threshold.
    pub fn new(inner: S) -> Self {
        CoalescingSink {
            inner,
            buf: Vec::new(),
            threshold: DEFAULT_CHUNK,
        }
    }

    /// Consumes the wrapper, returning the inner sink (buffer must be
    /// flushed via [`Sink::finish`] first).
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Sink> Sink for CoalescingSink<S> {
    fn write_chunk(&mut self, chunk: Bytes) -> io::Result<()> {
        if chunk.len() >= self.threshold && self.buf.is_empty() {
            return self.inner.write_chunk(chunk);
        }
        self.buf.extend_from_slice(&chunk);
        if self.buf.len() >= self.threshold {
            self.inner
                .write_chunk(Bytes::from(std::mem::take(&mut self.buf)))?;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.inner
                .write_chunk(Bytes::from(std::mem::take(&mut self.buf)))?;
        }
        self.inner.finish()
    }
}

/// A stream wrapper that counts the bytes pulled through it.
///
/// The counter is a shared atomic so the executor can read per-node
/// byte totals after the node's thread has finished (the stream itself
/// is consumed inside the thread).
pub struct CountingStream<S> {
    inner: S,
    count: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl<S: ByteStream> CountingStream<S> {
    /// Wraps `inner`, adding every pulled chunk's length to `count`.
    pub fn new(inner: S, count: std::sync::Arc<std::sync::atomic::AtomicU64>) -> Self {
        CountingStream { inner, count }
    }
}

impl<S: ByteStream> ByteStream for CountingStream<S> {
    fn next_chunk(&mut self) -> io::Result<Option<Bytes>> {
        let chunk = self.inner.next_chunk()?;
        if let Some(c) = &chunk {
            self.count
                .fetch_add(c.len() as u64, std::sync::atomic::Ordering::Relaxed);
        }
        Ok(chunk)
    }
}

/// A sink wrapper that counts the bytes pushed through it.
pub struct CountingSink<S> {
    inner: S,
    count: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl<S: Sink> CountingSink<S> {
    /// Wraps `inner`, adding every written chunk's length to `count`.
    pub fn new(inner: S, count: std::sync::Arc<std::sync::atomic::AtomicU64>) -> Self {
        CountingSink { inner, count }
    }
}

impl<S: Sink> Sink for CountingSink<S> {
    fn write_chunk(&mut self, chunk: Bytes) -> io::Result<()> {
        self.count
            .fetch_add(chunk.len() as u64, std::sync::atomic::Ordering::Relaxed);
        self.inner.write_chunk(chunk)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.inner.finish()
    }
}

/// Chains multiple streams end to end (the streaming `cat`).
pub struct ChainStream {
    streams: std::collections::VecDeque<BoxStream>,
}

impl ChainStream {
    /// Chains `streams` in order.
    pub fn new(streams: Vec<BoxStream>) -> Self {
        ChainStream {
            streams: streams.into(),
        }
    }
}

impl ByteStream for ChainStream {
    fn next_chunk(&mut self) -> io::Result<Option<Bytes>> {
        while let Some(front) = self.streams.front_mut() {
            match front.next_chunk()? {
                Some(chunk) => return Ok(Some(chunk)),
                None => {
                    self.streams.pop_front();
                }
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_stream_roundtrip() {
        let mut s = MemStream::from_bytes("hello world");
        assert_eq!(read_all(&mut s).unwrap(), b"hello world");
        assert!(s.next_chunk().unwrap().is_none());
    }

    #[test]
    fn empty_stream_is_empty() {
        let mut s = MemStream::empty();
        assert!(s.next_chunk().unwrap().is_none());
    }

    #[test]
    fn copy_moves_all_bytes() {
        let mut src = MemStream::from_chunks(vec![Bytes::from("ab"), Bytes::from("cd")]);
        let mut dst = VecSink::new();
        let n = copy(&mut src, &mut dst).unwrap();
        assert_eq!(n, 4);
        assert_eq!(dst.data, b"abcd");
        assert!(dst.is_finished());
    }

    #[test]
    fn counting_adapters_count() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let read = Arc::new(AtomicU64::new(0));
        let wrote = Arc::new(AtomicU64::new(0));
        let mut src = CountingStream::new(
            MemStream::from_chunks(vec![Bytes::from("abc"), Bytes::from("de")]),
            Arc::clone(&read),
        );
        let mut dst = CountingSink::new(VecSink::new(), Arc::clone(&wrote));
        copy(&mut src, &mut dst).unwrap();
        assert_eq!(read.load(Ordering::Relaxed), 5);
        assert_eq!(wrote.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn chain_concatenates() {
        let a = Box::new(MemStream::from_bytes("one")) as BoxStream;
        let b = Box::new(MemStream::empty()) as BoxStream;
        let c = Box::new(MemStream::from_bytes("two")) as BoxStream;
        let mut chained = ChainStream::new(vec![a, b, c]);
        assert_eq!(read_all(&mut chained).unwrap(), b"onetwo");
    }
}
