//! Crash-safe write-ahead execution journal.
//!
//! PRs 1–2 made optimized regions survive *in-process* faults; this
//! module is the substrate for surviving a hard crash (`kill -9`, OOM
//! kill, power loss). A [`Journal`] is an append-only, checksummed,
//! fsync'd record stream on the shell's virtual filesystem: before an
//! optimized region runs the session appends [`JournalRecord::RegionStart`],
//! after its staged sinks commit the executor appends
//! [`JournalRecord::StageCommitted`], and a completed region appends
//! [`JournalRecord::RegionDone`] with its outcome. Replay
//! ([`Journal::replay`]) parses the stream back, verifying the per-record
//! FNV-1a checksum and detecting a torn tail — the half-written final
//! record a crash mid-append leaves behind — which is dropped rather than
//! trusted.
//!
//! The record layout is line-oriented text (one record per line:
//! `<fnv1a-of-payload:016x> <payload>`) so a journal is inspectable with
//! `cat` — in a shell runtime, being shell-debuggable is a feature.

use crate::fs::Fs;
use crate::memo::fnv1a;
use crate::FsHandle;
use std::io;

/// One journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A new shell run began; `epoch` increments across runs on the same
    /// journal, so replay can separate an interrupted run's records from
    /// earlier history.
    RunStart {
        /// Monotonic run counter.
        epoch: u64,
    },
    /// An optimized region is about to execute.
    RegionStart {
        /// Width-insensitive [`Dfg::fingerprint`]-style shape key.
        fingerprint: u64,
        /// The input files the region reads, resolved.
        inputs: Vec<String>,
    },
    /// A transactional sink was fsync'd and renamed into place.
    StageCommitted {
        /// Final (virtual) path of the committed file.
        path: String,
    },
    /// A region finished executing.
    RegionDone {
        /// Shape key, matching the preceding `RegionStart`.
        fingerprint: u64,
        /// Region exit status.
        status: i32,
        /// Whether the run was fault-free (only clean, zero-status
        /// regions are resumable).
        clean: bool,
    },
    /// A region was abandoned mid-flight by a graceful shutdown
    /// (SIGINT/SIGTERM); its staged sinks were discarded.
    RegionAborted {
        /// Shape key.
        fingerprint: u64,
        /// The cancellation reason.
        reason: String,
    },
    /// The run's statement loop finished; a journal whose last epoch ends
    /// with this record needs no recovery.
    RunComplete,
}

impl JournalRecord {
    fn encode(&self) -> String {
        match self {
            JournalRecord::RunStart { epoch } => format!("run-start {epoch}"),
            JournalRecord::RegionStart {
                fingerprint,
                inputs,
            } => {
                let mut s = format!("region-start {fingerprint:016x}");
                for p in inputs {
                    s.push(' ');
                    s.push_str(&escape(p));
                }
                s
            }
            JournalRecord::StageCommitted { path } => {
                format!("stage-committed {}", escape(path))
            }
            JournalRecord::RegionDone {
                fingerprint,
                status,
                clean,
            } => format!(
                "region-done {fingerprint:016x} {status} {}",
                if *clean { 1 } else { 0 }
            ),
            JournalRecord::RegionAborted {
                fingerprint,
                reason,
            } => format!("region-aborted {fingerprint:016x} {}", escape(reason)),
            JournalRecord::RunComplete => "run-complete".to_string(),
        }
    }

    fn decode(payload: &str) -> Option<JournalRecord> {
        let mut parts = payload.split(' ');
        match parts.next()? {
            "run-start" => Some(JournalRecord::RunStart {
                epoch: parts.next()?.parse().ok()?,
            }),
            "region-start" => {
                let fingerprint = u64::from_str_radix(parts.next()?, 16).ok()?;
                Some(JournalRecord::RegionStart {
                    fingerprint,
                    inputs: parts.map(unescape).collect(),
                })
            }
            "stage-committed" => Some(JournalRecord::StageCommitted {
                path: unescape(parts.next()?),
            }),
            "region-done" => Some(JournalRecord::RegionDone {
                fingerprint: u64::from_str_radix(parts.next()?, 16).ok()?,
                status: parts.next()?.parse().ok()?,
                clean: parts.next()? == "1",
            }),
            "region-aborted" => Some(JournalRecord::RegionAborted {
                fingerprint: u64::from_str_radix(parts.next()?, 16).ok()?,
                reason: unescape(&parts.collect::<Vec<_>>().join(" ")),
            }),
            "run-complete" => Some(JournalRecord::RunComplete),
            _ => None,
        }
    }
}

/// Percent-encodes the bytes that would break the line/field framing.
/// Shared with the serve admission ledger ([`crate::ledger`]), which
/// rides the same line format.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b' ' => out.push_str("%20"),
            b'\n' => out.push_str("%0A"),
            b'%' => out.push_str("%25"),
            _ => out.push(b as char),
        }
    }
    out
}

pub(crate) fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 3 <= bytes.len() {
            if let Ok(v) = u8::from_str_radix(&s[i + 1..i + 3], 16) {
                out.push(v as char);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

/// The result of replaying a journal file.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// All intact records, in append order.
    pub records: Vec<JournalRecord>,
    /// Whether the file ended in a torn (half-written or
    /// checksum-corrupt) record, which was dropped.
    pub torn_tail: bool,
    /// Highest `RunStart` epoch seen (0 when the journal is empty).
    pub last_epoch: u64,
}

impl Replay {
    /// The records of the last run, when that run never reached
    /// [`JournalRecord::RunComplete`] — i.e. the shell crashed or was
    /// killed. `None` when the journal is empty or the last run finished.
    pub fn interrupted_run(&self) -> Option<&[JournalRecord]> {
        let start = self
            .records
            .iter()
            .rposition(|r| matches!(r, JournalRecord::RunStart { .. }))?;
        let tail = &self.records[start..];
        if tail.iter().any(|r| matches!(r, JournalRecord::RunComplete)) {
            return None;
        }
        Some(tail)
    }
}

/// An append-only, checksummed record stream on a virtual filesystem.
///
/// Every append writes one framed record and — when `durable` — fsyncs
/// the journal file and its parent directory, so a record that replay
/// returns was really on stable storage before the execution it gates.
pub struct Journal {
    fs: FsHandle,
    path: String,
    durable: bool,
    fsyncs: std::sync::atomic::AtomicU64,
}

impl Journal {
    /// Opens (or creates on first append) a journal at `path`.
    pub fn open(fs: FsHandle, path: impl Into<String>, durable: bool) -> Self {
        Journal {
            fs,
            path: path.into(),
            durable,
            fsyncs: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The journal's file path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// How many fsync barriers (file + directory) this journal has
    /// issued — the durability cost observability reports per run.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Appends one record, durably when the journal is durable.
    pub fn append(&self, record: &JournalRecord) -> io::Result<()> {
        let payload = record.encode();
        let line = format!("{:016x} {payload}\n", fnv1a(payload.as_bytes()));
        let mut h = self.fs.open_write(&self.path, true)?;
        h.write_all(line.as_bytes())?;
        drop(h);
        if self.durable {
            self.fs.sync(&self.path)?;
            self.fs.sync_dir(parent_dir(&self.path))?;
            self.fsyncs
                .fetch_add(2, std::sync::atomic::Ordering::Relaxed);
        }
        Ok(())
    }

    /// Replays the journal at `path` on `fs`. A missing file is an empty
    /// replay, not an error. Parsing stops at the first torn record: a
    /// line without a trailing newline, with a checksum mismatch, or
    /// otherwise unparsable — everything from there on is untrusted.
    pub fn replay(fs: &dyn Fs, path: &str) -> io::Result<Replay> {
        let mut replay = Replay::default();
        if !fs.exists(path) {
            return Ok(replay);
        }
        let raw = crate::fs::read_to_vec(fs, path)?;
        let text = String::from_utf8_lossy(&raw);
        let mut rest = text.as_ref();
        while !rest.is_empty() {
            let Some(nl) = rest.find('\n') else {
                // A crash mid-append leaves a final line with no newline.
                replay.torn_tail = true;
                break;
            };
            let line = &rest[..nl];
            rest = &rest[nl + 1..];
            let parsed = line.split_once(' ').and_then(|(crc, payload)| {
                let crc = u64::from_str_radix(crc, 16).ok()?;
                if crc != fnv1a(payload.as_bytes()) {
                    return None;
                }
                JournalRecord::decode(payload)
            });
            match parsed {
                Some(r) => {
                    if let JournalRecord::RunStart { epoch } = r {
                        replay.last_epoch = replay.last_epoch.max(epoch);
                    }
                    replay.records.push(r);
                }
                None => {
                    replay.torn_tail = true;
                    break;
                }
            }
        }
        Ok(replay)
    }
}

/// The parent directory of a normalized virtual path.
pub fn parent_dir(path: &str) -> &str {
    match path.trim_end_matches('/').rfind('/') {
        Some(0) | None => "/",
        Some(i) => &path[..i],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::write_file;

    fn roundtrip(records: &[JournalRecord]) -> Replay {
        let fs = crate::mem_fs();
        let j = Journal::open(std::sync::Arc::clone(&fs), "/.jash/journal", true);
        for r in records {
            j.append(r).unwrap();
        }
        Journal::replay(fs.as_ref(), "/.jash/journal").unwrap()
    }

    #[test]
    fn empty_journal_replays_empty() {
        let fs = crate::mem_fs();
        let r = Journal::replay(fs.as_ref(), "/.jash/journal").unwrap();
        assert!(r.records.is_empty());
        assert!(!r.torn_tail);
        assert!(r.interrupted_run().is_none());
    }

    #[test]
    fn records_roundtrip_exactly() {
        let records = vec![
            JournalRecord::RunStart { epoch: 3 },
            JournalRecord::RegionStart {
                fingerprint: 0xdead_beef,
                inputs: vec!["/in a.txt".into(), "/data/b%.txt".into()],
            },
            JournalRecord::StageCommitted {
                path: "/out dir/x".into(),
            },
            JournalRecord::RegionDone {
                fingerprint: 0xdead_beef,
                status: 0,
                clean: true,
            },
            JournalRecord::RegionAborted {
                fingerprint: 7,
                reason: "shutdown: SIGTERM received".into(),
            },
            JournalRecord::RunComplete,
        ];
        let r = roundtrip(&records);
        assert_eq!(r.records, records);
        assert!(!r.torn_tail);
        assert_eq!(r.last_epoch, 3);
        assert!(r.interrupted_run().is_none(), "run completed");
    }

    #[test]
    fn torn_tail_is_detected_and_dropped() {
        let fs = crate::mem_fs();
        let j = Journal::open(std::sync::Arc::clone(&fs), "/j", true);
        j.append(&JournalRecord::RunStart { epoch: 1 }).unwrap();
        j.append(&JournalRecord::RegionDone {
            fingerprint: 1,
            status: 0,
            clean: true,
        })
        .unwrap();
        // A crash mid-append: half a record, no trailing newline.
        let mut h = fs.open_write("/j", true).unwrap();
        h.write_all(b"0123456789abcdef region-do").unwrap();
        drop(h);
        let r = Journal::replay(fs.as_ref(), "/j").unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.records.len(), 2, "intact prefix survives");
    }

    #[test]
    fn checksum_corruption_truncates_replay() {
        let fs = crate::mem_fs();
        let j = Journal::open(std::sync::Arc::clone(&fs), "/j", true);
        j.append(&JournalRecord::RunStart { epoch: 1 }).unwrap();
        j.append(&JournalRecord::RunComplete).unwrap();
        // Flip a byte in the second record's payload.
        let mut raw = crate::fs::read_to_vec(fs.as_ref(), "/j").unwrap();
        let off = raw.len() - 3;
        raw[off] ^= 0x20;
        write_file(fs.as_ref(), "/j", &raw).unwrap();
        let r = Journal::replay(fs.as_ref(), "/j").unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.records, vec![JournalRecord::RunStart { epoch: 1 }]);
        // With the RunComplete gone, the run reads as interrupted.
        assert!(r.interrupted_run().is_some());
    }

    #[test]
    fn interrupted_run_is_the_last_epoch_tail() {
        let r = roundtrip(&[
            JournalRecord::RunStart { epoch: 1 },
            JournalRecord::RunComplete,
            JournalRecord::RunStart { epoch: 2 },
            JournalRecord::RegionDone {
                fingerprint: 42,
                status: 0,
                clean: true,
            },
        ]);
        let tail = r.interrupted_run().expect("run 2 never completed");
        assert_eq!(tail.len(), 2);
        assert_eq!(r.last_epoch, 2);
    }

    #[test]
    fn durable_appends_sync_file_and_directory() {
        let mem = std::sync::Arc::new(crate::MemFs::new());
        let fs: FsHandle = std::sync::Arc::clone(&mem) as FsHandle;
        let durable = Journal::open(std::sync::Arc::clone(&fs), "/.jash/journal", true);
        durable.append(&JournalRecord::RunComplete).unwrap();
        assert!(mem.sync_count() >= 2, "file + parent dir fsync");
        assert_eq!(durable.fsyncs(), 2, "journal counts its own barriers");
        let before = mem.sync_count();
        let scratch = Journal::open(fs, "/.jash/journal", false);
        scratch.append(&JournalRecord::RunComplete).unwrap();
        assert_eq!(mem.sync_count(), before, "non-durable journal never syncs");
        assert_eq!(scratch.fsyncs(), 0);
    }

    #[test]
    fn parent_dirs() {
        assert_eq!(parent_dir("/a/b/c"), "/a/b");
        assert_eq!(parent_dir("/a"), "/");
        assert_eq!(parent_dir("/"), "/");
    }
}
