//! Bounded in-process pipes.
//!
//! The executor connects dataflow nodes with these: a bounded queue of
//! [`Bytes`] chunks gives the same backpressure behavior as a Unix pipe's
//! fixed-size kernel buffer — a fast producer blocks until the consumer
//! catches up, which is what makes shell pipelines memory-safe on inputs
//! far larger than RAM (the paper's G2).
//!
//! Pipes built with [`pipe_with`] additionally observe a
//! [`CancelToken`] — a cancelled region wakes every blocked endpoint with
//! an error instead of deadlocking — and bump a shared progress counter
//! on every transfer, which is what the executor's stall watchdog reads.

use crate::cancel::CancelToken;
use crate::stream::{ByteStream, Sink};
use bytes::Bytes;
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Default number of in-flight chunks per pipe.
pub const DEFAULT_PIPE_DEPTH: usize = 16;

/// How long a blocked endpoint waits between cancellation checks.
const CANCEL_POLL: Duration = Duration::from_millis(20);

/// Optional observers attached to a pipe.
#[derive(Default, Clone)]
pub struct PipeHooks {
    /// Cancelling this token errors out all blocked operations.
    pub cancel: Option<CancelToken>,
    /// Incremented once per successful chunk transfer (send and receive),
    /// so a watchdog can detect a region that stopped moving data.
    pub progress: Option<Arc<AtomicU64>>,
}

struct Shared {
    state: Mutex<PipeState>,
    // One condvar for both directions keeps the state machine simple; a
    // pipe has exactly one producer and one consumer, so spurious wakeups
    // are cheap.
    cond: Condvar,
    hooks: PipeHooks,
    depth: usize,
}

struct PipeState {
    queue: VecDeque<Bytes>,
    writer_closed: bool,
    reader_closed: bool,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, PipeState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn check_cancel(&self) -> io::Result<()> {
        if let Some(tok) = &self.hooks.cancel {
            if tok.is_cancelled() {
                return Err(tok.error());
            }
        }
        Ok(())
    }

    fn bump_progress(&self) {
        if let Some(p) = &self.hooks.progress {
            p.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Creates a connected (writer, reader) pair with `depth` chunk slots.
pub fn pipe(depth: usize) -> (PipeWriter, PipeReader) {
    pipe_with(depth, PipeHooks::default())
}

/// Creates a pipe observing `hooks` (cancellation, progress counting).
pub fn pipe_with(depth: usize, hooks: PipeHooks) -> (PipeWriter, PipeReader) {
    let shared = Arc::new(Shared {
        state: Mutex::new(PipeState {
            queue: VecDeque::new(),
            writer_closed: false,
            reader_closed: false,
        }),
        cond: Condvar::new(),
        hooks,
        depth: depth.max(1),
    });
    (
        PipeWriter {
            shared: Arc::clone(&shared),
            closed: false,
        },
        PipeReader {
            shared,
            closed: false,
        },
    )
}

/// The write end of a pipe. Dropping it (or calling `finish`) closes the
/// stream for the reader.
pub struct PipeWriter {
    shared: Arc<Shared>,
    closed: bool,
}

impl PipeWriter {
    fn close(&mut self) {
        if !self.closed {
            self.closed = true;
            self.shared.lock().writer_closed = true;
            self.shared.cond.notify_all();
        }
    }
}

impl Sink for PipeWriter {
    fn write_chunk(&mut self, chunk: Bytes) -> io::Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        if self.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "pipe already finished",
            ));
        }
        let mut state = self.shared.lock();
        loop {
            self.shared.check_cancel()?;
            if state.reader_closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "pipe reader disconnected",
                ));
            }
            if state.queue.len() < self.shared.depth {
                state.queue.push_back(chunk);
                self.shared.cond.notify_all();
                drop(state);
                self.shared.bump_progress();
                return Ok(());
            }
            let (s, _) = self
                .shared
                .cond
                .wait_timeout(state, CANCEL_POLL)
                .unwrap_or_else(PoisonError::into_inner);
            state = s;
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        self.close();
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        self.close();
    }
}

/// The read end of a pipe.
pub struct PipeReader {
    shared: Arc<Shared>,
    closed: bool,
}

impl ByteStream for PipeReader {
    fn next_chunk(&mut self) -> io::Result<Option<Bytes>> {
        let mut state = self.shared.lock();
        loop {
            self.shared.check_cancel()?;
            if let Some(chunk) = state.queue.pop_front() {
                self.shared.cond.notify_all();
                drop(state);
                self.shared.bump_progress();
                return Ok(Some(chunk));
            }
            if state.writer_closed {
                return Ok(None);
            }
            let (s, _) = self
                .shared
                .cond
                .wait_timeout(state, CANCEL_POLL)
                .unwrap_or_else(PoisonError::into_inner);
            state = s;
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        if !self.closed {
            self.closed = true;
            self.shared.lock().reader_closed = true;
            self.shared.cond.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::read_all;

    #[test]
    fn pipe_transfers_in_order() {
        let (mut w, mut r) = pipe(4);
        let h = std::thread::spawn(move || {
            for i in 0..10u8 {
                w.write_chunk(Bytes::from(vec![i])).unwrap();
            }
            w.finish().unwrap();
        });
        let got = read_all(&mut r).unwrap();
        h.join().unwrap();
        assert_eq!(got, (0..10u8).collect::<Vec<_>>());
    }

    #[test]
    fn reader_sees_eof_after_finish() {
        let (mut w, mut r) = pipe(2);
        w.write_chunk(Bytes::from_static(b"x")).unwrap();
        w.finish().unwrap();
        assert_eq!(r.next_chunk().unwrap().unwrap(), Bytes::from_static(b"x"));
        assert!(r.next_chunk().unwrap().is_none());
    }

    #[test]
    fn dropped_reader_breaks_pipe() {
        let (mut w, r) = pipe(1);
        drop(r);
        assert!(w.write_chunk(Bytes::from_static(b"x")).is_err());
    }

    #[test]
    fn empty_chunks_are_skipped() {
        let (mut w, mut r) = pipe(1);
        w.write_chunk(Bytes::new()).unwrap();
        w.finish().unwrap();
        assert!(r.next_chunk().unwrap().is_none());
    }

    #[test]
    fn bounded_pipe_applies_backpressure() {
        let (mut w, mut r) = pipe(1);
        w.write_chunk(Bytes::from_static(b"1")).unwrap();
        // The second write must block until the reader drains one chunk.
        let h = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            w.write_chunk(Bytes::from_static(b"2")).unwrap();
            w.finish().unwrap();
            t0.elapsed()
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        let _ = r.next_chunk().unwrap();
        let blocked = h.join().unwrap();
        assert!(blocked >= std::time::Duration::from_millis(30));
        let _ = read_all(&mut r).unwrap();
    }

    #[test]
    fn cancel_unblocks_a_full_pipe_writer() {
        let token = CancelToken::new();
        let hooks = PipeHooks {
            cancel: Some(token.clone()),
            progress: None,
        };
        let (mut w, _r) = pipe_with(1, hooks);
        w.write_chunk(Bytes::from_static(b"1")).unwrap();
        let h = std::thread::spawn(move || w.write_chunk(Bytes::from_static(b"2")));
        std::thread::sleep(Duration::from_millis(30));
        token.cancel("test abort");
        let err = h.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert!(err.to_string().contains("test abort"));
    }

    #[test]
    fn cancel_unblocks_a_waiting_reader() {
        let token = CancelToken::new();
        let hooks = PipeHooks {
            cancel: Some(token.clone()),
            progress: None,
        };
        let (_w, mut r) = pipe_with(1, hooks);
        let h = std::thread::spawn(move || r.next_chunk());
        std::thread::sleep(Duration::from_millis(30));
        token.cancel("reader abort");
        // The writer is still open, so the only way out is the token.
        let err = h.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
    }

    #[test]
    fn progress_counter_counts_transfers() {
        let progress = Arc::new(AtomicU64::new(0));
        let hooks = PipeHooks {
            cancel: None,
            progress: Some(Arc::clone(&progress)),
        };
        let (mut w, mut r) = pipe_with(4, hooks);
        w.write_chunk(Bytes::from_static(b"a")).unwrap();
        w.write_chunk(Bytes::from_static(b"b")).unwrap();
        w.finish().unwrap();
        let _ = read_all(&mut r).unwrap();
        // 2 sends + 2 receives.
        assert_eq!(progress.load(Ordering::Relaxed), 4);
    }
}
