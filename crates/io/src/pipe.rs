//! Bounded in-process pipes.
//!
//! The executor connects dataflow nodes with these: a bounded channel of
//! [`Bytes`] chunks gives the same backpressure behavior as a Unix pipe's
//! fixed-size kernel buffer — a fast producer blocks until the consumer
//! catches up, which is what makes shell pipelines memory-safe on inputs
//! far larger than RAM (the paper's G2).

use crate::stream::{ByteStream, Sink};
use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::io;

/// Default number of in-flight chunks per pipe.
pub const DEFAULT_PIPE_DEPTH: usize = 16;

/// Creates a connected (writer, reader) pair with `depth` chunk slots.
pub fn pipe(depth: usize) -> (PipeWriter, PipeReader) {
    let (tx, rx) = bounded(depth.max(1));
    (
        PipeWriter { tx: Some(tx) },
        PipeReader { rx },
    )
}

/// The write end of a pipe. Dropping it (or calling `finish`) closes the
/// stream for the reader.
pub struct PipeWriter {
    tx: Option<Sender<Bytes>>,
}

impl Sink for PipeWriter {
    fn write_chunk(&mut self, chunk: Bytes) -> io::Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        match &self.tx {
            Some(tx) => tx.send(chunk).map_err(|_| {
                io::Error::new(io::ErrorKind::BrokenPipe, "pipe reader disconnected")
            }),
            None => Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "pipe already finished",
            )),
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        self.tx = None;
        Ok(())
    }
}

/// The read end of a pipe.
pub struct PipeReader {
    rx: Receiver<Bytes>,
}

impl ByteStream for PipeReader {
    fn next_chunk(&mut self) -> io::Result<Option<Bytes>> {
        match self.rx.recv() {
            Ok(chunk) => Ok(Some(chunk)),
            Err(_) => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::read_all;

    #[test]
    fn pipe_transfers_in_order() {
        let (mut w, mut r) = pipe(4);
        let h = std::thread::spawn(move || {
            for i in 0..10u8 {
                w.write_chunk(Bytes::from(vec![i])).unwrap();
            }
            w.finish().unwrap();
        });
        let got = read_all(&mut r).unwrap();
        h.join().unwrap();
        assert_eq!(got, (0..10u8).collect::<Vec<_>>());
    }

    #[test]
    fn reader_sees_eof_after_finish() {
        let (mut w, mut r) = pipe(2);
        w.write_chunk(Bytes::from_static(b"x")).unwrap();
        w.finish().unwrap();
        assert_eq!(r.next_chunk().unwrap().unwrap(), Bytes::from_static(b"x"));
        assert!(r.next_chunk().unwrap().is_none());
    }

    #[test]
    fn dropped_reader_breaks_pipe() {
        let (mut w, r) = pipe(1);
        drop(r);
        assert!(w.write_chunk(Bytes::from_static(b"x")).is_err());
    }

    #[test]
    fn empty_chunks_are_skipped() {
        let (mut w, mut r) = pipe(1);
        w.write_chunk(Bytes::new()).unwrap();
        w.finish().unwrap();
        assert!(r.next_chunk().unwrap().is_none());
    }

    #[test]
    fn bounded_pipe_applies_backpressure() {
        let (mut w, mut r) = pipe(1);
        w.write_chunk(Bytes::from_static(b"1")).unwrap();
        // The second write must block until the reader drains one chunk.
        let h = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            w.write_chunk(Bytes::from_static(b"2")).unwrap();
            w.finish().unwrap();
            t0.elapsed()
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        let _ = r.next_chunk().unwrap();
        let blocked = h.join().unwrap();
        assert!(blocked >= std::time::Duration::from_millis(30));
        let _ = read_all(&mut r).unwrap();
    }
}
