//! I/O substrate: byte streams, a virtual filesystem, bounded pipes, and a
//! simulated disk.
//!
//! Everything in the reproduction moves data through these abstractions so
//! that the same script can run against the real filesystem
//! ([`fs::RealFs`]) or an in-memory one ([`fs::MemFs`]) whose reads and
//! writes are metered by a shared [`disk::DiskModel`]. The disk model is
//! the substitution for the paper's EC2 gp2/gp3 volumes (Figure 1): a
//! token bucket shared by every stream on the machine reproduces the
//! bandwidth/IOPS contention that makes resource-oblivious parallelism
//! backfire on slow disks.

pub mod accounts;
pub mod cancel;
pub mod cpu;
pub mod disk;
pub mod fault;
pub mod fs;
pub mod journal;
pub mod ledger;
pub mod lines;
pub mod memo;
pub mod pipe;
pub mod stream;
pub mod tempdir;

pub use accounts::{FairShareBucket, MeteredFs, UsageMeter};
pub use cancel::{deadline_code, deadline_reason, CancelToken, DeadlineGuard, DEADLINE_PREFIX};
pub use cpu::{cpu_rate, fused_cpu_rate, CpuMeteredStream, CpuModel};
pub use disk::{DiskModel, DiskProfile, DiskStats};
pub use fault::{FaultFs, FaultPlan, FaultStream};
pub use fs::{FileMeta, Fs, MemFs, RealFs};
pub use journal::{Journal, JournalRecord, Replay};
pub use ledger::{Ledger, LedgerRecord, LedgerReplay, LedgerState};
pub use memo::{fnv1a, Memo};
pub use lines::{split_lines, LineBuffer};
pub use pipe::{pipe, pipe_with, PipeHooks, PipeReader, PipeWriter, DEFAULT_PIPE_DEPTH};
pub use stream::{
    ByteStream, CoalescingSink, CountingSink, CountingStream, MemStream, Sink, VecSink,
    DEFAULT_CHUNK,
};
pub use tempdir::TempDir;

use std::sync::Arc;

/// Shared handle to a filesystem implementation.
pub type FsHandle = Arc<dyn Fs>;

/// Convenience: an in-memory filesystem handle with no disk model.
pub fn mem_fs() -> FsHandle {
    Arc::new(MemFs::new())
}

/// Convenience: an in-memory filesystem throttled by `profile`.
pub fn mem_fs_with_disk(profile: DiskProfile) -> FsHandle {
    Arc::new(MemFs::with_disk(DiskModel::new(profile)))
}
