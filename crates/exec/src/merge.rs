//! Aggregators: recombining partial outputs into the exact sequential
//! output.

use bytes::Bytes;
use jash_io::{ByteStream, LineBuffer, Sink};
use jash_spec::Aggregator;
use std::io;

/// Runs the aggregator over `inputs` (in branch order), writing to `out`.
pub fn run_merge(
    agg: &Aggregator,
    inputs: Vec<Box<dyn ByteStream>>,
    out: &mut dyn Sink,
) -> io::Result<()> {
    // Line-granular aggregators coalesce output into chunk-sized writes.
    let mut out = Coalescer::new(out);
    match agg {
        Aggregator::Concat => concat(inputs, &mut out),
        Aggregator::MergeSort { key } => merge_sort(inputs, &mut out, key),
        Aggregator::SumCounts => sum_counts(inputs, &mut out),
        Aggregator::UniqBoundary { counted } => uniq_boundary(inputs, &mut out, *counted),
        Aggregator::TakeFirst { n } => take_first(inputs, &mut out, *n),
        Aggregator::SqueezeBoundary { set } => squeeze_boundary(inputs, &mut out, set),
    }?;
    out.finish()
}

/// Batches small writes into ~128 KiB chunks before forwarding.
struct Coalescer<'a> {
    inner: &'a mut dyn Sink,
    buf: Vec<u8>,
}

const COALESCE: usize = 128 * 1024;

impl<'a> Coalescer<'a> {
    fn new(inner: &'a mut dyn Sink) -> Self {
        Coalescer {
            inner,
            buf: Vec::with_capacity(COALESCE),
        }
    }
}

impl Sink for Coalescer<'_> {
    fn write_chunk(&mut self, chunk: Bytes) -> io::Result<()> {
        if chunk.len() >= COALESCE && self.buf.is_empty() {
            return self.inner.write_chunk(chunk);
        }
        self.buf.extend_from_slice(&chunk);
        if self.buf.len() >= COALESCE {
            self.inner
                .write_chunk(Bytes::from(std::mem::take(&mut self.buf)))?;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.inner
                .write_chunk(Bytes::from(std::mem::take(&mut self.buf)))?;
        }
        self.inner.finish()
    }
}

fn concat(mut inputs: Vec<Box<dyn ByteStream>>, out: &mut dyn Sink) -> io::Result<()> {
    for input in &mut inputs {
        while let Some(chunk) = input.next_chunk()? {
            out.write_chunk(chunk)?;
        }
    }
    Ok(())
}

/// A line-buffered reader with one-line lookahead.
struct LineReader {
    stream: Box<dyn ByteStream>,
    lb: LineBuffer,
    eof: bool,
    current: Option<Bytes>,
}

impl LineReader {
    fn new(stream: Box<dyn ByteStream>) -> io::Result<Self> {
        let mut r = LineReader {
            stream,
            lb: LineBuffer::new(),
            eof: false,
            current: None,
        };
        r.advance()?;
        Ok(r)
    }

    /// The current line (with `\n`), if any.
    fn peek(&self) -> Option<&Bytes> {
        self.current.as_ref()
    }

    fn advance(&mut self) -> io::Result<()> {
        loop {
            if let Some(line) = self.lb.next_line() {
                self.current = Some(line);
                return Ok(());
            }
            if self.eof {
                self.current = self.lb.take_rest().map(|mut rest| {
                    // Normalize a missing trailing newline so comparisons
                    // and re-emission stay line-shaped.
                    let mut v = rest.to_vec();
                    if !v.ends_with(b"\n") {
                        v.push(b'\n');
                    }
                    rest = Bytes::from(v);
                    rest
                });
                return Ok(());
            }
            match self.stream.next_chunk()? {
                Some(chunk) => {
                    self.lb.push(&chunk);
                }
                None => self.eof = true,
            }
        }
    }
}

fn merge_sort(
    inputs: Vec<Box<dyn ByteStream>>,
    out: &mut dyn Sink,
    key: &jash_spec::SortKeySpec,
) -> io::Result<()> {
    let opts: jash_coreutils::cmds::sort::SortOptions = (*key).into();
    let mut readers: Vec<LineReader> = inputs
        .into_iter()
        .map(LineReader::new)
        .collect::<io::Result<_>>()?;
    let mut last: Option<Bytes> = None;
    loop {
        // Pick the smallest current line; ties resolve to the earliest
        // branch (stability).
        let mut best: Option<(usize, &Bytes)> = None;
        for (i, r) in readers.iter().enumerate() {
            let Some(line) = r.peek() else { continue };
            best = match best {
                Some((b, bl)) if opts.compare(chomp(line), chomp(bl)) != std::cmp::Ordering::Less => {
                    Some((b, bl))
                }
                _ => Some((i, line)),
            };
        }
        let Some((i, line)) = best else { return Ok(()) };
        let line = line.clone();
        readers[i].advance()?;
        if key.unique {
            if let Some(prev) = &last {
                if opts.compare(chomp(prev), chomp(&line)) == std::cmp::Ordering::Equal {
                    continue;
                }
            }
        }
        out.write_chunk(line.clone())?;
        last = Some(line);
    }
}

fn chomp(b: &Bytes) -> &[u8] {
    match b.last() {
        Some(b'\n') => &b[..b.len() - 1],
        _ => b,
    }
}

/// Sums whitespace-separated numeric columns across branches, reproducing
/// `wc`-style formatting (bare number for one column, `{:>7}`-padded
/// otherwise).
fn sum_counts(mut inputs: Vec<Box<dyn ByteStream>>, out: &mut dyn Sink) -> io::Result<()> {
    let mut sums: Vec<i64> = Vec::new();
    for input in &mut inputs {
        let data = jash_io::stream::read_all(input.as_mut())?;
        let text = String::from_utf8_lossy(&data);
        let nums: Vec<i64> = text
            .split_whitespace()
            .filter_map(|t| t.parse().ok())
            .collect();
        if sums.is_empty() {
            sums = nums;
        } else {
            for (s, n) in sums.iter_mut().zip(nums) {
                *s += n;
            }
        }
    }
    let line = if sums.len() == 1 {
        format!("{}\n", sums[0])
    } else {
        let cols: Vec<String> = sums.iter().map(|n| format!("{n:>7}")).collect();
        format!("{}\n", cols.join(" "))
    };
    out.write_chunk(Bytes::from(line))
}

/// Concatenates, collapsing equal lines adjacent across a branch boundary.
/// With `counted`, partials are `uniq -c` output and boundary counts sum.
fn uniq_boundary(
    inputs: Vec<Box<dyn ByteStream>>,
    out: &mut dyn Sink,
    counted: bool,
) -> io::Result<()> {
    let mut held: Option<Bytes> = None;
    for input in inputs {
        let mut r = LineReader::new(input)?;
        while let Some(line) = r.peek().cloned() {
            r.advance()?;
            match held.take() {
                None => held = Some(line),
                Some(prev) => {
                    if counted {
                        let (pc, pl) = parse_counted(&prev);
                        let (nc, nl) = parse_counted(&line);
                        if pl == nl {
                            held = Some(Bytes::from(format_counted(pc + nc, &pl)));
                            continue;
                        }
                    } else if prev == line {
                        held = Some(prev);
                        continue;
                    }
                    out.write_chunk(prev)?;
                    held = Some(line);
                }
            }
        }
    }
    if let Some(prev) = held {
        out.write_chunk(prev)?;
    }
    Ok(())
}

fn parse_counted(line: &Bytes) -> (u64, Vec<u8>) {
    let body = chomp(line);
    let text = String::from_utf8_lossy(body);
    let trimmed = text.trim_start();
    match trimmed.split_once(' ') {
        Some((n, rest)) => match n.parse::<u64>() {
            Ok(c) => (c, rest.as_bytes().to_vec()),
            Err(_) => (1, body.to_vec()),
        },
        None => match trimmed.parse::<u64>() {
            Ok(c) => (c, Vec::new()),
            Err(_) => (1, body.to_vec()),
        },
    }
}

fn format_counted(count: u64, body: &[u8]) -> Vec<u8> {
    let mut v = format!("{count:>7} ").into_bytes();
    v.extend_from_slice(body);
    v.push(b'\n');
    v
}

fn take_first(
    inputs: Vec<Box<dyn ByteStream>>,
    out: &mut dyn Sink,
    n: u64,
) -> io::Result<()> {
    let mut remaining = n;
    for input in inputs {
        if remaining == 0 {
            break;
        }
        let mut r = LineReader::new(input)?;
        while remaining > 0 {
            let Some(line) = r.peek().cloned() else { break };
            r.advance()?;
            out.write_chunk(line)?;
            remaining -= 1;
        }
    }
    Ok(())
}

/// Concatenates, collapsing a boundary-spanning run of a squeezed byte.
fn squeeze_boundary(
    mut inputs: Vec<Box<dyn ByteStream>>,
    out: &mut dyn Sink,
    set: &[u8],
) -> io::Result<()> {
    let mut last_byte: Option<u8> = None;
    for input in &mut inputs {
        let mut at_start = true;
        while let Some(chunk) = input.next_chunk()? {
            let mut chunk = chunk;
            if at_start {
                if let Some(lb) = last_byte {
                    if set.contains(&lb) {
                        let skip = chunk.iter().take_while(|&&b| b == lb).count();
                        chunk = chunk.slice(skip..);
                    }
                }
                if !chunk.is_empty() {
                    at_start = false;
                }
            }
            if !chunk.is_empty() {
                last_byte = chunk.last().copied();
                out.write_chunk(chunk)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jash_io::{MemStream, VecSink};
    use jash_spec::SortKeySpec;

    fn streams(parts: &[&str]) -> Vec<Box<dyn ByteStream>> {
        parts
            .iter()
            .map(|p| Box::new(MemStream::from_bytes(p.to_string())) as Box<dyn ByteStream>)
            .collect()
    }

    fn merge(agg: &Aggregator, parts: &[&str]) -> String {
        let mut sink = VecSink::new();
        run_merge(agg, streams(parts), &mut sink).unwrap();
        String::from_utf8(sink.data).unwrap()
    }

    #[test]
    fn concat_in_order() {
        assert_eq!(
            merge(&Aggregator::Concat, &["a\n", "b\n", "c\n"]),
            "a\nb\nc\n"
        );
    }

    #[test]
    fn merge_sort_lexicographic() {
        let agg = Aggregator::MergeSort {
            key: SortKeySpec::default(),
        };
        assert_eq!(
            merge(&agg, &["a\nc\ne\n", "b\nd\n"]),
            "a\nb\nc\nd\ne\n"
        );
    }

    #[test]
    fn merge_sort_numeric_reverse() {
        let agg = Aggregator::MergeSort {
            key: SortKeySpec {
                numeric: true,
                reverse: true,
                ..Default::default()
            },
        };
        assert_eq!(merge(&agg, &["9\n5\n1\n", "10\n2\n"]), "10\n9\n5\n2\n1\n");
    }

    #[test]
    fn merge_sort_unique() {
        let agg = Aggregator::MergeSort {
            key: SortKeySpec {
                unique: true,
                ..Default::default()
            },
        };
        assert_eq!(merge(&agg, &["a\nb\n", "b\nc\n"]), "a\nb\nc\n");
    }

    #[test]
    fn merge_sort_equals_full_sort_property() {
        // merge(sort(a), sort(b)) == sort(a ++ b) on random-ish data.
        let a = "pear\napple\nzebra\n";
        let b = "mango\napple\nberry\n";
        let sort = |s: &str| {
            let mut v: Vec<&str> = s.lines().collect();
            v.sort();
            v.iter().map(|l| format!("{l}\n")).collect::<String>()
        };
        let agg = Aggregator::MergeSort {
            key: SortKeySpec::default(),
        };
        let merged = merge(&agg, &[&sort(a), &sort(b)]);
        assert_eq!(merged, sort(&(a.to_string() + b)));
    }

    #[test]
    fn sum_counts_single_column() {
        assert_eq!(merge(&Aggregator::SumCounts, &["3\n", "4\n"]), "7\n");
    }

    #[test]
    fn sum_counts_multi_column() {
        let out = merge(&Aggregator::SumCounts, &["  1  2  3\n", "  4  5  6\n"]);
        let nums: Vec<&str> = out.split_whitespace().collect();
        assert_eq!(nums, vec!["5", "7", "9"]);
    }

    #[test]
    fn uniq_boundary_collapses_duplicates() {
        let agg = Aggregator::UniqBoundary { counted: false };
        assert_eq!(merge(&agg, &["a\nb\n", "b\nc\n"]), "a\nb\nc\n");
        assert_eq!(merge(&agg, &["a\n", "a\n", "a\n"]), "a\n");
        assert_eq!(merge(&agg, &["a\nb\n", "c\n"]), "a\nb\nc\n");
    }

    #[test]
    fn uniq_boundary_counted_sums() {
        let agg = Aggregator::UniqBoundary { counted: true };
        let out = merge(&agg, &["      2 a\n", "      3 a\n      1 b\n"]);
        assert_eq!(out, "      5 a\n      1 b\n");
    }

    #[test]
    fn take_first_limits() {
        let agg = Aggregator::TakeFirst { n: 3 };
        assert_eq!(merge(&agg, &["1\n2\n", "3\n4\n"]), "1\n2\n3\n");
    }

    #[test]
    fn squeeze_boundary_drops_run() {
        let agg = Aggregator::SqueezeBoundary { set: vec![b'\n'] };
        // Chunk 1 ends with \n, chunk 2 starts with \n\n: squeeze to one.
        assert_eq!(merge(&agg, &["word\n", "\n\nnext\n"]), "word\nnext\n");
        // Non-squeezed bytes untouched.
        assert_eq!(merge(&agg, &["ab", "ba"]), "abba");
    }

    #[test]
    fn empty_branches_ok() {
        assert_eq!(merge(&Aggregator::Concat, &["", "x\n", ""]), "x\n");
        let agg = Aggregator::MergeSort {
            key: SortKeySpec::default(),
        };
        assert_eq!(merge(&agg, &["", ""]), "");
    }
}
