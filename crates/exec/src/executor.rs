//! Threaded execution of dataflow graphs.
//!
//! Every live node becomes a thread; every edge a bounded pipe. This is
//! the in-process analogue of the process/FIFO runtime PaSh generates:
//! backpressure comes from the bounded pipes, early termination (`head`)
//! propagates as broken-pipe errors that upstream nodes treat as the
//! moral equivalent of `SIGPIPE`.

use crate::merge::run_merge;
use crate::split::{split_contiguous, split_round_robin, DEFAULT_BLOCK_LINES};
use bytes::Bytes;
use jash_coreutils::{UtilCtx, UtilIo};
use jash_dataflow::{Dfg, NodeId, NodeKind};
use jash_io::fs::{FileSink, FileStream};
use jash_io::{ByteStream, FsHandle, MemStream, Sink};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Execution parameters.
pub struct ExecConfig {
    /// Filesystem all nodes operate on.
    pub fs: FsHandle,
    /// Directory relative paths resolve against.
    pub cwd: String,
    /// Chunk slots per pipe.
    pub pipe_depth: usize,
    /// Contiguous split plans (byte targets per branch), keyed by split
    /// node. Splits without a plan use round-robin blocks.
    pub split_targets: HashMap<NodeId, Vec<u64>>,
    /// Lines per round-robin block.
    pub block_lines: usize,
    /// Optional simulated CPU: command nodes charge modeled per-byte
    /// compute time as they consume input.
    pub cpu: Option<Arc<jash_io::CpuModel>>,
    /// Materialize split chunks through files under this directory instead
    /// of streaming through memory.
    ///
    /// This reproduces the PaSh baseline's resource assumption (paper
    /// §3.2: "PaSh assumes a machine with high storage throughput and lots
    /// of available storage space for buffering") — every split byte is
    /// written to and re-read from the (modeled) disk, which is exactly
    /// what makes resource-oblivious parallelism regress on the Standard
    /// instance in Figure 1.
    pub buffer_splits_in: Option<String>,
}

impl ExecConfig {
    /// Defaults over `fs`.
    pub fn new(fs: FsHandle) -> Self {
        ExecConfig {
            fs,
            cwd: "/".to_string(),
            pipe_depth: jash_io::pipe::DEFAULT_PIPE_DEPTH,
            split_targets: HashMap::new(),
            block_lines: DEFAULT_BLOCK_LINES,
            cpu: None,
            buffer_splits_in: None,
        }
    }
}

/// Per-node execution record.
#[derive(Debug, Clone)]
pub struct NodeMetric {
    /// The node.
    pub node: NodeId,
    /// Display label.
    pub label: String,
    /// Wall time spent in the node's thread.
    pub wall: Duration,
    /// Exit status (commands only).
    pub status: Option<i32>,
}

/// The result of executing a graph.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Captured stdout of the region (empty when it ended in a file
    /// write).
    pub stdout: Vec<u8>,
    /// Combined diagnostics of all nodes.
    pub stderr: Vec<u8>,
    /// Region exit status (pipeline semantics; see crate docs).
    pub status: i32,
    /// Per-node records.
    pub metrics: Vec<NodeMetric>,
    /// End-to-end wall time.
    pub wall: Duration,
}

/// Validates that every round-robin split only feeds order-insensitive
/// aggregators. Returns the offending merge label on violation.
pub fn check_split_safety(dfg: &Dfg, cfg: &ExecConfig) -> Result<(), String> {
    for n in dfg.node_ids() {
        if !matches!(dfg.node(n).kind, NodeKind::Split { .. }) {
            continue;
        }
        if cfg.split_targets.contains_key(&n) {
            continue;
        }
        // Walk downstream looking for order-sensitive merges.
        let mut stack: Vec<NodeId> = dfg
            .node(n)
            .outputs
            .iter()
            .map(|&e| dfg.edge(e).to)
            .collect();
        let mut seen = std::collections::HashSet::new();
        while let Some(m) = stack.pop() {
            if !seen.insert(m) {
                continue;
            }
            if let NodeKind::Merge { agg } = &dfg.node(m).kind {
                let order_sensitive = matches!(
                    agg,
                    jash_spec::Aggregator::Concat
                        | jash_spec::Aggregator::UniqBoundary { .. }
                        | jash_spec::Aggregator::SqueezeBoundary { .. }
                        | jash_spec::Aggregator::TakeFirst { .. }
                );
                if order_sensitive {
                    return Err(format!(
                        "round-robin split feeds order-sensitive {}",
                        dfg.node(m).kind.label()
                    ));
                }
            }
            stack.extend(dfg.node(m).outputs.iter().map(|&e| dfg.edge(e).to));
        }
    }
    Ok(())
}

/// A sink appending into a shared buffer.
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl Sink for SharedSink {
    fn write_chunk(&mut self, chunk: Bytes) -> io::Result<()> {
        self.0.lock().extend_from_slice(&chunk);
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A sink that discards everything.
struct NullSink;

impl Sink for NullSink {
    fn write_chunk(&mut self, _chunk: Bytes) -> io::Result<()> {
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Executes a graph to completion.
pub fn execute(dfg: &Dfg, cfg: &ExecConfig) -> io::Result<ExecOutcome> {
    check_split_safety(dfg, cfg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let t0 = Instant::now();

    // Create a pipe per edge, then hand the endpoints to node threads.
    let mut writers: Vec<Option<Box<dyn Sink>>> = Vec::new();
    let mut readers: Vec<Option<Box<dyn ByteStream>>> = Vec::new();
    for _ in &dfg.edges {
        let (w, r) = jash_io::pipe(cfg.pipe_depth);
        writers.push(Some(Box::new(w)));
        readers.push(Some(Box::new(r)));
    }

    let capture = Arc::new(Mutex::new(Vec::new()));
    let stderr = Arc::new(Mutex::new(Vec::new()));
    let metrics: Arc<Mutex<Vec<NodeMetric>>> = Arc::new(Mutex::new(Vec::new()));

    // The terminal node (no outputs, produces data) feeds the capture
    // buffer.
    let terminal = dfg.node_ids().find(|&n| {
        jash_dataflow::is_live(dfg, n)
            && dfg.node(n).outputs.is_empty()
            && matches!(
                dfg.node(n).kind,
                NodeKind::Command { .. } | NodeKind::Merge { .. } | NodeKind::ReadFile { .. }
            )
    });

    std::thread::scope(|scope| -> io::Result<()> {
        for n in dfg.node_ids() {
            if !jash_dataflow::is_live(dfg, n) {
                continue;
            }
            let kind = dfg.node(n).kind.clone();
            let ins: Vec<Box<dyn ByteStream>> = dfg
                .node(n)
                .inputs
                .iter()
                .map(|e| readers[e.0].take().expect("reader taken once"))
                .collect();
            let mut outs: Vec<Box<dyn Sink>> = dfg
                .node(n)
                .outputs
                .iter()
                .map(|e| writers[e.0].take().expect("writer taken once"))
                .collect();
            if terminal == Some(n) {
                outs.push(Box::new(SharedSink(Arc::clone(&capture))));
            }
            let fs = Arc::clone(&cfg.fs);
            let cwd = cfg.cwd.clone();
            let stderr = Arc::clone(&stderr);
            let metrics = Arc::clone(&metrics);
            let split_plan = cfg.split_targets.get(&n).cloned();
            let block_lines = cfg.block_lines;
            let buffer_dir = cfg.buffer_splits_in.clone();
            let cpu = cfg.cpu.clone();

            scope.spawn(move || {
                let start = Instant::now();
                let status = run_node(
                    &kind, n, ins, outs, fs, &cwd, &stderr, split_plan, block_lines, buffer_dir,
                    cpu,
                );
                let status = match status {
                    Ok(s) => s,
                    Err(e) if e.kind() == io::ErrorKind::BrokenPipe => Some(0),
                    Err(e) => {
                        stderr
                            .lock()
                            .extend_from_slice(format!("jash-exec: {e}\n").as_bytes());
                        Some(125)
                    }
                };
                metrics.lock().push(NodeMetric {
                    node: n,
                    label: kind.label(),
                    wall: start.elapsed(),
                    status,
                });
            });
        }
        Ok(())
    })?;

    let metrics = Arc::try_unwrap(metrics)
        .map(|m| m.into_inner())
        .unwrap_or_default();
    let status = region_status(dfg, &metrics);
    Ok(ExecOutcome {
        stdout: Arc::try_unwrap(capture)
            .map(|m| m.into_inner())
            .unwrap_or_default(),
        stderr: Arc::try_unwrap(stderr)
            .map(|m| m.into_inner())
            .unwrap_or_default(),
        status,
        metrics,
        wall: t0.elapsed(),
    })
}

#[allow(clippy::too_many_arguments)]
fn run_node(
    kind: &NodeKind,
    node: NodeId,
    mut ins: Vec<Box<dyn ByteStream>>,
    mut outs: Vec<Box<dyn Sink>>,
    fs: FsHandle,
    cwd: &str,
    stderr: &Arc<Mutex<Vec<u8>>>,
    split_plan: Option<Vec<u64>>,
    block_lines: usize,
    buffer_dir: Option<String>,
    cpu: Option<Arc<jash_io::CpuModel>>,
) -> io::Result<Option<i32>> {
    match kind {
        NodeKind::ReadFile { path } => {
            let path = jash_io::fs::normalize(cwd, path);
            let mut stream = FileStream::open(fs.as_ref(), &path)?;
            let out = outs.first_mut().expect("read has one output");
            while let Some(chunk) = stream.next_chunk()? {
                out.write_chunk(chunk)?;
            }
            out.finish()?;
            Ok(None)
        }
        NodeKind::WriteFile { path, append } => {
            let path = jash_io::fs::normalize(cwd, path);
            let mut sink = FileSink::create(fs.as_ref(), &path, *append)?;
            let input = ins.first_mut().expect("write has one input");
            while let Some(chunk) = input.next_chunk()? {
                sink.write_chunk(chunk)?;
            }
            sink.finish()?;
            Ok(None)
        }
        NodeKind::Discard => {
            if let Some(input) = ins.first_mut() {
                while input.next_chunk()?.is_some() {}
            }
            Ok(None)
        }
        NodeKind::Split { width } => {
            let input = ins.first_mut().expect("split has one input");
            let block = if block_lines == 0 {
                DEFAULT_BLOCK_LINES
            } else {
                block_lines
            };
            if let Some(dir) = buffer_dir {
                // PaSh-style disk buffering: materialize every chunk to a
                // temp file, then stream the files into the branches. All
                // bytes hit the (modeled) disk twice.
                let paths: Vec<String> = (0..*width)
                    .map(|b| format!("{}/split-{}-{}", dir.trim_end_matches('/'), node.0, b))
                    .collect();
                {
                    let mut file_sinks: Vec<Box<dyn Sink>> = paths
                        .iter()
                        .map(|p| {
                            FileSink::create(fs.as_ref(), p, false)
                                .map(|s| Box::new(s) as Box<dyn Sink>)
                        })
                        .collect::<io::Result<_>>()?;
                    match split_plan {
                        Some(targets) => {
                            split_contiguous(input.as_mut(), &mut file_sinks, &targets)?
                        }
                        None => split_round_robin(input.as_mut(), &mut file_sinks, block)?,
                    }
                }
                // Each branch reads its chunk file on its own feeder
                // thread — as in PaSh, where every worker opens its chunk
                // independently. (A single interleaved feeder would
                // deadlock against order-sequential merges downstream.)
                std::thread::scope(|scope| -> io::Result<()> {
                    let mut handles = Vec::new();
                    for (path, mut out) in paths.iter().zip(outs.drain(..)) {
                        let fs = Arc::clone(&fs);
                        handles.push(scope.spawn(move || -> io::Result<()> {
                            let mut stream = FileStream::open(fs.as_ref(), path)?;
                            loop {
                                match stream.next_chunk() {
                                    Ok(Some(chunk)) => {
                                        if out.write_chunk(chunk).is_err() {
                                            break; // Downstream closed early.
                                        }
                                    }
                                    Ok(None) => break,
                                    Err(e) => return Err(e),
                                }
                            }
                            out.finish()?;
                            let _ = fs.remove(path);
                            Ok(())
                        }));
                    }
                    for h in handles {
                        h.join().map_err(|_| {
                            io::Error::other("split feeder thread panicked")
                        })??;
                    }
                    Ok(())
                })?;
            } else {
                match split_plan {
                    Some(targets) => split_contiguous(input.as_mut(), &mut outs, &targets)?,
                    None => split_round_robin(input.as_mut(), &mut outs, block)?,
                }
            }
            Ok(None)
        }
        NodeKind::Merge { agg } => {
            let out = outs.first_mut().expect("merge has an output");
            run_merge(agg, ins, out.as_mut())?;
            Ok(None)
        }
        NodeKind::Command { name, args, .. } => {
            let mut stdin: Box<dyn ByteStream> = match ins.pop() {
                Some(s) => s,
                None => Box::new(MemStream::empty()),
            };
            if let Some(model) = &cpu {
                stdin = Box::new(jash_io::CpuMeteredStream::new(
                    stdin,
                    Arc::clone(model),
                    jash_io::cpu_rate(name),
                ));
            }
            let stdout_inner: Box<dyn Sink> = match outs.pop() {
                Some(s) => s,
                None => Box::new(NullSink),
            };
            // Batch line-grained command output into chunk-sized writes.
            let mut stdout: Box<dyn Sink> =
                Box::new(jash_io::CoalescingSink::new(stdout_inner));
            let mut err_sink = SharedSink(Arc::clone(stderr));
            let ctx = UtilCtx {
                fs,
                cwd: cwd.to_string(),
            };
            let status = {
                let mut io = UtilIo {
                    stdin: stdin.as_mut(),
                    stdout: stdout.as_mut(),
                    stderr: &mut err_sink,
                };
                jash_coreutils::run_utility(name, args, &mut io, &ctx)
            };
            // Close stdout so downstream sees EOF, and drain leftover
            // stdin so upstream can finish.
            stdout.finish()?;
            drop(stdout);
            drop(stdin);
            Ok(Some(status?))
        }
    }
}

/// Pipeline-style region status: a real error (≥2) anywhere wins;
/// otherwise the final stage decides, where a parallelized final stage
/// succeeds if any clone succeeded (matching `grep`-style predicates).
fn region_status(dfg: &Dfg, metrics: &[NodeMetric]) -> i32 {
    let by_node: HashMap<NodeId, i32> = metrics
        .iter()
        .filter_map(|m| m.status.map(|s| (m.node, s)))
        .collect();
    if let Some(err) = by_node.values().copied().filter(|s| *s >= 2).max() {
        return err;
    }
    // Final stage: command nodes with no downstream command nodes.
    let mut last_stage: Vec<i32> = Vec::new();
    for (&n, &s) in &by_node {
        let mut downstream_cmd = false;
        let mut stack: Vec<NodeId> = dfg
            .node(n)
            .outputs
            .iter()
            .map(|&e| dfg.edge(e).to)
            .collect();
        while let Some(m) = stack.pop() {
            if matches!(dfg.node(m).kind, NodeKind::Command { .. }) {
                downstream_cmd = true;
                break;
            }
            stack.extend(dfg.node(m).outputs.iter().map(|&e| dfg.edge(e).to));
        }
        if !downstream_cmd {
            last_stage.push(s);
        }
    }
    if last_stage.is_empty() {
        0
    } else if last_stage.iter().any(|&s| s == 0) {
        0
    } else {
        *last_stage.iter().max().expect("nonempty")
    }
}
