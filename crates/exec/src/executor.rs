//! Threaded execution of dataflow graphs.
//!
//! Every live node becomes a thread; every edge a bounded pipe. This is
//! the in-process analogue of the process/FIFO runtime PaSh generates:
//! backpressure comes from the bounded pipes, early termination (`head`)
//! propagates as broken-pipe errors that upstream nodes treat as the
//! moral equivalent of `SIGPIPE`.
//!
//! # Failure semantics
//!
//! Optimized execution must never be *less* safe than the sequential
//! interpretation it replaces, so the executor is transactional and
//! self-diagnosing:
//!
//! * **No panics across threads** — endpoint wiring errors surface as
//!   [`io::Error`]s before any thread spawns, and a node thread that does
//!   panic is caught ([`std::panic::catch_unwind`]) and recorded in its
//!   [`NodeMetric::failure`] instead of poisoning the scope.
//! * **Benign vs real faults** — a broken pipe is normal dataflow
//!   shutdown (`head` exiting early) and maps to status 0; every other IO
//!   error marks the node failed (status 125, `failure` recorded).
//! * **Transactional sinks** — `WriteFile` nodes write to a private
//!   staging path and are renamed over the target only when the whole
//!   region succeeded; a failed region removes its staging files and
//!   leaves prior file contents untouched, so a JIT can fall back to
//!   sequential re-execution without observable side effects.
//! * **Stall watchdog** — when [`ExecConfig::node_timeout`] is set, a
//!   watchdog cancels the region (waking every blocked pipe endpoint
//!   with a descriptive error) if no chunk moves across any pipe for the
//!   configured duration.

use crate::merge::run_merge;
use crate::split::{split_contiguous, split_round_robin, DEFAULT_BLOCK_LINES};
use crate::supervise::{classify, ErrorClass};
use bytes::Bytes;
use jash_coreutils::{UtilCtx, UtilIo};
use jash_dataflow::{Dfg, NodeId, NodeKind};
use jash_io::fs::{FileSink, FileStream};
use jash_io::{ByteStream, CancelToken, FsHandle, MemStream, PipeHooks, Sink};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Execution parameters.
pub struct ExecConfig {
    /// Filesystem all nodes operate on.
    pub fs: FsHandle,
    /// Directory relative paths resolve against.
    pub cwd: String,
    /// Chunk slots per pipe.
    pub pipe_depth: usize,
    /// Contiguous split plans (byte targets per branch), keyed by split
    /// node. Splits without a plan use round-robin blocks.
    pub split_targets: HashMap<NodeId, Vec<u64>>,
    /// Lines per round-robin block.
    pub block_lines: usize,
    /// Optional simulated CPU: command nodes charge modeled per-byte
    /// compute time as they consume input.
    pub cpu: Option<Arc<jash_io::CpuModel>>,
    /// Materialize split chunks through files under this directory instead
    /// of streaming through memory.
    ///
    /// This reproduces the PaSh baseline's resource assumption (paper
    /// §3.2: "PaSh assumes a machine with high storage throughput and lots
    /// of available storage space for buffering") — every split byte is
    /// written to and re-read from the (modeled) disk, which is exactly
    /// what makes resource-oblivious parallelism regress on the Standard
    /// instance in Figure 1.
    pub buffer_splits_in: Option<String>,
    /// Abort the region if no pipe moves a chunk for this long. `None`
    /// disables the watchdog.
    pub node_timeout: Option<Duration>,
    /// Cancellation token shared with the region. Supplying one lets
    /// callers (and fault harnesses) interrupt blocked nodes; the
    /// executor creates a private token when absent.
    pub cancel: Option<CancelToken>,
    /// Durable commits (default on): fsync each staged file before its
    /// atomic rename and the parent directory after, so a "committed"
    /// region survives a crash or power loss. Disable for scratch runs
    /// where throughput beats durability.
    pub durable: bool,
    /// Execution journal to notify of committed sinks
    /// ([`jash_io::JournalRecord::StageCommitted`]), when the session
    /// keeps one.
    pub journal: Option<Arc<jash_io::Journal>>,
    /// Fault injection: make every fused kernel node fail with this
    /// message instead of executing. Exercises the kernel → unfused →
    /// interpreter degradation ladder.
    pub kernel_fault: Option<String>,
}

impl ExecConfig {
    /// Defaults over `fs`.
    pub fn new(fs: FsHandle) -> Self {
        ExecConfig {
            fs,
            cwd: "/".to_string(),
            pipe_depth: jash_io::pipe::DEFAULT_PIPE_DEPTH,
            split_targets: HashMap::new(),
            block_lines: DEFAULT_BLOCK_LINES,
            cpu: None,
            buffer_splits_in: None,
            node_timeout: None,
            cancel: None,
            durable: true,
            journal: None,
            kernel_fault: None,
        }
    }
}

/// Per-node execution record.
#[derive(Debug, Clone)]
pub struct NodeMetric {
    /// The node.
    pub node: NodeId,
    /// Display label.
    pub label: String,
    /// Offset of the node thread's start from the region's start.
    pub start_offset: Duration,
    /// Wall time spent in the node's thread.
    pub wall: Duration,
    /// Bytes the node pulled from its input edges.
    pub bytes_in: u64,
    /// Bytes the node pushed to its output edges (for the terminal node
    /// this includes the captured stdout).
    pub bytes_out: u64,
    /// Exit status (commands and fused kernels only).
    pub status: Option<i32>,
    /// Input lines consumed (fused kernels only; 0 elsewhere).
    pub lines: u64,
    /// Why the node failed, when it did: the IO error, the cancellation
    /// reason, or a captured panic message. `None` for clean completion
    /// (including benign broken-pipe shutdown).
    pub failure: Option<String>,
    /// Supervision classification of the failure (`None` when clean).
    pub class: Option<ErrorClass>,
}

/// The result of executing a graph.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Captured stdout of the region (empty when it ended in a file
    /// write).
    pub stdout: Vec<u8>,
    /// Combined diagnostics of all nodes, grouped per node (each node's
    /// lines are flushed together, prefixed with its label) so the
    /// interleaving is deterministic.
    pub stderr: Vec<u8>,
    /// Region exit status (pipeline semantics; see crate docs).
    pub status: i32,
    /// Per-node records.
    pub metrics: Vec<NodeMetric>,
    /// End-to-end wall time.
    pub wall: Duration,
    /// Bytes that entered the region from files (`ReadFile` sources).
    pub bytes_in: u64,
    /// Bytes the region produced: captured stdout plus bytes reaching
    /// `WriteFile` sinks.
    pub bytes_out: u64,
    /// Region-level failures: every node failure plus any commit
    /// failure. Empty means the region ran (and committed) cleanly —
    /// nonzero command statuses such as `grep` finding nothing are not
    /// failures.
    pub failures: Vec<String>,
    /// Worst-severity classification across all failures (`None` when the
    /// region is clean) — what the supervision layer keys retry vs
    /// degrade vs failover decisions off.
    pub fault_class: Option<ErrorClass>,
}

impl ExecOutcome {
    /// Whether the region completed without faults (IO errors, panics,
    /// stalls, or commit failures).
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Validates that every round-robin split only feeds order-insensitive
/// aggregators. Returns the offending merge label on violation.
pub fn check_split_safety(dfg: &Dfg, cfg: &ExecConfig) -> Result<(), String> {
    for n in dfg.node_ids() {
        if !matches!(dfg.node(n).kind, NodeKind::Split { .. }) {
            continue;
        }
        if cfg.split_targets.contains_key(&n) {
            continue;
        }
        // Walk downstream looking for order-sensitive merges.
        let mut stack: Vec<NodeId> = dfg
            .node(n)
            .outputs
            .iter()
            .map(|&e| dfg.edge(e).to)
            .collect();
        let mut seen = std::collections::HashSet::new();
        while let Some(m) = stack.pop() {
            if !seen.insert(m) {
                continue;
            }
            if let NodeKind::Merge { agg } = &dfg.node(m).kind {
                let order_sensitive = matches!(
                    agg,
                    jash_spec::Aggregator::Concat
                        | jash_spec::Aggregator::UniqBoundary { .. }
                        | jash_spec::Aggregator::SqueezeBoundary { .. }
                        | jash_spec::Aggregator::TakeFirst { .. }
                );
                if order_sensitive {
                    return Err(format!(
                        "round-robin split feeds order-sensitive {}",
                        dfg.node(m).kind.label()
                    ));
                }
            }
            stack.extend(dfg.node(m).outputs.iter().map(|&e| dfg.edge(e).to));
        }
    }
    Ok(())
}

/// A sink appending into a shared buffer.
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl Sink for SharedSink {
    fn write_chunk(&mut self, chunk: Bytes) -> io::Result<()> {
        self.0.lock().extend_from_slice(&chunk);
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A sink appending into a thread-local buffer.
struct BufSink<'a>(&'a mut Vec<u8>);

impl Sink for BufSink<'_> {
    fn write_chunk(&mut self, chunk: Bytes) -> io::Result<()> {
        self.0.extend_from_slice(&chunk);
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A sink that discards everything.
struct NullSink;

impl Sink for NullSink {
    fn write_chunk(&mut self, _chunk: Bytes) -> io::Result<()> {
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The staging path for a transactional `WriteFile` at `node` targeting
/// `final_path`.
pub fn staging_path(final_path: &str, node: NodeId) -> String {
    format!("{final_path}.jash-stage-{}", node.0)
}

fn wiring_error(edge: usize, end: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("dataflow wiring: {end} endpoint of edge {edge} requested twice (malformed graph)"),
    )
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Appends `lines` to the shared stderr buffer under one lock, each line
/// prefixed with the node's label, so concurrent nodes can never
/// interleave mid-message.
fn flush_node_stderr(shared: &Arc<Mutex<Vec<u8>>>, label: &str, lines: &[u8]) {
    if lines.is_empty() {
        return;
    }
    let mut out = shared.lock();
    for line in lines.split_inclusive(|&b| b == b'\n') {
        out.extend_from_slice(label.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(line);
    }
    if !lines.ends_with(b"\n") {
        out.push(b'\n');
    }
}

/// Executes a graph to completion.
///
/// `WriteFile` sinks are transactional: they write to a staging path and
/// commit (atomic rename) only if no node failed; otherwise staging files
/// are removed and the error is reported through
/// [`ExecOutcome::failures`].
pub fn execute(dfg: &Dfg, cfg: &ExecConfig) -> io::Result<ExecOutcome> {
    check_split_safety(dfg, cfg).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let t0 = Instant::now();

    let cancel = cfg.cancel.clone().unwrap_or_default();
    let progress = Arc::new(AtomicU64::new(0));
    let hooks = PipeHooks {
        cancel: Some(cancel.clone()),
        progress: Some(Arc::clone(&progress)),
    };

    // Create a pipe per edge, then hand the endpoints to node threads.
    let mut writers: Vec<Option<Box<dyn Sink>>> = Vec::new();
    let mut readers: Vec<Option<Box<dyn ByteStream>>> = Vec::new();
    for _ in &dfg.edges {
        let (w, r) = jash_io::pipe_with(cfg.pipe_depth, hooks.clone());
        writers.push(Some(Box::new(w)));
        readers.push(Some(Box::new(r)));
    }

    let capture = Arc::new(Mutex::new(Vec::new()));
    let stderr = Arc::new(Mutex::new(Vec::new()));
    let metrics: Arc<Mutex<Vec<NodeMetric>>> = Arc::new(Mutex::new(Vec::new()));

    // The terminal node (no outputs, produces data) feeds the capture
    // buffer.
    let terminal = dfg.node_ids().find(|&n| {
        jash_dataflow::is_live(dfg, n)
            && dfg.node(n).outputs.is_empty()
            && matches!(
                dfg.node(n).kind,
                NodeKind::Command { .. }
                    | NodeKind::Merge { .. }
                    | NodeKind::ReadFile { .. }
                    | NodeKind::Fused { .. }
            )
    });

    // Wire every live node's endpoints up front — errors here surface
    // before any thread starts, and the whole wiring is validated (each
    // edge endpoint is consumed exactly once).
    struct Wired {
        node: NodeId,
        kind: NodeKind,
        ins: Vec<Box<dyn ByteStream>>,
        outs: Vec<Box<dyn Sink>>,
        staging: Option<String>,
        // Shared with the counting adapters wrapped around the node's
        // edges, so byte totals survive the node thread.
        bytes_in: Arc<AtomicU64>,
        bytes_out: Arc<AtomicU64>,
        // Input lines consumed (fused kernels report through this).
        lines: Arc<AtomicU64>,
    }
    let mut wired: Vec<Wired> = Vec::new();
    // (final path, staging path) for every transactional sink.
    let mut staged_files: Vec<(String, String)> = Vec::new();
    for n in dfg.node_ids() {
        if !jash_dataflow::is_live(dfg, n) {
            continue;
        }
        let kind = dfg.node(n).kind.clone();
        let bytes_in = Arc::new(AtomicU64::new(0));
        let bytes_out = Arc::new(AtomicU64::new(0));
        let lines = Arc::new(AtomicU64::new(0));
        let mut ins: Vec<Box<dyn ByteStream>> = Vec::new();
        for e in &dfg.node(n).inputs {
            let r = readers
                .get_mut(e.0)
                .and_then(Option::take)
                .ok_or_else(|| wiring_error(e.0, "read"))?;
            ins.push(Box::new(jash_io::CountingStream::new(
                r,
                Arc::clone(&bytes_in),
            )));
        }
        let mut outs: Vec<Box<dyn Sink>> = Vec::new();
        for e in &dfg.node(n).outputs {
            let w = writers
                .get_mut(e.0)
                .and_then(Option::take)
                .ok_or_else(|| wiring_error(e.0, "write"))?;
            outs.push(Box::new(jash_io::CountingSink::new(
                w,
                Arc::clone(&bytes_out),
            )));
        }
        if terminal == Some(n) {
            outs.push(Box::new(jash_io::CountingSink::new(
                SharedSink(Arc::clone(&capture)),
                Arc::clone(&bytes_out),
            )));
        }
        let staging = if let NodeKind::WriteFile { path, .. } = &kind {
            let final_path = jash_io::fs::normalize(&cfg.cwd, path);
            let stage = staging_path(&final_path, n);
            staged_files.push((final_path, stage.clone()));
            Some(stage)
        } else {
            None
        };
        wired.push(Wired {
            node: n,
            kind,
            ins,
            outs,
            staging,
            bytes_in,
            bytes_out,
            lines,
        });
    }
    // Drop unconsumed endpoints (edges touching dead nodes) so their
    // peers see EOF/broken-pipe instead of blocking forever.
    drop(readers);
    drop(writers);

    std::thread::scope(|scope| {
        // The watchdog lives in the outer scope; node threads run in an
        // inner scope so their collective completion is observable.
        let done = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        if let Some(timeout) = cfg.node_timeout {
            let done = Arc::clone(&done);
            let progress = Arc::clone(&progress);
            let cancel = cancel.clone();
            scope.spawn(move || watchdog(timeout, &done, &progress, &cancel));
        }

        std::thread::scope(|inner| {
            for w in wired.drain(..) {
                let fs = Arc::clone(&cfg.fs);
                let cwd = cfg.cwd.clone();
                let stderr = Arc::clone(&stderr);
                let metrics = Arc::clone(&metrics);
                let split_plan = cfg.split_targets.get(&w.node).cloned();
                let block_lines = cfg.block_lines;
                let buffer_dir = cfg.buffer_splits_in.clone();
                let cpu = cfg.cpu.clone();
                let kernel_fault = cfg.kernel_fault.clone();
                let terminal_capture = terminal == Some(w.node);

                inner.spawn(move || {
                    let start = Instant::now();
                    let label = w.kind.label();
                    let mut local_err: Vec<u8> = Vec::new();
                    let Wired {
                        node,
                        kind,
                        ins,
                        outs,
                        staging,
                        bytes_in,
                        bytes_out,
                        lines,
                    } = w;
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        run_node(
                            &kind,
                            node,
                            ins,
                            outs,
                            fs,
                            &cwd,
                            &mut local_err,
                            split_plan,
                            block_lines,
                            buffer_dir,
                            cpu,
                            staging,
                            kernel_fault,
                            terminal_capture,
                            &lines,
                        )
                    }));
                    let (status, failure, class) = match result {
                        Ok(Ok(s)) => (s, None, None),
                        // Benign: downstream stopped reading (`head`
                        // semantics) — the Unix equivalent of SIGPIPE.
                        Ok(Err(e)) if e.kind() == io::ErrorKind::BrokenPipe => (Some(0), None, None),
                        Ok(Err(e)) => {
                            local_err.extend_from_slice(format!("jash-exec: {e}\n").as_bytes());
                            let class = classify(e.kind(), &e.to_string());
                            (Some(125), Some(e.to_string()), Some(class))
                        }
                        Err(payload) => {
                            let msg = panic_message(payload);
                            local_err.extend_from_slice(
                                format!("jash-exec: node panicked: {msg}\n").as_bytes(),
                            );
                            (
                                Some(125),
                                Some(format!("panic: {msg}")),
                                Some(ErrorClass::Permanent),
                            )
                        }
                    };
                    flush_node_stderr(&stderr, &label, &local_err);
                    metrics.lock().push(NodeMetric {
                        node,
                        label,
                        start_offset: start.duration_since(t0),
                        wall: start.elapsed(),
                        bytes_in: bytes_in.load(Ordering::Relaxed),
                        bytes_out: bytes_out.load(Ordering::Relaxed),
                        status,
                        lines: lines.load(Ordering::Relaxed),
                        failure,
                        class,
                    });
                });
            }
        });

        let (lock, cvar) = &*done;
        if let Ok(mut d) = lock.lock() {
            *d = true;
            cvar.notify_all();
        };
    });

    let mut metrics = Arc::try_unwrap(metrics)
        .map(|m| m.into_inner())
        .unwrap_or_default();
    metrics.sort_by_key(|m| m.node.0);
    let mut failures: Vec<String> = metrics
        .iter()
        .filter_map(|m| {
            m.failure
                .as_ref()
                .map(|f| format!("{}: {}", m.label, f))
        })
        .collect();
    let mut fault_class: Option<ErrorClass> = metrics.iter().filter_map(|m| m.class).max();

    // Transactional commit: rename staging files into place only when
    // every node finished cleanly; otherwise discard staged output.
    // Durable commits bracket the rename with fsyncs — staged file
    // before (so the renamed-in contents are on stable storage), parent
    // directory after (so the rename itself is). A failed barrier is a
    // commit failure: an output that merely *looks* committed is exactly
    // the lie crash recovery exists to rule out.
    let clean = failures.is_empty();
    for (final_path, stage) in &staged_files {
        if clean {
            if cfg.fs.exists(stage) {
                let committed = (|| -> io::Result<()> {
                    if cfg.durable {
                        cfg.fs.sync(stage)?;
                    }
                    cfg.fs.rename(stage, final_path)?;
                    if cfg.durable {
                        cfg.fs
                            .sync_dir(jash_io::journal::parent_dir(final_path))?;
                    }
                    Ok(())
                })();
                match committed {
                    Ok(()) => {
                        if let Some(journal) = &cfg.journal {
                            // Best-effort bookkeeping: a journal append
                            // failure costs resume precision, not
                            // correctness of the committed file.
                            let _ = journal.append(&jash_io::JournalRecord::StageCommitted {
                                path: final_path.clone(),
                            });
                        }
                    }
                    Err(e) => {
                        failures.push(format!("commit {final_path}: {e}"));
                        fault_class =
                            fault_class.max(Some(classify(e.kind(), &e.to_string())));
                        let _ = cfg.fs.remove(stage);
                    }
                }
            }
        } else {
            let _ = cfg.fs.remove(stage);
        }
    }
    // A failed region also sweeps any split buffer files its feeders did
    // not get to delete.
    if !failures.is_empty() {
        if let Some(dir) = &cfg.buffer_splits_in {
            for n in dfg.node_ids() {
                if let NodeKind::Split { width } = dfg.node(n).kind {
                    for b in 0..width {
                        let _ = cfg
                            .fs
                            .remove(&format!("{}/split-{}-{}", dir.trim_end_matches('/'), n.0, b));
                    }
                }
            }
        }
    }

    let status = if failures.iter().any(|f| f.starts_with("commit ")) {
        125
    } else {
        region_status(dfg, &metrics)
    };
    let mut stderr = Arc::try_unwrap(stderr)
        .map(|m| m.into_inner())
        .unwrap_or_default();
    // Node failures were already flushed with their label; commit
    // failures happen after the nodes are gone, so report them here.
    for f in failures.iter().filter(|f| f.starts_with("commit ")) {
        stderr.extend_from_slice(format!("jash-exec: {f}\n").as_bytes());
    }
    let stdout = Arc::try_unwrap(capture)
        .map(|m| m.into_inner())
        .unwrap_or_default();
    // Region-level byte accounting: what entered through file sources,
    // and what left through the capture buffer or file sinks.
    let mut bytes_in = 0u64;
    let mut bytes_out = stdout.len() as u64;
    for m in &metrics {
        match dfg.node(m.node).kind {
            NodeKind::ReadFile { .. } => bytes_in = bytes_in.saturating_add(m.bytes_out),
            NodeKind::WriteFile { .. } => bytes_out = bytes_out.saturating_add(m.bytes_in),
            _ => {}
        }
    }
    Ok(ExecOutcome {
        stdout,
        stderr,
        status,
        metrics,
        wall: t0.elapsed(),
        bytes_in,
        bytes_out,
        failures,
        fault_class,
    })
}

/// Cancels the region when the pipe-progress counter stops moving for
/// `timeout` while node threads are still running.
fn watchdog(
    timeout: Duration,
    done: &(std::sync::Mutex<bool>, std::sync::Condvar),
    progress: &AtomicU64,
    cancel: &CancelToken,
) {
    let poll = (timeout / 8).clamp(Duration::from_millis(5), Duration::from_millis(100));
    let (lock, cvar) = done;
    let mut last = progress.load(Ordering::Relaxed);
    let mut last_change = Instant::now();
    let Ok(mut guard) = lock.lock() else { return };
    loop {
        if *guard {
            return;
        }
        let (g, _) = match cvar.wait_timeout(guard, poll) {
            Ok(r) => r,
            Err(_) => return,
        };
        guard = g;
        if *guard {
            return;
        }
        let now = progress.load(Ordering::Relaxed);
        if now != last {
            last = now;
            last_change = Instant::now();
        } else if last_change.elapsed() >= timeout {
            cancel.cancel(format!(
                "watchdog: region stalled — no pipe progress for {:?} (node_timeout)",
                timeout
            ));
            return;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_node(
    kind: &NodeKind,
    node: NodeId,
    mut ins: Vec<Box<dyn ByteStream>>,
    mut outs: Vec<Box<dyn Sink>>,
    fs: FsHandle,
    cwd: &str,
    stderr: &mut Vec<u8>,
    split_plan: Option<Vec<u64>>,
    block_lines: usize,
    buffer_dir: Option<String>,
    cpu: Option<Arc<jash_io::CpuModel>>,
    staging: Option<String>,
    kernel_fault: Option<String>,
    terminal_capture: bool,
    lines: &AtomicU64,
) -> io::Result<Option<i32>> {
    let one_output = |outs: &mut Vec<Box<dyn Sink>>| -> io::Result<Box<dyn Sink>> {
        outs.pop()
            .ok_or_else(|| io::Error::other(format!("{}: missing output edge", kind.label())))
    };
    let one_input = |ins: &mut Vec<Box<dyn ByteStream>>| -> io::Result<Box<dyn ByteStream>> {
        ins.pop()
            .ok_or_else(|| io::Error::other(format!("{}: missing input edge", kind.label())))
    };
    match kind {
        NodeKind::ReadFile { path } => {
            let path = jash_io::fs::normalize(cwd, path);
            let mut stream = FileStream::open(fs.as_ref(), &path)?;
            let mut out = one_output(&mut outs)?;
            while let Some(chunk) = stream.next_chunk()? {
                out.write_chunk(chunk)?;
            }
            out.finish()?;
            Ok(None)
        }
        NodeKind::WriteFile { path, append } => {
            let final_path = jash_io::fs::normalize(cwd, path);
            let target = staging.unwrap_or_else(|| final_path.clone());
            // Transactional append: seed the staging file with the
            // current contents, append there, commit by rename.
            let append_mode = if target == final_path {
                *append
            } else if *append && fs.exists(&final_path) {
                let existing = jash_io::fs::read_to_vec(fs.as_ref(), &final_path)?;
                jash_io::fs::write_file(fs.as_ref(), &target, &existing)?;
                true
            } else {
                false
            };
            let mut sink = FileSink::create(fs.as_ref(), &target, append_mode)?;
            let mut input = one_input(&mut ins)?;
            while let Some(chunk) = input.next_chunk()? {
                sink.write_chunk(chunk)?;
            }
            sink.finish()?;
            Ok(None)
        }
        NodeKind::Discard => {
            if let Some(input) = ins.first_mut() {
                while input.next_chunk()?.is_some() {}
            }
            Ok(None)
        }
        NodeKind::Split { width } => {
            let mut input = one_input(&mut ins)?;
            let block = if block_lines == 0 {
                DEFAULT_BLOCK_LINES
            } else {
                block_lines
            };
            if let Some(dir) = buffer_dir {
                // PaSh-style disk buffering: materialize every chunk to a
                // temp file, then stream the files into the branches. All
                // bytes hit the (modeled) disk twice.
                let paths: Vec<String> = (0..*width)
                    .map(|b| format!("{}/split-{}-{}", dir.trim_end_matches('/'), node.0, b))
                    .collect();
                {
                    let mut file_sinks: Vec<Box<dyn Sink>> = paths
                        .iter()
                        .map(|p| {
                            FileSink::create(fs.as_ref(), p, false)
                                .map(|s| Box::new(s) as Box<dyn Sink>)
                        })
                        .collect::<io::Result<_>>()?;
                    match split_plan {
                        Some(targets) => {
                            split_contiguous(input.as_mut(), &mut file_sinks, &targets)?
                        }
                        None => split_round_robin(input.as_mut(), &mut file_sinks, block)?,
                    }
                }
                // Each branch reads its chunk file on its own feeder
                // thread — as in PaSh, where every worker opens its chunk
                // independently. (A single interleaved feeder would
                // deadlock against order-sequential merges downstream.)
                std::thread::scope(|scope| -> io::Result<()> {
                    let mut handles = Vec::new();
                    for (path, mut out) in paths.iter().zip(outs.drain(..)) {
                        let fs = Arc::clone(&fs);
                        handles.push(scope.spawn(move || -> io::Result<()> {
                            let mut stream = FileStream::open(fs.as_ref(), path)?;
                            loop {
                                match stream.next_chunk() {
                                    Ok(Some(chunk)) => {
                                        if out.write_chunk(chunk).is_err() {
                                            break; // Downstream closed early.
                                        }
                                    }
                                    Ok(None) => break,
                                    Err(e) => return Err(e),
                                }
                            }
                            out.finish()?;
                            let _ = fs.remove(path);
                            Ok(())
                        }));
                    }
                    for h in handles {
                        h.join()
                            .map_err(|_| io::Error::other("split feeder thread panicked"))??;
                    }
                    Ok(())
                })?;
            } else {
                match split_plan {
                    Some(targets) => split_contiguous(input.as_mut(), &mut outs, &targets)?,
                    None => split_round_robin(input.as_mut(), &mut outs, block)?,
                }
            }
            Ok(None)
        }
        NodeKind::Merge { agg } => {
            let mut out = one_output(&mut outs)?;
            run_merge(agg, ins, out.as_mut())?;
            Ok(None)
        }
        NodeKind::Command { name, args, .. } => {
            let mut stdin: Box<dyn ByteStream> = match ins.pop() {
                Some(s) => s,
                None => Box::new(MemStream::empty()),
            };
            if let Some(model) = &cpu {
                stdin = Box::new(jash_io::CpuMeteredStream::new(
                    stdin,
                    Arc::clone(model),
                    jash_io::cpu_rate(name),
                ));
            }
            let stdout_inner: Box<dyn Sink> = match outs.pop() {
                Some(s) => s,
                None => Box::new(NullSink),
            };
            // Batch line-grained command output into chunk-sized writes —
            // except into the terminal capture buffer, which is already
            // in memory: coalescing there would stage every byte through
            // a dead intermediate copy before the final append.
            let mut stdout: Box<dyn Sink> = if terminal_capture {
                stdout_inner
            } else {
                Box::new(jash_io::CoalescingSink::new(stdout_inner))
            };
            let mut err_sink = BufSink(stderr);
            let ctx = UtilCtx {
                fs,
                cwd: cwd.to_string(),
            };
            let status = {
                let mut io = UtilIo {
                    stdin: stdin.as_mut(),
                    stdout: stdout.as_mut(),
                    stderr: &mut err_sink,
                };
                jash_coreutils::run_utility(name, args, &mut io, &ctx)
            };
            // Close stdout so downstream sees EOF, and drain leftover
            // stdin so upstream can finish.
            stdout.finish()?;
            drop(stdout);
            drop(stdin);
            Ok(Some(status?))
        }
        NodeKind::Fused { stages } => {
            if let Some(msg) = kernel_fault {
                return Err(io::Error::other(format!("injected kernel fault: {msg}")));
            }
            let spec: Vec<(&str, Vec<String>)> = stages
                .iter()
                .map(|s| (s.name.as_str(), s.args.clone()))
                .collect();
            // A build failure (a stage outside the kernel subset slipped
            // past planning) is an execution failure: the supervision
            // layer degrades to the unfused pipeline.
            let mut kernel = jash_coreutils::kernel::Kernel::build(&spec).map_err(io::Error::other)?;
            let mut input = one_input(&mut ins)?;
            if let Some(model) = &cpu {
                let names: Vec<&str> = stages.iter().map(|s| s.name.as_str()).collect();
                input = Box::new(jash_io::CpuMeteredStream::new(
                    input,
                    Arc::clone(model),
                    jash_io::fused_cpu_rate(&names),
                ));
            }
            let mut out: Box<dyn Sink> = match outs.pop() {
                Some(s) => s,
                None => Box::new(NullSink),
            };
            // One pass per chunk: every stage runs inside `feed`, with no
            // intermediate channels; `scratch` is the single reused
            // output buffer.
            let mut scratch: Vec<u8> = Vec::new();
            while let Some(chunk) = input.next_chunk()? {
                scratch.clear();
                let more = kernel.feed(&chunk, &mut scratch);
                if !scratch.is_empty() {
                    out.write_chunk(Bytes::copy_from_slice(&scratch))?;
                }
                if !more {
                    // Early stop (`head`, `sed q`): stop consuming input;
                    // dropping the stream is the SIGPIPE analogue for the
                    // upstream producer.
                    break;
                }
            }
            scratch.clear();
            kernel.finish(&mut scratch);
            if !scratch.is_empty() {
                out.write_chunk(Bytes::copy_from_slice(&scratch))?;
            }
            out.finish()?;
            drop(out);
            drop(input);
            lines.store(kernel.lines(), Ordering::Relaxed);
            Ok(Some(kernel.status()))
        }
    }
}

/// Pipeline-style region status: a real error (≥2) anywhere wins;
/// otherwise the final stage decides, where a parallelized final stage
/// succeeds if any clone succeeded (matching `grep`-style predicates).
fn region_status(dfg: &Dfg, metrics: &[NodeMetric]) -> i32 {
    let by_node: HashMap<NodeId, i32> = metrics
        .iter()
        .filter_map(|m| m.status.map(|s| (m.node, s)))
        .collect();
    if let Some(err) = by_node.values().copied().filter(|s| *s >= 2).max() {
        return err;
    }
    // Final stage: command nodes with no downstream command nodes.
    let mut last_stage: Vec<i32> = Vec::new();
    for (&n, &s) in &by_node {
        let mut downstream_cmd = false;
        let mut stack: Vec<NodeId> = dfg
            .node(n)
            .outputs
            .iter()
            .map(|&e| dfg.edge(e).to)
            .collect();
        while let Some(m) = stack.pop() {
            if matches!(
                dfg.node(m).kind,
                NodeKind::Command { .. } | NodeKind::Fused { .. }
            ) {
                downstream_cmd = true;
                break;
            }
            stack.extend(dfg.node(m).outputs.iter().map(|&e| dfg.edge(e).to));
        }
        if !downstream_cmd {
            last_stage.push(s);
        }
    }
    if last_stage.is_empty() || last_stage.contains(&0) {
        0
    } else {
        last_stage.iter().copied().max().unwrap_or(0)
    }
}
