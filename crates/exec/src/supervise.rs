//! Execution supervision: fault taxonomy, retry policy, and the
//! structured event log.
//!
//! PR 1 gave optimized execution a binary safety valve — any fault
//! discards the region and re-runs it under the interpreter. This module
//! provides the machinery for something a production runtime actually
//! does: *classify* the fault ([`ErrorClass`]), *retry* the ones that are
//! transient ([`RetryPolicy`], [`execute_with_retry`]) — which is safe
//! because PR 1's transactional staging means a failed attempt has no
//! observable side effects — and *record* every decision in a
//! [`SupervisionLog`] so tests and the bench harness can audit recovery
//! behavior, not just final status.
//!
//! Everything here is deterministic: backoff jitter comes from a seeded
//! splitmix64 stream keyed by `(seed, region, attempt)`, and no event
//! carries wall-clock data — the same fault schedule plus the same retry
//! seed produces the identical event sequence on every run (the
//! determinism contract `tests/supervision.rs` pins).

use crate::executor::{execute, ExecConfig, ExecOutcome};
use jash_dataflow::Dfg;
use std::fmt;
use std::io;
use std::time::Duration;

/// The transient-vs-permanent fault taxonomy, ordered by severity.
///
/// Classification refines the executor's existing benign/real split: a
/// *real* fault (anything that lands in [`ExecOutcome::failures`]) is
/// further sorted into one of three buckets that determine the
/// supervisor's response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorClass {
    /// Likely to succeed on a plain re-run: interrupted/timed-out
    /// operations, controller resets, watchdog cancellations. The
    /// supervisor retries these at the same width, with backoff.
    Transient,
    /// Resource starvation: allocation pressure, descriptor or space
    /// exhaustion, "resource temporarily unavailable". Retrying at the
    /// same width would burn the retry budget against the same wall, so
    /// the supervisor shrinks parallelism width instead.
    Resource,
    /// Everything else — bad input, permission problems, media errors.
    /// Retrying cannot help; the supervisor fails over immediately.
    Permanent,
}

impl fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorClass::Transient => write!(f, "transient"),
            ErrorClass::Resource => write!(f, "resource"),
            ErrorClass::Permanent => write!(f, "permanent"),
        }
    }
}

/// Classifies one IO failure by kind and message.
///
/// The message heuristics matter because the virtual filesystem (and the
/// fault injector) surface most errors as [`io::ErrorKind::Other`] with a
/// descriptive message — mirroring how real errno strings are what
/// operators actually grep for.
pub fn classify(kind: io::ErrorKind, msg: &str) -> ErrorClass {
    let m = msg.to_ascii_lowercase();
    if matches!(kind, io::ErrorKind::OutOfMemory | io::ErrorKind::WouldBlock)
        || m.contains("resource temporarily unavailable")
        || m.contains("too many open")
        || m.contains("no space")
        || m.contains("disk full")
        || m.contains("device full")
        || m.contains("cannot allocate")
    {
        return ErrorClass::Resource;
    }
    if matches!(kind, io::ErrorKind::Interrupted | io::ErrorKind::TimedOut)
        || m.contains("transient")
        || m.contains("reset")
        || m.contains("timeout")
        || m.contains("timed out")
        || m.contains("try again")
    {
        return ErrorClass::Transient;
    }
    ErrorClass::Permanent
}

/// Classifies a recorded failure string (label-prefixed, as stored in
/// [`ExecOutcome::failures`]) — the kind is gone by then, so this is the
/// message-only half of [`classify`]. Panics are always permanent.
pub fn classify_failure(failure: &str) -> ErrorClass {
    if failure.contains("panic") {
        return ErrorClass::Permanent;
    }
    classify(io::ErrorKind::Other, failure)
}

/// Retry knobs: attempts, exponential backoff, deterministic jitter.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per width rung, including the first (so `3` means
    /// one initial try plus up to two retries). `1` disables retry.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Multiplier applied per further retry.
    pub multiplier: f64,
    /// Cap on any single backoff.
    pub max_backoff: Duration,
    /// Jitter width as a fraction of the computed backoff (`0.5` means
    /// the delay is scaled by a factor drawn from `[0.75, 1.25)`).
    pub jitter: f64,
    /// Seed for the jitter stream. Same seed ⇒ same delays, always.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(500),
            jitter: 0.5,
            seed: 0x6a61_7368, // "jash"
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (1-based: the delay
    /// between the first failure and the second attempt is
    /// `backoff(region, 1)`). Deterministic in `(seed, region, attempt)`.
    pub fn backoff(&self, region: u64, attempt: u32) -> Duration {
        let exp = self.base_backoff.as_secs_f64() * self.multiplier.powi(attempt.max(1) as i32 - 1);
        let capped = exp.min(self.max_backoff.as_secs_f64());
        let unit = splitmix64(
            self.seed
                .wrapping_mul(0x0100_0000_01b3)
                .wrapping_add(region.wrapping_mul(7919))
                .wrapping_add(attempt as u64),
        ) as f64
            / u64::MAX as f64;
        // Scale factor in [1 - jitter/2, 1 + jitter/2).
        let factor = 1.0 - self.jitter / 2.0 + self.jitter * unit;
        Duration::from_secs_f64((capped * factor).max(0.0))
    }
}

/// One supervision decision. Events are wall-clock-free by construction:
/// attempt numbers, widths, classes, fingerprints, and *modeled* backoff
/// delays only — so logs compare with `==` across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisionEvent {
    /// An optimized execution attempt started.
    Attempt {
        /// Logical region number (session-wide tick).
        region: u64,
        /// 1-based attempt number within the current width rung.
        attempt: u32,
        /// Parallelism width of this attempt (1 = sequential dataflow).
        width: usize,
    },
    /// A transient fault was absorbed; the supervisor backed off before
    /// re-attempting.
    Backoff {
        /// Logical region number.
        region: u64,
        /// The attempt that failed.
        attempt: u32,
        /// The deterministic, jittered delay slept (via the cancellable
        /// token) before the next attempt.
        delay: Duration,
        /// Classification of the absorbed fault.
        class: ErrorClass,
    },
    /// The region recovered inside the supervisor — by retry, by width
    /// degradation, or both — and delivered optimized output.
    Recovered {
        /// Logical region number.
        region: u64,
        /// Total attempts across all width rungs.
        attempts: u32,
        /// The width that finally succeeded.
        width: usize,
    },
    /// A resource-class fault (or retry exhaustion under pressure) shrank
    /// the parallelism width instead of burning retry budget.
    WidthDegraded {
        /// Logical region number.
        region: u64,
        /// Width of the failed rung.
        from: usize,
        /// Width the next rung will run at.
        to: usize,
        /// Classification of the fault that forced the step down.
        class: ErrorClass,
    },
    /// A fused kernel failed; the region stepped down to the unfused
    /// channel-per-stage pipeline (the rung below on the degradation
    /// ladder). Tracked separately from [`SupervisionEvent::WidthDegraded`]
    /// because no parallelism width changed — only the execution strategy.
    KernelDegraded {
        /// Logical region number.
        region: u64,
        /// Stages that were fused in the failed kernel.
        nodes: usize,
        /// Classification of the fault that evicted the kernel.
        class: ErrorClass,
    },
    /// The supervisor gave up on optimization; the region re-ran under
    /// the interpreter (PR 1's original safety valve).
    FailedOver {
        /// Logical region number.
        region: u64,
        /// Worst fault class observed on the final attempt.
        class: ErrorClass,
    },
    /// A region shape crossed the failure threshold; matching regions now
    /// route straight to the interpreter.
    BreakerOpened {
        /// Normalized DFG fingerprint of the shape.
        fingerprint: u64,
        /// Consecutive fail-overs that tripped the breaker.
        failures: u32,
    },
    /// A region was routed to the interpreter without an optimization
    /// attempt because its shape's breaker is open.
    BreakerRouted {
        /// Logical region number.
        region: u64,
        /// The open shape.
        fingerprint: u64,
    },
    /// The cool-down elapsed; one trial execution is allowed through.
    BreakerHalfOpen {
        /// The probing shape.
        fingerprint: u64,
    },
    /// The half-open trial succeeded; the shape optimizes normally again.
    BreakerClosed {
        /// The recovered shape.
        fingerprint: u64,
    },
}

impl fmt::Display for SupervisionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisionEvent::Attempt {
                region,
                attempt,
                width,
            } => write!(f, "r{region} attempt#{attempt} w{width}"),
            SupervisionEvent::Backoff {
                region,
                attempt,
                delay,
                class,
            } => write!(
                f,
                "r{region} backoff {}ms after #{attempt} ({class})",
                delay.as_millis()
            ),
            SupervisionEvent::Recovered {
                region,
                attempts,
                width,
            } => write!(f, "r{region} recovered after {attempts} attempts at w{width}"),
            SupervisionEvent::WidthDegraded {
                region,
                from,
                to,
                class,
            } => write!(f, "r{region} degrade w{from}->w{to} ({class})"),
            SupervisionEvent::KernelDegraded {
                region,
                nodes,
                class,
            } => write!(f, "r{region} kernel-degrade {nodes} stages -> unfused ({class})"),
            SupervisionEvent::FailedOver { region, class } => {
                write!(f, "r{region} failover ({class})")
            }
            SupervisionEvent::BreakerOpened {
                fingerprint,
                failures,
            } => write!(f, "breaker-open fp={fingerprint:08x} after {failures} failures"),
            SupervisionEvent::BreakerRouted {
                region,
                fingerprint,
            } => write!(f, "r{region} breaker-routed fp={fingerprint:08x}"),
            SupervisionEvent::BreakerHalfOpen { fingerprint } => {
                write!(f, "breaker-half-open fp={fingerprint:08x}")
            }
            SupervisionEvent::BreakerClosed { fingerprint } => {
                write!(f, "breaker-closed fp={fingerprint:08x}")
            }
        }
    }
}

/// The ordered record of every supervision decision in a session.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SupervisionLog {
    /// Events, in decision order.
    pub events: Vec<SupervisionEvent>,
}

impl SupervisionLog {
    /// Appends one event.
    pub fn push(&mut self, event: SupervisionEvent) {
        self.events.push(event);
    }

    /// Regions that recovered inside the supervisor (no failover).
    pub fn recoveries(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SupervisionEvent::Recovered { .. }))
            .count()
    }

    /// Width-degradation steps taken.
    pub fn degradations(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SupervisionEvent::WidthDegraded { .. }))
            .count()
    }

    /// Fused-kernel eviction steps (kernel → unfused pipeline). Not
    /// counted by [`SupervisionLog::degradations`], which tracks width
    /// steps only.
    pub fn kernel_degradations(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SupervisionEvent::KernelDegraded { .. }))
            .count()
    }

    /// Breaker-open transitions.
    pub fn breaker_opens(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SupervisionEvent::BreakerOpened { .. }))
            .count()
    }

    /// Regions routed to the interpreter by an open breaker.
    pub fn breaker_routed(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SupervisionEvent::BreakerRouted { .. }))
            .count()
    }

    /// One event per line, for reports and debugging.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

/// What one supervised rung produced.
pub struct RetryResult {
    /// The final outcome (clean, or the last failed attempt's outcome).
    pub outcome: ExecOutcome,
    /// Attempts consumed at this rung.
    pub attempts: u32,
    /// Whether retrying stopped because the region's cancel token fired
    /// (e.g. the stall watchdog) — further attempts would fail instantly,
    /// so the caller should fail over rather than degrade.
    pub cancelled: bool,
}

/// Executes `dfg` under `cfg` up to `policy.max_attempts` times at one
/// width, retrying only transient-class faults with deterministic
/// backoff.
///
/// Retry is safe because every attempt is transactional (staged sinks of
/// a failed attempt are discarded by the executor before this function
/// sees the outcome) and capture buffers are per-attempt. Backoff sleeps
/// run through the region's [`jash_io::CancelToken`] when one is
/// configured, so a cancelled region stops retrying immediately instead
/// of sleeping out its budget.
///
/// `region` is the caller's logical region number, used only to key the
/// jitter stream and label events. Resource- and permanent-class faults
/// return after the first failure — degradation and failover are the
/// caller's decisions, not this function's.
pub fn execute_with_retry(
    dfg: &Dfg,
    cfg: &ExecConfig,
    policy: &RetryPolicy,
    region: u64,
    width: usize,
    log: &mut SupervisionLog,
) -> io::Result<RetryResult> {
    let max = policy.max_attempts.max(1);
    let mut attempt = 1u32;
    loop {
        log.push(SupervisionEvent::Attempt {
            region,
            attempt,
            width,
        });
        let outcome = execute(dfg, cfg)?;
        if outcome.is_clean() {
            return Ok(RetryResult {
                outcome,
                attempts: attempt,
                cancelled: false,
            });
        }
        let class = outcome.fault_class.unwrap_or(ErrorClass::Permanent);
        let cancelled = cfg
            .cancel
            .as_ref()
            .is_some_and(jash_io::CancelToken::is_cancelled);
        if class != ErrorClass::Transient || attempt >= max || cancelled {
            return Ok(RetryResult {
                outcome,
                attempts: attempt,
                cancelled,
            });
        }
        let delay = policy.backoff(region, attempt);
        log.push(SupervisionEvent::Backoff {
            region,
            attempt,
            delay,
            class,
        });
        let token = cfg.cancel.clone().unwrap_or_default();
        if token.sleep(delay).is_err() {
            // Cancelled mid-backoff: report the failed outcome as-is.
            return Ok(RetryResult {
                outcome,
                attempts: attempt,
                cancelled: true,
            });
        }
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_taxonomy() {
        assert_eq!(
            classify(io::ErrorKind::Interrupted, "watchdog: region stalled"),
            ErrorClass::Transient
        );
        assert_eq!(
            classify(io::ErrorKind::Other, "injected: transient controller reset"),
            ErrorClass::Transient
        );
        assert_eq!(
            classify(io::ErrorKind::Other, "injected: resource temporarily unavailable"),
            ErrorClass::Resource
        );
        assert_eq!(
            classify(io::ErrorKind::Other, "no space left on device"),
            ErrorClass::Resource
        );
        assert_eq!(
            classify(io::ErrorKind::Other, "injected: disk surface error"),
            ErrorClass::Permanent
        );
        assert_eq!(classify_failure("node: panic: index out of range"), ErrorClass::Permanent);
        // Severity order backs `max()` aggregation.
        assert!(ErrorClass::Permanent > ErrorClass::Resource);
        assert!(ErrorClass::Resource > ErrorClass::Transient);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(3, 1), p.backoff(3, 1));
        assert_ne!(p.backoff(3, 1), p.backoff(4, 1), "region keys the jitter");
        let mut prev = Duration::ZERO;
        for attempt in 1..=8 {
            let d = p.backoff(0, attempt);
            assert!(d <= p.max_backoff.mul_f64(1.0 + p.jitter));
            if attempt <= 3 {
                assert!(d > prev / 3, "backoff should grow roughly exponentially");
            }
            prev = d;
        }
        let seeded = RetryPolicy {
            seed: 99,
            ..RetryPolicy::default()
        };
        assert_ne!(seeded.backoff(3, 1), p.backoff(3, 1));
    }

    #[test]
    fn log_counts_and_rendering() {
        let mut log = SupervisionLog::default();
        log.push(SupervisionEvent::Attempt {
            region: 1,
            attempt: 1,
            width: 4,
        });
        log.push(SupervisionEvent::WidthDegraded {
            region: 1,
            from: 4,
            to: 2,
            class: ErrorClass::Resource,
        });
        log.push(SupervisionEvent::Recovered {
            region: 1,
            attempts: 2,
            width: 2,
        });
        assert_eq!(log.recoveries(), 1);
        assert_eq!(log.degradations(), 1);
        assert_eq!(log.breaker_opens(), 0);
        let text = log.render();
        assert!(text.contains("degrade w4->w2 (resource)"));
        assert!(text.contains("recovered after 2 attempts"));
        // Logs are comparable across runs.
        assert_eq!(log.clone(), log);
    }
}
