//! Parallel dataflow-graph executor.
//!
//! Runs the graphs produced by `jash-dataflow` on threads connected by
//! bounded in-process pipes — the runtime half of the PaSh-style
//! transformation story (paper E2), and the machinery behind every
//! speedup the benchmark suite reports.
//!
//! Semantics contract (exercised heavily by the integration tests): for
//! any graph produced by `compile` + rewrites, the captured stdout equals
//! byte-for-byte the output of the original sequential pipeline.
//!
//! # Examples
//!
//! ```
//! use jash_dataflow::{compile, ExpandedCommand, Region, parallelize_all};
//! use jash_exec::{execute, ExecConfig};
//! use jash_spec::Registry;
//!
//! let fs = jash_io::mem_fs();
//! jash_io::fs::write_file(fs.as_ref(), "/in", b"b\na\nb\n").unwrap();
//!
//! let region = Region {
//!     commands: vec![
//!         ExpandedCommand::new("cat", &["/in"]),
//!         ExpandedCommand::new("sort", &["-u"]),
//!     ],
//! };
//! let mut compiled = compile(&region, &Registry::builtin()).unwrap();
//! parallelize_all(&mut compiled.dfg, 2);
//! let out = jash_exec::execute(&compiled.dfg, &ExecConfig::new(fs)).unwrap();
//! assert_eq!(out.stdout, b"a\nb\n");
//! ```

pub mod executor;
pub mod merge;
pub mod split;
pub mod supervise;

pub use executor::{check_split_safety, execute, ExecConfig, ExecOutcome, NodeMetric};
pub use merge::run_merge;
pub use split::{balanced_targets, split_contiguous, split_round_robin, DEFAULT_BLOCK_LINES};
pub use supervise::{
    classify, execute_with_retry, ErrorClass, RetryPolicy, RetryResult, SupervisionEvent,
    SupervisionLog,
};

#[cfg(test)]
mod tests {
    use super::*;
    use jash_dataflow::{compile, parallelize_all, ExpandedCommand, NodeKind, Region};
    use jash_io::FsHandle;
    use jash_spec::Registry;
    use std::collections::HashMap;
    use std::sync::Arc;

    fn fs_with(files: &[(&str, &str)]) -> FsHandle {
        let fs = jash_io::mem_fs();
        for (p, c) in files {
            jash_io::fs::write_file(fs.as_ref(), p, c.as_bytes()).unwrap();
        }
        fs
    }

    fn run_region(
        fs: FsHandle,
        cmds: Vec<ExpandedCommand>,
        width: usize,
    ) -> (ExecOutcome, jash_dataflow::Compiled) {
        let mut compiled = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        let mut cfg = ExecConfig::new(fs);
        if width > 1 {
            parallelize_all(&mut compiled.dfg, width);
            // Give every split a contiguous plan sized generously, as the
            // JIT would from file metadata.
            let mut plans = HashMap::new();
            for n in compiled.dfg.node_ids() {
                if let NodeKind::Split { width } = compiled.dfg.node(n).kind {
                    plans.insert(n, balanced_targets(1 << 16, width));
                }
            }
            cfg.split_targets = plans;
        }
        compiled.dfg.validate().unwrap();
        let out = execute(&compiled.dfg, &cfg).unwrap();
        (out, compiled)
    }

    #[test]
    fn sequential_pipeline_runs() {
        let fs = fs_with(&[("/in", "banana\napple\ncherry\napple\n")]);
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("sort", &["-u"]),
        ];
        let (out, _) = run_region(fs, cmds, 1);
        assert_eq!(out.status, 0);
        assert_eq!(out.stdout, b"apple\nbanana\ncherry\n");
    }

    #[test]
    fn parallel_matches_sequential_for_stateless_chain() {
        let content: String = (0..5000)
            .map(|i| format!("Line NUMBER {i} Mixed CASE\n"))
            .collect();
        let cmds = || {
            vec![
                ExpandedCommand::new("cat", &["/in"]),
                ExpandedCommand::new("tr", &["A-Z", "a-z"]),
                ExpandedCommand::new("grep", &["number"]),
            ]
        };
        let (seq, _) = run_region(fs_with(&[("/in", &content)]), cmds(), 1);
        let (par, compiled) = run_region(fs_with(&[("/in", &content)]), cmds(), 4);
        assert_eq!(seq.stdout, par.stdout);
        // The parallel graph really did replicate.
        let clones = compiled
            .dfg
            .node_ids()
            .filter(|n| {
                matches!(&compiled.dfg.node(*n).kind, NodeKind::Command { name, .. } if name == "tr")
            })
            .count();
        assert_eq!(clones, 4);
    }

    #[test]
    fn parallel_sort_matches_sequential() {
        let content: String = (0..5000).map(|i| format!("{}\n", (i * 7919) % 1000)).collect();
        let cmds = || {
            vec![
                ExpandedCommand::new("cat", &["/in"]),
                ExpandedCommand::new("sort", &["-n"]),
            ]
        };
        let (seq, _) = run_region(fs_with(&[("/in", &content)]), cmds(), 1);
        let (par, _) = run_region(fs_with(&[("/in", &content)]), cmds(), 8);
        assert_eq!(seq.stdout, par.stdout);
    }

    #[test]
    fn the_spell_pipeline_parallel_equivalence() {
        let doc = "The Quick BROWN fox! jumps; over the lazy dog 42 times\n".repeat(400);
        let dict = "brown\ndog\nfox\njumps\nlazy\nover\nquick\nthe\n";
        let cmds = || {
            vec![
                ExpandedCommand::new("cat", &["/doc"]),
                ExpandedCommand::new("tr", &["A-Z", "a-z"]),
                ExpandedCommand::new("tr", &["-cs", "A-Za-z", "\\n"]),
                ExpandedCommand::new("sort", &["-u"]),
                ExpandedCommand::new("comm", &["-13", "/dict", "-"]),
            ]
        };
        let (seq, _) = run_region(fs_with(&[("/doc", &doc), ("/dict", dict)]), cmds(), 1);
        let (par, _) = run_region(fs_with(&[("/doc", &doc), ("/dict", dict)]), cmds(), 4);
        assert_eq!(seq.status, 0);
        assert_eq!(
            String::from_utf8_lossy(&seq.stdout),
            String::from_utf8_lossy(&par.stdout)
        );
        // "times" is not in the dictionary.
        assert!(seq.stdout.starts_with(b"times\n"));
    }

    #[test]
    fn temperature_pipeline_with_head() {
        let mut content = String::new();
        for i in 0..500 {
            let temp = (i * 37) % 600;
            content.push_str(&format!("{:088}{temp:04}rest\n", 0));
        }
        let fs = fs_with(&[("/noaa", &content)]);
        let mut cut = ExpandedCommand::new("cut", &["-c", "89-92"]);
        cut.stdin_redirect = Some("/noaa".into());
        let cmds = vec![
            cut,
            ExpandedCommand::new("grep", &["-v", "999"]),
            ExpandedCommand::new("sort", &["-rn"]),
            ExpandedCommand::new("head", &["-n1"]),
        ];
        let (out, _) = run_region(fs, cmds, 1);
        assert_eq!(out.stdout, b"0599\n");
    }

    #[test]
    fn write_file_sink() {
        let fs = fs_with(&[("/in", "c\nb\na\n")]);
        let mut sort = ExpandedCommand::new("sort", &["/in"]);
        sort.stdout_redirect = Some(("/out".into(), false));
        let (out, _) = run_region(Arc::clone(&fs), vec![sort], 1);
        assert!(out.stdout.is_empty());
        assert_eq!(
            jash_io::fs::read_to_vec(fs.as_ref(), "/out").unwrap(),
            b"a\nb\nc\n"
        );
    }

    #[test]
    fn grep_status_propagates() {
        let fs = fs_with(&[("/in", "nothing here\n")]);
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("grep", &["absent-pattern"]),
        ];
        let (out, _) = run_region(fs, cmds, 1);
        assert_eq!(out.status, 1);
        let fs = fs_with(&[("/in", "absent-pattern present\n")]);
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("grep", &["absent-pattern"]),
        ];
        let (out, _) = run_region(fs, cmds, 1);
        assert_eq!(out.status, 0);
    }

    #[test]
    fn parallel_grep_succeeds_if_any_clone_matches() {
        // The needle lives in one chunk only.
        let mut content = "hay\n".repeat(2000);
        content.push_str("needle\n");
        content.push_str(&"hay\n".repeat(2000));
        let fs = fs_with(&[("/in", &content)]);
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("grep", &["needle"]),
        ];
        let (out, _) = run_region(fs, cmds, 4);
        assert_eq!(out.status, 0);
        assert_eq!(out.stdout, b"needle\n");
    }

    #[test]
    fn round_robin_rejected_for_concat_merge() {
        let fs = fs_with(&[("/in", "x\n")]);
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("tr", &["a", "b"]),
        ];
        let mut compiled = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        parallelize_all(&mut compiled.dfg, 2);
        // No split plan: tr merges with Concat → must be refused.
        let cfg = ExecConfig::new(fs);
        let err = execute(&compiled.dfg, &cfg).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn round_robin_allowed_for_merge_sort() {
        let content: String = (0..2000).map(|i| format!("{}\n", 2000 - i)).collect();
        let fs = fs_with(&[("/in", &content)]);
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("sort", &["-n"]),
        ];
        let mut compiled = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        parallelize_all(&mut compiled.dfg, 4);
        let mut cfg = ExecConfig::new(fs);
        cfg.block_lines = 100;
        let out = execute(&compiled.dfg, &cfg).unwrap();
        let lines: Vec<i64> = String::from_utf8_lossy(&out.stdout)
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        assert_eq!(lines.len(), 2000);
        assert!(lines.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn wc_parallel_sums() {
        let content = "one two\n".repeat(999);
        let cmds = || {
            vec![
                ExpandedCommand::new("cat", &["/in"]),
                ExpandedCommand::new("wc", &["-l"]),
            ]
        };
        let (seq, _) = run_region(fs_with(&[("/in", &content)]), cmds(), 1);
        let (par, _) = run_region(fs_with(&[("/in", &content)]), cmds(), 3);
        assert_eq!(seq.stdout, b"999\n");
        assert_eq!(par.stdout, b"999\n");
    }

    #[test]
    fn missing_input_file_reports_error() {
        let fs = jash_io::mem_fs();
        let cmds = vec![
            ExpandedCommand::new("cat", &["/does-not-exist"]),
            ExpandedCommand::new("wc", &["-l"]),
        ];
        let compiled = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        let out = execute(&compiled.dfg, &ExecConfig::new(fs)).unwrap();
        assert!(out.status >= 1);
        assert!(!out.stderr.is_empty());
    }

    #[test]
    fn clean_region_commits_staging_atomically() {
        let fs = fs_with(&[("/in", "c\nb\na\n"), ("/out", "old contents\n")]);
        let mut sort = ExpandedCommand::new("sort", &["/in"]);
        sort.stdout_redirect = Some(("/out".into(), false));
        let (out, compiled) = run_region(Arc::clone(&fs), vec![sort], 1);
        assert!(out.is_clean(), "failures: {:?}", out.failures);
        assert_eq!(
            jash_io::fs::read_to_vec(fs.as_ref(), "/out").unwrap(),
            b"a\nb\nc\n"
        );
        // The staging file was renamed away, not left behind.
        for n in compiled.dfg.node_ids() {
            assert!(!fs.exists(&executor::staging_path("/out", n)));
        }
    }

    #[test]
    fn failed_region_discards_staged_output() {
        let fs = fs_with(&[("/in", "c\nb\na\n"), ("/out", "old contents\n")]);
        let plan = jash_io::FaultPlan::new().read_error_at("/in", 2, "disk gone");
        let faulty: FsHandle = jash_io::FaultFs::wrap(Arc::clone(&fs), plan);
        let mut sort = ExpandedCommand::new("sort", &["/in"]);
        sort.stdout_redirect = Some(("/out".into(), false));
        let compiled = compile(&Region { commands: vec![sort] }, &Registry::builtin()).unwrap();
        let out = execute(&compiled.dfg, &ExecConfig::new(faulty)).unwrap();
        assert!(!out.is_clean());
        assert_eq!(out.status, 125);
        assert!(out.failures.iter().any(|f| f.contains("injected")));
        // Prior contents survive and no staging debris remains.
        assert_eq!(
            jash_io::fs::read_to_vec(fs.as_ref(), "/out").unwrap(),
            b"old contents\n"
        );
        for n in compiled.dfg.node_ids() {
            assert!(!fs.exists(&executor::staging_path("/out", n)));
        }
    }

    #[test]
    fn append_sink_is_transactional_too() {
        // Clean append: staged copy of the old contents, new data after.
        let fs = fs_with(&[("/in", "b\na\n"), ("/log", "keep\n")]);
        let mut sort = ExpandedCommand::new("sort", &["/in"]);
        sort.stdout_redirect = Some(("/log".into(), true));
        let (out, _) = run_region(Arc::clone(&fs), vec![sort], 1);
        assert!(out.is_clean());
        assert_eq!(
            jash_io::fs::read_to_vec(fs.as_ref(), "/log").unwrap(),
            b"keep\na\nb\n"
        );

        // Faulted append: the target keeps exactly its old contents.
        let fs = fs_with(&[("/in", "b\na\n"), ("/log", "keep\n")]);
        let plan = jash_io::FaultPlan::new().read_error_at("/in", 1, "disk gone");
        let faulty: FsHandle = jash_io::FaultFs::wrap(Arc::clone(&fs), plan);
        let mut sort = ExpandedCommand::new("sort", &["/in"]);
        sort.stdout_redirect = Some(("/log".into(), true));
        let compiled = compile(&Region { commands: vec![sort] }, &Registry::builtin()).unwrap();
        let out = execute(&compiled.dfg, &ExecConfig::new(faulty)).unwrap();
        assert!(!out.is_clean());
        assert_eq!(
            jash_io::fs::read_to_vec(fs.as_ref(), "/log").unwrap(),
            b"keep\n"
        );
    }

    #[test]
    fn durable_commit_syncs_stage_then_directory() {
        let mem = Arc::new(jash_io::MemFs::new());
        mem.install("/in", b"c\nb\na\n".to_vec());
        let fs: FsHandle = Arc::clone(&mem) as FsHandle;
        let mut sort = ExpandedCommand::new("sort", &["/in"]);
        sort.stdout_redirect = Some(("/out".into(), false));
        let compiled = compile(&Region { commands: vec![sort] }, &Registry::builtin()).unwrap();

        let out = execute(&compiled.dfg, &ExecConfig::new(Arc::clone(&fs))).unwrap();
        assert!(out.is_clean());
        assert!(
            mem.sync_count() >= 2,
            "durable default: staged file + parent dir fsync"
        );

        let before = mem.sync_count();
        let mut cfg = ExecConfig::new(fs);
        cfg.durable = false;
        let out = execute(&compiled.dfg, &cfg).unwrap();
        assert!(out.is_clean());
        assert_eq!(mem.sync_count(), before, "--no-durable commits never sync");
    }

    #[test]
    fn sync_failure_is_a_commit_failure() {
        let fs = fs_with(&[("/in", "b\na\n"), ("/out", "old contents\n")]);
        // The staging suffix is stripped by the fault harness, so a sync
        // rule on the final path fires on the staged file's pre-rename
        // fsync.
        let plan = jash_io::FaultPlan::new().sync_error("/out", "flush failed");
        let faulty: FsHandle = jash_io::FaultFs::wrap(Arc::clone(&fs), plan);
        let mut sort = ExpandedCommand::new("sort", &["/in"]);
        sort.stdout_redirect = Some(("/out".into(), false));
        let compiled = compile(&Region { commands: vec![sort] }, &Registry::builtin()).unwrap();
        let out = execute(&compiled.dfg, &ExecConfig::new(faulty)).unwrap();
        assert_eq!(out.status, 125);
        assert!(out.failures.iter().any(|f| f.starts_with("commit /out")));
        // Old contents survive; staging was cleaned up.
        assert_eq!(
            jash_io::fs::read_to_vec(fs.as_ref(), "/out").unwrap(),
            b"old contents\n"
        );
        for n in compiled.dfg.node_ids() {
            assert!(!fs.exists(&executor::staging_path("/out", n)));
        }
    }

    #[test]
    fn clean_commit_journals_stage_committed() {
        let fs = fs_with(&[("/in", "b\na\n")]);
        let journal = Arc::new(jash_io::Journal::open(
            Arc::clone(&fs),
            "/.jash/journal",
            true,
        ));
        let mut sort = ExpandedCommand::new("sort", &["/in"]);
        sort.stdout_redirect = Some(("/out".into(), false));
        let compiled = compile(&Region { commands: vec![sort] }, &Registry::builtin()).unwrap();
        let mut cfg = ExecConfig::new(Arc::clone(&fs));
        cfg.journal = Some(journal);
        let out = execute(&compiled.dfg, &cfg).unwrap();
        assert!(out.is_clean());
        let replay = jash_io::Journal::replay(fs.as_ref(), "/.jash/journal").unwrap();
        assert_eq!(
            replay.records,
            vec![jash_io::JournalRecord::StageCommitted {
                path: "/out".into()
            }]
        );
    }

    #[test]
    fn commit_failure_surfaces_as_region_failure() {
        let fs = fs_with(&[("/in", "b\na\n")]);
        let plan = jash_io::FaultPlan::new().rename_error("/out", "cross-device link");
        let faulty: FsHandle = jash_io::FaultFs::wrap(Arc::clone(&fs), plan);
        let mut sort = ExpandedCommand::new("sort", &["/in"]);
        sort.stdout_redirect = Some(("/out".into(), false));
        let compiled = compile(&Region { commands: vec![sort] }, &Registry::builtin()).unwrap();
        let out = execute(&compiled.dfg, &ExecConfig::new(faulty)).unwrap();
        assert_eq!(out.status, 125);
        assert!(out.failures.iter().any(|f| f.starts_with("commit /out")));
        // The staged file was cleaned up and the target never appeared.
        assert!(!fs.exists("/out"));
        for n in compiled.dfg.node_ids() {
            assert!(!fs.exists(&executor::staging_path("/out", n)));
        }
    }

    #[test]
    fn watchdog_aborts_stalled_region() {
        let content = "a\n".repeat(64);
        let fs = fs_with(&[("/in", &content)]);
        let token = jash_io::CancelToken::new();
        let plan =
            jash_io::FaultPlan::new().stall_reads("/in", std::time::Duration::from_secs(300));
        let faulty: FsHandle = jash_io::FaultFs::wrap_with_cancel(fs, plan, token.clone());
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("wc", &["-l"]),
        ];
        let compiled = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        let mut cfg = ExecConfig::new(faulty);
        cfg.node_timeout = Some(std::time::Duration::from_millis(150));
        cfg.cancel = Some(token);
        let t = std::time::Instant::now();
        let out = execute(&compiled.dfg, &cfg).unwrap();
        // The 300-second stall was interrupted by the watchdog, quickly.
        assert!(t.elapsed() < std::time::Duration::from_secs(30));
        assert!(!out.is_clean());
        assert!(
            out.failures.iter().any(|f| f.contains("watchdog")),
            "failures: {:?}",
            out.failures
        );
        assert_eq!(out.status, 125);
    }

    #[test]
    fn stderr_lines_are_label_prefixed() {
        let fs = jash_io::mem_fs();
        let cmds = vec![
            ExpandedCommand::new("cat", &["/missing"]),
            ExpandedCommand::new("wc", &["-l"]),
        ];
        let compiled = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        let out = execute(&compiled.dfg, &ExecConfig::new(fs)).unwrap();
        let text = String::from_utf8_lossy(&out.stderr);
        assert!(!text.is_empty());
        // `cat file` compiles to a ReadFile node, whose label is the
        // prefix on every diagnostic line.
        assert!(
            text.lines().all(|l| l.starts_with("read /missing: ")),
            "stderr was: {text}"
        );
    }

    #[test]
    fn malformed_wiring_is_an_error_not_a_panic() {
        let mut g = jash_dataflow::Dfg::new();
        let r = g.add_node(NodeKind::ReadFile { path: "/in".into() });
        let d1 = g.add_node(NodeKind::Discard);
        let d2 = g.add_node(NodeKind::Discard);
        let e = g.connect(r, d1);
        // Corrupt the graph: both discards claim the same input edge.
        g.node_mut(d2).inputs.push(e);
        let fs = fs_with(&[("/in", "x\n")]);
        let err = execute(&g, &ExecConfig::new(fs)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("requested twice"));
    }

    #[test]
    fn node_panic_is_captured_as_failure() {
        // A split whose plan disagrees with its port count panics inside
        // the node thread; the executor must record it, not unwind.
        let mut g = jash_dataflow::Dfg::new();
        let r = g.add_node(NodeKind::ReadFile { path: "/in".into() });
        let s = g.add_node(NodeKind::Split { width: 2 });
        let d = g.add_node(NodeKind::Discard);
        g.connect(r, s);
        g.connect(s, d);
        let fs = fs_with(&[("/in", &"line\n".repeat(64))]);
        let mut cfg = ExecConfig::new(fs);
        cfg.split_targets.insert(s, vec![1, 1 << 20]);
        let out = execute(&g, &cfg).unwrap();
        assert!(!out.is_clean());
        assert!(
            out.failures.iter().any(|f| f.contains("panic")),
            "failures: {:?}",
            out.failures
        );
        assert_eq!(out.status, 125);
    }

    #[test]
    fn metrics_cover_live_nodes() {
        let fs = fs_with(&[("/in", "a\n")]);
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("wc", &["-l"]),
        ];
        let (out, compiled) = run_region(fs, cmds, 1);
        let live = compiled
            .dfg
            .node_ids()
            .filter(|n| jash_dataflow::is_live(&compiled.dfg, *n))
            .count();
        assert_eq!(out.metrics.len(), live);
        assert!(out.wall.as_nanos() > 0);
    }

    #[test]
    fn byte_accounting_covers_sources_and_sinks() {
        let input = "delta\nalpha\nbravo\n";
        let fs = fs_with(&[("/in", input)]);
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("sort", &[]),
        ];
        let (out, compiled) = run_region(Arc::clone(&fs), cmds, 1);
        assert_eq!(out.bytes_in, input.len() as u64, "read every input byte");
        assert_eq!(
            out.bytes_out,
            out.stdout.len() as u64,
            "stdout-terminated region's output is the capture"
        );
        // Every live node that touched data reports nonzero flow.
        for m in &out.metrics {
            match compiled.dfg.node(m.node).kind {
                NodeKind::ReadFile { .. } => assert_eq!(m.bytes_out, input.len() as u64),
                NodeKind::Command { .. } => {
                    assert_eq!(m.bytes_in, input.len() as u64, "{}", m.label);
                    assert_eq!(m.bytes_out, input.len() as u64, "{}", m.label);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn fused_kernel_matches_unfused_pipeline() {
        let content: String = (0..3000)
            .map(|i| format!("Line NUMBER {i} Mixed CASE\n"))
            .collect();
        let cmds = || {
            vec![
                ExpandedCommand::new("cat", &["/in"]),
                ExpandedCommand::new("tr", &["A-Z", "a-z"]),
                ExpandedCommand::new("grep", &["number"]),
                ExpandedCommand::new("cut", &["-c", "1-20"]),
            ]
        };
        let (unfused, _) = run_region(fs_with(&[("/in", &content)]), cmds(), 1);
        let mut compiled =
            compile(&Region { commands: cmds() }, &Registry::builtin()).unwrap();
        assert_eq!(jash_dataflow::fuse_kernels(&mut compiled.dfg), 1);
        compiled.dfg.validate().unwrap();
        let fs = fs_with(&[("/in", &content)]);
        let out = execute(&compiled.dfg, &ExecConfig::new(fs)).unwrap();
        assert!(out.is_clean(), "failures: {:?}", out.failures);
        assert_eq!(out.stdout, unfused.stdout);
        // The kernel reports input lines consumed for tracing.
        let fused_metric = out
            .metrics
            .iter()
            .find(|m| {
                matches!(compiled.dfg.node(m.node).kind, NodeKind::Fused { .. })
            })
            .expect("fused node metric");
        assert_eq!(fused_metric.lines, 3000);
        assert_eq!(fused_metric.status, Some(0));
    }

    #[test]
    fn fused_kernel_early_stop_is_benign() {
        // head -n1 inside the kernel stops the pass; upstream sees a
        // benign BrokenPipe, exactly like the unfused pipeline.
        let content = "match me\n".repeat(5000);
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("grep", &["match"]),
            ExpandedCommand::new("head", &["-n1"]),
        ];
        let mut compiled = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        assert_eq!(jash_dataflow::fuse_kernels(&mut compiled.dfg), 1);
        let fs = fs_with(&[("/in", &content)]);
        let out = execute(&compiled.dfg, &ExecConfig::new(fs)).unwrap();
        assert!(out.is_clean(), "failures: {:?}", out.failures);
        assert_eq!(out.stdout, b"match me\n");
    }

    #[test]
    fn fused_kernel_propagates_grep_status() {
        let fs = fs_with(&[("/in", "nothing here\n")]);
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("tr", &["a-z", "A-Z"]),
            ExpandedCommand::new("grep", &["absent-pattern"]),
        ];
        let mut compiled = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        assert_eq!(jash_dataflow::fuse_kernels(&mut compiled.dfg), 1);
        let out = execute(&compiled.dfg, &ExecConfig::new(fs)).unwrap();
        assert_eq!(out.status, 1, "grep found nothing; kernel exits 1");
    }

    #[test]
    fn fused_kernel_writes_through_staged_sink() {
        let fs = fs_with(&[("/in", "b\nB\na\nA\n"), ("/out", "old\n")]);
        let mut grep = ExpandedCommand::new("grep", &["-i", "a"]);
        grep.stdout_redirect = Some(("/out".into(), false));
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("tr", &["a-z", "A-Z"]),
            grep,
        ];
        let mut compiled = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        assert_eq!(jash_dataflow::fuse_kernels(&mut compiled.dfg), 1);
        let out = execute(&compiled.dfg, &ExecConfig::new(Arc::clone(&fs))).unwrap();
        assert!(out.is_clean(), "failures: {:?}", out.failures);
        assert_eq!(
            jash_io::fs::read_to_vec(fs.as_ref(), "/out").unwrap(),
            b"A\nA\n"
        );
    }

    #[test]
    fn kernel_fault_injection_fails_the_fused_region() {
        let fs = fs_with(&[("/in", "x\n")]);
        let cmds = vec![
            ExpandedCommand::new("cat", &["/in"]),
            ExpandedCommand::new("tr", &["a-z", "A-Z"]),
            ExpandedCommand::new("grep", &["X"]),
        ];
        let mut compiled = compile(&Region { commands: cmds }, &Registry::builtin()).unwrap();
        assert_eq!(jash_dataflow::fuse_kernels(&mut compiled.dfg), 1);
        let mut cfg = ExecConfig::new(Arc::clone(&fs));
        cfg.kernel_fault = Some("simulated kernel defect".into());
        let out = execute(&compiled.dfg, &cfg).unwrap();
        assert!(!out.is_clean());
        assert_eq!(out.status, 125);
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("injected kernel fault")),
            "failures: {:?}",
            out.failures
        );
        // The same graph unfused ignores the kernel fault entirely.
        let compiled = compile(
            &Region {
                commands: vec![
                    ExpandedCommand::new("cat", &["/in"]),
                    ExpandedCommand::new("tr", &["a-z", "A-Z"]),
                    ExpandedCommand::new("grep", &["X"]),
                ],
            },
            &Registry::builtin(),
        )
        .unwrap();
        let out = execute(&compiled.dfg, &cfg).unwrap();
        assert!(out.is_clean(), "failures: {:?}", out.failures);
        assert_eq!(out.stdout, b"X\n");
    }

    #[test]
    fn byte_accounting_through_file_sink_and_split() {
        let content: String = (0..2000).map(|i| format!("row {i}\n")).collect();
        let fs = fs_with(&[("/in", &content)]);
        let region = Region {
            commands: vec![
                ExpandedCommand::new("cat", &["/in"]),
                ExpandedCommand::new("tr", &["a-z", "A-Z"]),
            ],
        };
        let mut compiled = compile(&region, &Registry::builtin()).unwrap();
        // Redirect to a file sink.
        let tail = compiled
            .dfg
            .node_ids()
            .find(|n| {
                compiled.dfg.node(*n).outputs.is_empty()
                    && matches!(compiled.dfg.node(*n).kind, NodeKind::Command { .. })
            })
            .unwrap();
        let w = compiled.dfg.add_node(NodeKind::WriteFile {
            path: "/out".into(),
            append: false,
        });
        compiled.dfg.connect(tail, w);
        parallelize_all(&mut compiled.dfg, 2);
        let mut cfg = ExecConfig::new(Arc::clone(&fs));
        let mut plans = HashMap::new();
        for n in compiled.dfg.node_ids() {
            if let NodeKind::Split { width } = compiled.dfg.node(n).kind {
                plans.insert(n, balanced_targets(content.len() as u64, width));
            }
        }
        cfg.split_targets = plans;
        let out = execute(&compiled.dfg, &cfg).unwrap();
        assert!(out.is_clean(), "failures: {:?}", out.failures);
        let written = jash_io::fs::read_to_vec(fs.as_ref(), "/out").unwrap();
        assert_eq!(out.bytes_in, content.len() as u64);
        assert_eq!(out.bytes_out, written.len() as u64, "file sink accounted");
        // The split distributed all bytes across its branches.
        let split_out: u64 = out
            .metrics
            .iter()
            .filter(|m| matches!(compiled.dfg.node(m.node).kind, NodeKind::Split { .. }))
            .map(|m| m.bytes_out)
            .sum();
        assert_eq!(split_out, content.len() as u64);
    }
}
