//! Input splitters.
//!
//! Two strategies, chosen by the optimizer:
//!
//! * **contiguous** — branch *i* receives the *i*-th contiguous byte range
//!   of the input (cut at line boundaries). Order-preserving: required
//!   whenever the downstream aggregator is order-sensitive (concat,
//!   uniq/squeeze boundaries). Needs a size estimate, which the Jash JIT
//!   has by construction (it stats the input files at optimization time —
//!   the paper's core argument for running the compiler late).
//! * **round-robin** — blocks of lines dealt to branches cyclically.
//!   Streams without any size knowledge, but is only sound for
//!   order-insensitive aggregators (merge-sort with a total order, sums).

use bytes::Bytes;
use jash_io::{ByteStream, LineBuffer, Sink};
use std::io;

/// Lines per round-robin block.
pub const DEFAULT_BLOCK_LINES: usize = 4096;

/// Distributes contiguous ranges: branch `i` gets roughly `targets[i]`
/// bytes, extended to the next line boundary. Each branch's writer is
/// finished (closed) before the next branch starts, so downstream stages
/// see EOF as early as possible.
/// Pending bytes are coalesced into chunks of this size before they hit a
/// sink, so downstream writers (pipes, and especially disk-charged files
/// in buffered mode) see file-sized requests rather than one per line.
const COALESCE_BYTES: usize = 128 * 1024;

pub fn split_contiguous(
    input: &mut dyn ByteStream,
    outputs: &mut [Box<dyn Sink>],
    targets: &[u64],
) -> io::Result<()> {
    debug_assert_eq!(outputs.len(), targets.len());
    let mut branch = 0usize;
    let mut sent: u64 = 0;
    let mut lb = LineBuffer::new();
    let mut pending: Vec<u8> = Vec::with_capacity(COALESCE_BYTES);

    fn flush(
        outputs: &mut [Box<dyn Sink>],
        branch: usize,
        pending: &mut Vec<u8>,
    ) -> io::Result<()> {
        if !pending.is_empty() {
            outputs[branch].write_chunk(Bytes::from(std::mem::take(pending)))?;
        }
        Ok(())
    }

    let emit = |outputs: &mut [Box<dyn Sink>],
                    branch: &mut usize,
                    sent: &mut u64,
                    pending: &mut Vec<u8>,
                    line: Bytes|
     -> io::Result<()> {
        // Advance to the next branch once the current one met its target
        // (never beyond the last branch: it takes the remainder).
        while *branch + 1 < outputs.len() && *sent >= targets[*branch] {
            flush(outputs, *branch, pending)?;
            outputs[*branch].finish()?;
            *branch += 1;
            *sent = 0;
        }
        *sent += line.len() as u64;
        pending.extend_from_slice(&line);
        if pending.len() >= COALESCE_BYTES {
            flush(outputs, *branch, pending)?;
        }
        Ok(())
    };

    while let Some(chunk) = input.next_chunk()? {
        lb.push(&chunk);
        while let Some(line) = lb.next_line() {
            emit(outputs, &mut branch, &mut sent, &mut pending, line)?;
        }
        lb.mark_scanned();
    }
    if let Some(rest) = lb.take_rest() {
        emit(outputs, &mut branch, &mut sent, &mut pending, rest)?;
    }
    flush(outputs, branch, &mut pending)?;
    for out in outputs[branch..].iter_mut() {
        out.finish()?;
    }
    Ok(())
}

/// Deals blocks of `block_lines` lines to branches cyclically.
pub fn split_round_robin(
    input: &mut dyn ByteStream,
    outputs: &mut [Box<dyn Sink>],
    block_lines: usize,
) -> io::Result<()> {
    let width = outputs.len();
    let mut lb = LineBuffer::new();
    let mut branch = 0usize;
    let mut in_block = 0usize;
    let mut pending: Vec<u8> = Vec::new();

    let flush = |outputs: &mut [Box<dyn Sink>],
                     branch: &mut usize,
                     pending: &mut Vec<u8>|
     -> io::Result<()> {
        if !pending.is_empty() {
            outputs[*branch].write_chunk(Bytes::from(std::mem::take(pending)))?;
        }
        *branch = (*branch + 1) % width;
        Ok(())
    };

    while let Some(chunk) = input.next_chunk()? {
        lb.push(&chunk);
        while let Some(line) = lb.next_line() {
            pending.extend_from_slice(&line);
            in_block += 1;
            if in_block >= block_lines {
                flush(outputs, &mut branch, &mut pending)?;
                in_block = 0;
            }
        }
        lb.mark_scanned();
    }
    if let Some(rest) = lb.take_rest() {
        pending.extend_from_slice(&rest);
    }
    if !pending.is_empty() {
        flush(outputs, &mut branch, &mut pending)?;
    }
    for out in outputs.iter_mut() {
        out.finish()?;
    }
    Ok(())
}

/// Balanced byte targets for `total` bytes over `width` branches.
pub fn balanced_targets(total: u64, width: usize) -> Vec<u64> {
    let base = total / width as u64;
    let mut v = vec![base; width];
    // Distribute the remainder over the leading branches.
    let rem = (total % width as u64) as usize;
    for t in v.iter_mut().take(rem) {
        *t += 1;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use jash_io::MemStream;

    fn contig(input: &str, targets: &[u64]) -> Vec<String> {
        let shared: Vec<std::sync::Arc<parking_lot::Mutex<Vec<u8>>>> =
            targets.iter().map(|_| Default::default()).collect();
        struct S(std::sync::Arc<parking_lot::Mutex<Vec<u8>>>);
        impl Sink for S {
            fn write_chunk(&mut self, c: Bytes) -> io::Result<()> {
                self.0.lock().extend_from_slice(&c);
                Ok(())
            }
            fn finish(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sinks: Vec<Box<dyn Sink>> = shared
            .iter()
            .map(|c| Box::new(S(c.clone())) as Box<dyn Sink>)
            .collect();
        let mut src = MemStream::from_bytes(input.to_string());
        split_contiguous(&mut src, &mut sinks, targets).unwrap();
        shared
            .iter()
            .map(|c| String::from_utf8(c.lock().clone()).unwrap())
            .collect()
    }

    fn rr(input: &str, width: usize, block: usize) -> Vec<String> {
        let shared: Vec<std::sync::Arc<parking_lot::Mutex<Vec<u8>>>> =
            (0..width).map(|_| Default::default()).collect();
        struct S(std::sync::Arc<parking_lot::Mutex<Vec<u8>>>);
        impl Sink for S {
            fn write_chunk(&mut self, c: Bytes) -> io::Result<()> {
                self.0.lock().extend_from_slice(&c);
                Ok(())
            }
            fn finish(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sinks: Vec<Box<dyn Sink>> = shared
            .iter()
            .map(|c| Box::new(S(c.clone())) as Box<dyn Sink>)
            .collect();
        let mut src = MemStream::from_bytes(input.to_string());
        split_round_robin(&mut src, &mut sinks, block).unwrap();
        shared
            .iter()
            .map(|c| String::from_utf8(c.lock().clone()).unwrap())
            .collect()
    }

    #[test]
    fn contiguous_preserves_concat() {
        let input = "a\nbb\nccc\ndddd\neeeee\n";
        let parts = contig(input, &balanced_targets(input.len() as u64, 3));
        assert_eq!(parts.concat(), input);
        // Cuts are at line boundaries.
        for p in &parts {
            assert!(p.is_empty() || p.ends_with('\n'), "{p:?}");
        }
        assert!(parts.iter().filter(|p| !p.is_empty()).count() >= 2);
    }

    #[test]
    fn contiguous_handles_no_trailing_newline() {
        let input = "a\nb\nc";
        let parts = contig(input, &balanced_targets(input.len() as u64, 2));
        assert_eq!(parts.concat(), input);
    }

    #[test]
    fn contiguous_tiny_input_goes_to_first_branches() {
        let parts = contig("x\n", &balanced_targets(2, 4));
        assert_eq!(parts.concat(), "x\n");
    }

    #[test]
    fn round_robin_covers_everything() {
        let input: String = (0..100).map(|i| format!("{i}\n")).collect();
        let parts = rr(&input, 3, 10);
        let mut all: Vec<&str> = parts.iter().flat_map(|p| p.lines()).collect();
        all.sort_by_key(|s| s.parse::<u64>().unwrap());
        assert_eq!(all.len(), 100);
        // Blocks of 10 dealt cyclically: branch 0 gets lines 0-9, 30-39...
        assert!(parts[0].starts_with("0\n1\n"));
        assert!(parts[1].starts_with("10\n"));
    }

    #[test]
    fn balanced_targets_sum_to_total() {
        let t = balanced_targets(10, 3);
        assert_eq!(t.iter().sum::<u64>(), 10);
        assert_eq!(t, vec![4, 3, 3]);
    }
}
