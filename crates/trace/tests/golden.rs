//! Golden-file test: serialization of every record type is byte-stable.
//!
//! If this test fails because the schema changed *intentionally*, bump
//! `SCHEMA_VERSION` and regenerate the golden file — never edit the
//! writer and the golden in the same commit without thinking about old
//! traces.

use jash_trace::{parse_jsonl, AttrValue, Record};

fn golden_records() -> Vec<Record> {
    vec![
        Record::Span {
            kind: "run".into(),
            id: 0,
            parent: None,
            name: "script.sh".into(),
            start_us: 0,
            wall_us: 123_456,
            attrs: vec![("status".into(), AttrValue::Int(0))],
        },
        Record::Span {
            kind: "region".into(),
            id: 1,
            parent: Some(0),
            name: "cat /in.txt | tr -cs A-Za-z '\\n' | sort > /out.txt".into(),
            start_us: 42,
            wall_us: 98_765,
            attrs: vec![
                ("action".into(), AttrValue::Str("optimized".into())),
                ("width".into(), AttrValue::UInt(4)),
                ("buffered".into(), AttrValue::Bool(false)),
                ("projected_speedup".into(), AttrValue::Float(2.5)),
                ("fingerprint".into(), AttrValue::Str("00c0ffee00c0ffee".into())),
                ("bytes_in".into(), AttrValue::UInt(3_145_728)),
                ("bytes_out".into(), AttrValue::UInt(3_145_728)),
                ("status".into(), AttrValue::Int(0)),
            ],
        },
        Record::Span {
            kind: "node".into(),
            id: 2,
            parent: Some(1),
            name: "sort".into(),
            start_us: 50,
            wall_us: 60_000,
            attrs: vec![
                ("cmd".into(), AttrValue::Str("sort".into())),
                ("bytes_in".into(), AttrValue::UInt(786_432)),
                ("bytes_out".into(), AttrValue::UInt(786_432)),
            ],
        },
        Record::Event {
            name: "supervision".into(),
            at_us: 77,
            attrs: vec![(
                "event".into(),
                AttrValue::Str("retry region=1 width=4 attempt=1".into()),
            )],
        },
        Record::Counter {
            name: "memo.hits".into(),
            value: 2,
        },
        Record::Gauge {
            name: "journal.fsyncs".into(),
            value: 11,
        },
        Record::Hist {
            name: "jit.plan_us".into(),
            bounds: vec![10, 100, 1_000],
            buckets: vec![0, 3, 1, 0],
            count: 4,
            sum: 612,
        },
    ]
}

fn render(records: &[Record]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json_line());
        out.push('\n');
    }
    out
}

#[test]
fn serialization_matches_golden_file() {
    let got = render(&golden_records());
    if std::env::var("JASH_REGEN_GOLDEN").as_deref() == Ok("1") {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden.jsonl");
        std::fs::write(path, &got).expect("regenerate golden file");
    }
    let want = include_str!("golden.jsonl");
    assert_eq!(got, want, "trace JSONL drifted from tests/golden.jsonl");
}

#[test]
fn golden_file_round_trips() {
    let parsed = parse_jsonl(include_str!("golden.jsonl")).expect("golden parses");
    assert_eq!(parsed, golden_records());
}
