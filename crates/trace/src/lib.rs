//! Structured runtime observability for Jash: spans, metrics, and a
//! versioned JSONL trace format — with **zero external dependencies**,
//! so every other crate in the workspace can depend on it without
//! widening the build.
//!
//! The paper's argument for a JIT shell (§3.2) is that the runtime can
//! *observe* what static tools cannot: live input sizes, actual region
//! timings, resource pressure. This crate is where those observations
//! become durable:
//!
//! * [`Tracer`] — structured spans in a `run → region → node` hierarchy,
//!   each carrying typed attributes (chosen width, bytes in/out, the
//!   action taken), plus point-in-time events for supervision decisions;
//! * [`MetricsRegistry`] — lock-cheap named counters, gauges, and
//!   fixed-boundary histograms shared across worker threads;
//! * [`Record`] — the schema-v1 trace record, serialized one JSON object
//!   per line ([`Record::to_json_line`]) and parsed back by a small
//!   serde-free parser ([`parse_line`] / [`parse_jsonl`]);
//! * [`summarize`] — the per-region table `jash trace summarize` renders.
//!
//! A recorded trace closes the loop: `jash-cost` can load per-command
//! throughput observed in a prior run and replace its static rate table,
//! making width choice measurement-driven.

pub mod json;
pub mod metrics;
pub mod parse;
pub mod span;
pub mod summary;

pub use json::AttrValue;
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, DEFAULT_TIME_BOUNDS_US};
pub use parse::{parse_jsonl, parse_line, ParseError};
pub use span::{Record, SpanId, Tracer, SCHEMA_VERSION};
pub use summary::summarize;
