//! A minimal JSON value model and writer.
//!
//! The workspace ships no serde; trace records need exactly five scalar
//! shapes plus objects/arrays, written deterministically (insertion
//! order, shortest-roundtrip floats) so golden-file tests are stable.

use std::fmt::Write as _;

/// A typed attribute value attached to spans and events.
///
/// Numeric equality coerces across `UInt`/`Int`/`Float` where the values
/// are exactly representable, because the parser maps any non-negative
/// integer literal to `UInt` regardless of how the writer produced it.
#[derive(Debug, Clone)]
pub enum AttrValue {
    /// A string.
    Str(String),
    /// An unsigned integer (byte counts, widths, ids).
    UInt(u64),
    /// A signed integer (statuses, gauge values).
    Int(i64),
    /// A float (speedups, rates).
    Float(f64),
    /// A boolean.
    Bool(bool),
}

impl PartialEq for AttrValue {
    fn eq(&self, other: &Self) -> bool {
        use AttrValue::*;
        match (self, other) {
            (Str(a), Str(b)) => a == b,
            (Bool(a), Bool(b)) => a == b,
            (UInt(a), UInt(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (UInt(a), Int(b)) | (Int(b), UInt(a)) => {
                i64::try_from(*a).map(|a| a == *b).unwrap_or(false)
            }
            (UInt(a), Float(b)) | (Float(b), UInt(a)) => *a as f64 == *b,
            (Int(a), Float(b)) | (Float(b), Int(a)) => *a as f64 == *b,
            _ => false,
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}

impl From<u64> for AttrValue {
    fn from(n: u64) -> Self {
        AttrValue::UInt(n)
    }
}

impl From<usize> for AttrValue {
    fn from(n: usize) -> Self {
        AttrValue::UInt(n as u64)
    }
}

impl From<i64> for AttrValue {
    fn from(n: i64) -> Self {
        AttrValue::Int(n)
    }
}

impl From<i32> for AttrValue {
    fn from(n: i32) -> Self {
        AttrValue::Int(n as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(n: f64) -> Self {
        AttrValue::Float(n)
    }
}

impl From<bool> for AttrValue {
    fn from(b: bool) -> Self {
        AttrValue::Bool(b)
    }
}

/// Writes `s` as a JSON string literal (with escaping) into `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a float the way the parser reads it back: finite values use
/// Rust's shortest-roundtrip formatting (always with a decimal point or
/// exponent so they re-parse as floats); non-finite values become null.
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// Writes one attribute value.
pub fn write_value(out: &mut String, v: &AttrValue) {
    match v {
        AttrValue::Str(s) => write_str(out, s),
        AttrValue::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        AttrValue::Int(n) => {
            let _ = write!(out, "{n}");
        }
        AttrValue::Float(f) => write_f64(out, *f),
        AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Writes an attribute map as a JSON object, in insertion order.
pub fn write_attrs(out: &mut String, attrs: &[(String, AttrValue)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(out, k);
        out.push(':');
        write_value(out, v);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_escaping() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn floats_always_reparse_as_floats() {
        let mut out = String::new();
        write_f64(&mut out, 2.0);
        assert_eq!(out, "2.0");
        out.clear();
        write_f64(&mut out, 1.5e300);
        assert!(out.contains('e') || out.contains('.'));
        out.clear();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn numeric_equality_coerces() {
        assert_eq!(AttrValue::UInt(3), AttrValue::Int(3));
        assert_eq!(AttrValue::UInt(3), AttrValue::Float(3.0));
        assert_ne!(AttrValue::UInt(u64::MAX), AttrValue::Int(-1));
    }
}
