//! The `jash trace summarize` renderer: a per-region table plus a
//! metrics digest, built from parsed schema-v1 records.

use crate::json::AttrValue;
use crate::span::Record;
use std::fmt::Write as _;

fn attr_display(v: &AttrValue) -> String {
    match v {
        AttrValue::Str(s) => s.clone(),
        AttrValue::UInt(n) => n.to_string(),
        AttrValue::Int(n) => n.to_string(),
        AttrValue::Float(f) => format!("{f:.2}"),
        AttrValue::Bool(b) => b.to_string(),
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        return s.to_string();
    }
    let head: String = s.chars().take(max.saturating_sub(1)).collect();
    format!("{head}…")
}

/// Renders a human-readable summary of a trace: one row per region span
/// (in start order) with action, width, wall time, and bytes moved,
/// followed by the run totals and every counter/gauge/histogram.
pub fn summarize(records: &[Record]) -> String {
    let mut out = String::new();

    let mut regions: Vec<&Record> = records
        .iter()
        .filter(|r| matches!(r, Record::Span { kind, .. } if kind == "region"))
        .collect();
    regions.sort_by_key(|r| match r {
        Record::Span { start_us, .. } => *start_us,
        _ => 0,
    });
    let nodes_of = |region_id: u64| {
        records
            .iter()
            .filter(move |r| {
                matches!(r, Record::Span { kind, parent, .. }
                    if kind == "node" && *parent == Some(region_id))
            })
            .count()
    };

    let _ = writeln!(
        out,
        "{:<44} {:>11} {:>5} {:>10} {:>12} {:>12} {:>6}",
        "region", "action", "width", "wall(ms)", "bytes_in", "bytes_out", "nodes"
    );
    for r in &regions {
        let Record::Span {
            id, name, wall_us, ..
        } = r
        else {
            continue;
        };
        let action = r
            .attr("action")
            .map(attr_display)
            .unwrap_or_else(|| "?".to_string());
        let width = r
            .attr("width")
            .map(attr_display)
            .unwrap_or_else(|| "-".to_string());
        let bytes_in = r
            .attr("bytes_in")
            .map(attr_display)
            .unwrap_or_else(|| "-".to_string());
        let bytes_out = r
            .attr("bytes_out")
            .map(attr_display)
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:<44} {:>11} {:>5} {:>10.3} {:>12} {:>12} {:>6}",
            truncate(name, 44),
            action,
            width,
            *wall_us as f64 / 1000.0,
            bytes_in,
            bytes_out,
            nodes_of(*id),
        );
    }
    if regions.is_empty() {
        out.push_str("(no region spans)\n");
    }

    for r in records {
        if let Record::Span {
            kind,
            name,
            wall_us,
            ..
        } = r
        {
            if kind == "run" {
                let _ = writeln!(
                    out,
                    "\nrun {:<40} {:>9.3} ms, {} region(s)",
                    truncate(name, 40),
                    *wall_us as f64 / 1000.0,
                    regions.len()
                );
            }
        }
    }

    // Fusion digest: how much of the run flowed through single-pass
    // fused kernels (regions with `fused: true`; node spans with
    // `cmd: fused` carry the per-kernel stage/byte/line counts).
    let fused_regions = regions
        .iter()
        .filter(|r| matches!(r.attr("fused"), Some(AttrValue::Bool(true))))
        .count();
    let mut fused_nodes = 0u64;
    let mut fused_bytes = 0u64;
    let mut fused_lines = 0u64;
    for r in records {
        if let Record::Span { kind, .. } = r {
            if kind == "node" && r.attr_str("cmd") == Some("fused") {
                fused_nodes += r.attr_u64("nodes_fused").unwrap_or(0);
                fused_bytes += r.attr_u64("bytes_in").unwrap_or(0);
                fused_lines += r.attr_u64("lines").unwrap_or(0);
            }
        }
    }
    if fused_regions > 0 || fused_nodes > 0 {
        let _ = writeln!(
            out,
            "fusion: {fused_regions} region(s) fused, {fused_nodes} stage(s) in kernels, \
             {fused_bytes} bytes / {fused_lines} lines through kernels"
        );
    }

    let mut wrote_header = false;
    for r in records {
        let line = match r {
            Record::Counter { name, value } => Some(format!("{name:<36} {value:>14}")),
            Record::Gauge { name, value } => Some(format!("{name:<36} {value:>14}")),
            Record::Hist {
                name, count, sum, ..
            } => {
                let mean = sum.checked_div(*count).unwrap_or(0);
                Some(format!(
                    "{name:<36} {count:>8} obs, mean {mean} µs"
                ))
            }
            _ => None,
        };
        if let Some(line) = line {
            if !wrote_header {
                out.push_str("\nmetrics\n");
                wrote_header = true;
            }
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_regions_and_metrics() {
        let records = vec![
            Record::Span {
                kind: "run".into(),
                id: 0,
                parent: None,
                name: "script".into(),
                start_us: 0,
                wall_us: 5_000,
                attrs: vec![],
            },
            Record::Span {
                kind: "region".into(),
                id: 1,
                parent: Some(0),
                name: "cat /in | sort > /out".into(),
                start_us: 10,
                wall_us: 4_000,
                attrs: vec![
                    ("action".into(), AttrValue::Str("optimized".into())),
                    ("width".into(), AttrValue::UInt(4)),
                    ("bytes_in".into(), AttrValue::UInt(1024)),
                    ("bytes_out".into(), AttrValue::UInt(1024)),
                ],
            },
            Record::Span {
                kind: "node".into(),
                id: 2,
                parent: Some(1),
                name: "sort".into(),
                start_us: 12,
                wall_us: 3_000,
                attrs: vec![],
            },
            Record::Counter {
                name: "memo.hits".into(),
                value: 3,
            },
        ];
        let s = summarize(&records);
        assert!(s.contains("cat /in | sort > /out"), "{s}");
        assert!(s.contains("optimized"), "{s}");
        assert!(s.contains("memo.hits"), "{s}");
        assert!(s.contains("1024"), "{s}");
    }

    #[test]
    fn empty_trace_is_graceful() {
        assert!(summarize(&[]).contains("no region spans"));
    }

    #[test]
    fn fusion_row_aggregates_kernel_spans() {
        let records = vec![
            Record::Span {
                kind: "region".into(),
                id: 1,
                parent: None,
                name: "cat /in | tr a b | grep x".into(),
                start_us: 0,
                wall_us: 1_000,
                attrs: vec![
                    ("action".into(), AttrValue::Str("optimized".into())),
                    ("fused".into(), AttrValue::Bool(true)),
                    ("nodes_fused".into(), AttrValue::UInt(2)),
                ],
            },
            Record::Span {
                kind: "node".into(),
                id: 2,
                parent: Some(1),
                name: "fused[tr|grep]".into(),
                start_us: 1,
                wall_us: 900,
                attrs: vec![
                    ("cmd".into(), AttrValue::Str("fused".into())),
                    ("nodes_fused".into(), AttrValue::UInt(2)),
                    ("bytes_in".into(), AttrValue::UInt(4096)),
                    ("lines".into(), AttrValue::UInt(128)),
                ],
            },
        ];
        let s = summarize(&records);
        assert!(
            s.contains("fusion: 1 region(s) fused, 2 stage(s) in kernels"),
            "{s}"
        );
        assert!(s.contains("4096 bytes / 128 lines"), "{s}");
    }

    #[test]
    fn unfused_trace_has_no_fusion_row() {
        let records = vec![Record::Span {
            kind: "region".into(),
            id: 1,
            parent: None,
            name: "cat /in | sort".into(),
            start_us: 0,
            wall_us: 1_000,
            attrs: vec![("action".into(), AttrValue::Str("optimized".into()))],
        }];
        assert!(!summarize(&records).contains("fusion:"));
    }
}
