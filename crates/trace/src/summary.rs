//! The `jash trace summarize` renderer: a per-region table plus a
//! metrics digest, built from parsed schema-v1 records.

use crate::json::AttrValue;
use crate::span::Record;
use std::fmt::Write as _;

fn attr_display(v: &AttrValue) -> String {
    match v {
        AttrValue::Str(s) => s.clone(),
        AttrValue::UInt(n) => n.to_string(),
        AttrValue::Int(n) => n.to_string(),
        AttrValue::Float(f) => format!("{f:.2}"),
        AttrValue::Bool(b) => b.to_string(),
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        return s.to_string();
    }
    let head: String = s.chars().take(max.saturating_sub(1)).collect();
    format!("{head}…")
}

/// Renders a human-readable summary of a trace: one row per region span
/// (in start order) with action, width, wall time, and bytes moved,
/// followed by the run totals and every counter/gauge/histogram.
pub fn summarize(records: &[Record]) -> String {
    let mut out = String::new();

    let mut regions: Vec<&Record> = records
        .iter()
        .filter(|r| matches!(r, Record::Span { kind, .. } if kind == "region"))
        .collect();
    regions.sort_by_key(|r| match r {
        Record::Span { start_us, .. } => *start_us,
        _ => 0,
    });
    let nodes_of = |region_id: u64| {
        records
            .iter()
            .filter(move |r| {
                matches!(r, Record::Span { kind, parent, .. }
                    if kind == "node" && *parent == Some(region_id))
            })
            .count()
    };

    let _ = writeln!(
        out,
        "{:<44} {:>11} {:>5} {:>10} {:>12} {:>12} {:>6}",
        "region", "action", "width", "wall(ms)", "bytes_in", "bytes_out", "nodes"
    );
    for r in &regions {
        let Record::Span {
            id, name, wall_us, ..
        } = r
        else {
            continue;
        };
        let action = r
            .attr("action")
            .map(attr_display)
            .unwrap_or_else(|| "?".to_string());
        let width = r
            .attr("width")
            .map(attr_display)
            .unwrap_or_else(|| "-".to_string());
        let bytes_in = r
            .attr("bytes_in")
            .map(attr_display)
            .unwrap_or_else(|| "-".to_string());
        let bytes_out = r
            .attr("bytes_out")
            .map(attr_display)
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:<44} {:>11} {:>5} {:>10.3} {:>12} {:>12} {:>6}",
            truncate(name, 44),
            action,
            width,
            *wall_us as f64 / 1000.0,
            bytes_in,
            bytes_out,
            nodes_of(*id),
        );
    }
    if regions.is_empty() {
        out.push_str("(no region spans)\n");
    }

    for r in records {
        if let Record::Span {
            kind,
            name,
            wall_us,
            ..
        } = r
        {
            if kind == "run" {
                let _ = writeln!(
                    out,
                    "\nrun {:<40} {:>9.3} ms, {} region(s)",
                    truncate(name, 40),
                    *wall_us as f64 / 1000.0,
                    regions.len()
                );
            }
        }
    }

    // Fusion digest: how much of the run flowed through single-pass
    // fused kernels (regions with `fused: true`; node spans with
    // `cmd: fused` carry the per-kernel stage/byte/line counts).
    let fused_regions = regions
        .iter()
        .filter(|r| matches!(r.attr("fused"), Some(AttrValue::Bool(true))))
        .count();
    let mut fused_nodes = 0u64;
    let mut fused_bytes = 0u64;
    let mut fused_lines = 0u64;
    for r in records {
        if let Record::Span { kind, .. } = r {
            if kind == "node" && r.attr_str("cmd") == Some("fused") {
                fused_nodes += r.attr_u64("nodes_fused").unwrap_or(0);
                fused_bytes += r.attr_u64("bytes_in").unwrap_or(0);
                fused_lines += r.attr_u64("lines").unwrap_or(0);
            }
        }
    }
    if fused_regions > 0 || fused_nodes > 0 {
        let _ = writeln!(
            out,
            "fusion: {fused_regions} region(s) fused, {fused_nodes} stage(s) in kernels, \
             {fused_bytes} bytes / {fused_lines} lines through kernels"
        );
    }

    // Plan-cache digest: regions planned through the per-fingerprint
    // cache carry a `plan_cache_hit` attribute (true = the planner was
    // skipped, false = this region paid for planning and seeded the
    // cache). Loop-heavy traces should show hits ≈ iterations − 1.
    let cache_hits = regions
        .iter()
        .filter(|r| matches!(r.attr("plan_cache_hit"), Some(AttrValue::Bool(true))))
        .count();
    let cache_misses = regions
        .iter()
        .filter(|r| matches!(r.attr("plan_cache_hit"), Some(AttrValue::Bool(false))))
        .count();
    let loop_regions = regions
        .iter()
        .filter(|r| r.attr("loop_iter").is_some())
        .count();
    if cache_hits > 0 || cache_misses > 0 {
        let _ = writeln!(
            out,
            "plan cache: {cache_hits} hit(s), {cache_misses} planned, \
             {loop_regions} region(s) inside loops"
        );
    }

    // Tenant digest: multi-tenant serve traces tag each run span with a
    // `tenant` attribute (plus queue wait, fair-share pressure, and a
    // quarantine-probe marker). Aggregate them so one summarize call
    // over a merged trace directory shows who ran, who waited, and who
    // was being probed back to health.
    struct TenantRow {
        runs: u64,
        wall_us: u64,
        max_wait_ms: u64,
        max_pressure: f64,
        probes: u64,
    }
    let mut tenant_rows: Vec<(String, TenantRow)> = Vec::new();
    for r in records {
        let Record::Span { kind, wall_us, .. } = r else {
            continue;
        };
        if kind != "run" {
            continue;
        }
        let Some(tenant) = r.attr_str("tenant") else {
            continue;
        };
        let row = match tenant_rows.iter_mut().find(|(t, _)| t == tenant) {
            Some((_, row)) => row,
            None => {
                tenant_rows.push((
                    tenant.to_string(),
                    TenantRow {
                        runs: 0,
                        wall_us: 0,
                        max_wait_ms: 0,
                        max_pressure: 0.0,
                        probes: 0,
                    },
                ));
                &mut tenant_rows.last_mut().unwrap().1
            }
        };
        row.runs += 1;
        row.wall_us += *wall_us;
        row.max_wait_ms = row.max_wait_ms.max(r.attr_u64("queue_wait_ms").unwrap_or(0));
        if let Some(AttrValue::Float(p)) = r.attr("tenant_pressure") {
            if *p > row.max_pressure {
                row.max_pressure = *p;
            }
        }
        if matches!(r.attr("quarantine_probe"), Some(AttrValue::Bool(true))) {
            row.probes += 1;
        }
    }
    if !tenant_rows.is_empty() {
        tenant_rows.sort_by(|a, b| a.0.cmp(&b.0));
        let _ = writeln!(
            out,
            "\ntenants\n{:<24} {:>6} {:>10} {:>12} {:>9} {:>7}",
            "tenant", "runs", "wall(ms)", "max_wait_ms", "pressure", "probes"
        );
        for (tenant, row) in &tenant_rows {
            let _ = writeln!(
                out,
                "{:<24} {:>6} {:>10.3} {:>12} {:>9.2} {:>7}",
                truncate(tenant, 24),
                row.runs,
                row.wall_us as f64 / 1000.0,
                row.max_wait_ms,
                row.max_pressure,
                row.probes,
            );
        }
    }

    let mut wrote_header = false;
    for r in records {
        let line = match r {
            Record::Counter { name, value } => Some(format!("{name:<36} {value:>14}")),
            Record::Gauge { name, value } => Some(format!("{name:<36} {value:>14}")),
            Record::Hist {
                name, count, sum, ..
            } => {
                let mean = sum.checked_div(*count).unwrap_or(0);
                Some(format!(
                    "{name:<36} {count:>8} obs, mean {mean} µs"
                ))
            }
            _ => None,
        };
        if let Some(line) = line {
            if !wrote_header {
                out.push_str("\nmetrics\n");
                wrote_header = true;
            }
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_regions_and_metrics() {
        let records = vec![
            Record::Span {
                kind: "run".into(),
                id: 0,
                parent: None,
                name: "script".into(),
                start_us: 0,
                wall_us: 5_000,
                attrs: vec![],
            },
            Record::Span {
                kind: "region".into(),
                id: 1,
                parent: Some(0),
                name: "cat /in | sort > /out".into(),
                start_us: 10,
                wall_us: 4_000,
                attrs: vec![
                    ("action".into(), AttrValue::Str("optimized".into())),
                    ("width".into(), AttrValue::UInt(4)),
                    ("bytes_in".into(), AttrValue::UInt(1024)),
                    ("bytes_out".into(), AttrValue::UInt(1024)),
                ],
            },
            Record::Span {
                kind: "node".into(),
                id: 2,
                parent: Some(1),
                name: "sort".into(),
                start_us: 12,
                wall_us: 3_000,
                attrs: vec![],
            },
            Record::Counter {
                name: "memo.hits".into(),
                value: 3,
            },
        ];
        let s = summarize(&records);
        assert!(s.contains("cat /in | sort > /out"), "{s}");
        assert!(s.contains("optimized"), "{s}");
        assert!(s.contains("memo.hits"), "{s}");
        assert!(s.contains("1024"), "{s}");
    }

    #[test]
    fn empty_trace_is_graceful() {
        assert!(summarize(&[]).contains("no region spans"));
    }

    #[test]
    fn fusion_row_aggregates_kernel_spans() {
        let records = vec![
            Record::Span {
                kind: "region".into(),
                id: 1,
                parent: None,
                name: "cat /in | tr a b | grep x".into(),
                start_us: 0,
                wall_us: 1_000,
                attrs: vec![
                    ("action".into(), AttrValue::Str("optimized".into())),
                    ("fused".into(), AttrValue::Bool(true)),
                    ("nodes_fused".into(), AttrValue::UInt(2)),
                ],
            },
            Record::Span {
                kind: "node".into(),
                id: 2,
                parent: Some(1),
                name: "fused[tr|grep]".into(),
                start_us: 1,
                wall_us: 900,
                attrs: vec![
                    ("cmd".into(), AttrValue::Str("fused".into())),
                    ("nodes_fused".into(), AttrValue::UInt(2)),
                    ("bytes_in".into(), AttrValue::UInt(4096)),
                    ("lines".into(), AttrValue::UInt(128)),
                ],
            },
        ];
        let s = summarize(&records);
        assert!(
            s.contains("fusion: 1 region(s) fused, 2 stage(s) in kernels"),
            "{s}"
        );
        assert!(s.contains("4096 bytes / 128 lines"), "{s}");
    }

    #[test]
    fn tenant_digest_aggregates_run_spans() {
        let run = |id: u64, tenant: &str, wall: u64, wait: u64, probe: bool| {
            let mut attrs = vec![
                ("tenant".to_string(), AttrValue::Str(tenant.to_string())),
                ("queue_wait_ms".to_string(), AttrValue::UInt(wait)),
                ("tenant_pressure".to_string(), AttrValue::Float(0.25)),
            ];
            if probe {
                attrs.push(("quarantine_probe".to_string(), AttrValue::Bool(true)));
            }
            Record::Span {
                kind: "run".into(),
                id,
                parent: None,
                name: format!("run-{id}"),
                start_us: 0,
                wall_us: wall,
                attrs,
            }
        };
        let records = vec![
            run(1, "heavy", 4_000, 120, false),
            run(2, "heavy", 6_000, 40, false),
            run(3, "light", 1_000, 7, true),
        ];
        let s = summarize(&records);
        assert!(s.contains("tenants"), "{s}");
        // heavy: 2 runs, 10ms wall, max wait 120; light: 1 run, 1 probe.
        assert!(s.contains("heavy"), "{s}");
        assert!(s.contains("120"), "{s}");
        let light_row = s.lines().find(|l| l.starts_with("light")).unwrap();
        assert!(light_row.contains('1'), "{light_row}");
        assert!(light_row.trim_end().ends_with('1'), "probe count: {light_row}");
    }

    #[test]
    fn plan_cache_row_aggregates_region_attrs() {
        let region = |id: u64, hit: bool, iter: Option<u64>| {
            let mut attrs = vec![
                ("action".into(), AttrValue::Str("optimized".into())),
                ("plan_cache_hit".into(), AttrValue::Bool(hit)),
            ];
            if let Some(i) = iter {
                attrs.push(("loop_iter".into(), AttrValue::UInt(i)));
            }
            Record::Span {
                kind: "region".into(),
                id,
                parent: None,
                name: format!("cat /f{id} | sort"),
                start_us: id,
                wall_us: 100,
                attrs,
            }
        };
        let records = vec![
            region(1, false, Some(1)),
            region(2, true, Some(2)),
            region(3, true, Some(3)),
        ];
        let s = summarize(&records);
        assert!(
            s.contains("plan cache: 2 hit(s), 1 planned, 3 region(s) inside loops"),
            "{s}"
        );
    }

    #[test]
    fn cacheless_trace_has_no_plan_cache_row() {
        let records = vec![Record::Span {
            kind: "region".into(),
            id: 1,
            parent: None,
            name: "cat /in | sort".into(),
            start_us: 0,
            wall_us: 1_000,
            attrs: vec![("action".into(), AttrValue::Str("optimized".into()))],
        }];
        assert!(!summarize(&records).contains("plan cache:"));
    }

    #[test]
    fn untenanted_trace_has_no_tenant_digest() {
        let records = vec![Record::Span {
            kind: "run".into(),
            id: 1,
            parent: None,
            name: "script".into(),
            start_us: 0,
            wall_us: 1_000,
            attrs: vec![],
        }];
        assert!(!summarize(&records).contains("tenants"));
    }

    #[test]
    fn unfused_trace_has_no_fusion_row() {
        let records = vec![Record::Span {
            kind: "region".into(),
            id: 1,
            parent: None,
            name: "cat /in | sort".into(),
            start_us: 0,
            wall_us: 1_000,
            attrs: vec![("action".into(), AttrValue::Str("optimized".into()))],
        }];
        assert!(!summarize(&records).contains("fusion:"));
    }
}
