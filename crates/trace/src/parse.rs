//! A small recursive-descent JSON parser and the schema-v1 record
//! decoder.
//!
//! Versioned on purpose: every line carries `"v":1`, and the decoder
//! rejects unknown versions loudly instead of guessing — a future
//! schema bump must come with a new parser, not silent misreads.

use crate::json::AttrValue;
use crate::span::{Record, SCHEMA_VERSION};

/// Why a line failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable reason.
    pub reason: String,
    /// 1-based line number when parsing a whole file.
    pub line: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

fn err(reason: impl Into<String>) -> ParseError {
    ParseError {
        reason: reason.into(),
        line: 1,
    }
}

/// A parsed JSON value (internal to record decoding, but public so
/// tests and tools can inspect unexpected lines).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer literal.
    UInt(u64),
    /// A negative integer literal.
    Int(i64),
    /// A float literal (has `.` or an exponent).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64_array(&self) -> Option<Vec<u64>> {
        match self {
            Json::Arr(xs) => xs.iter().map(Json::as_u64).collect(),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(err(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(err(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(err(format!("bad escape {:?}", other.map(|c| c as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not a byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| err(format!("bad float {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| err(format!("bad integer {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| err(format!("bad integer {text:?}")))
        }
    }
}

/// Parses one JSON value from `src` (trailing whitespace allowed).
pub fn parse_json(src: &str) -> Result<Json, ParseError> {
    let mut p = Parser::new(src);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(err(format!("trailing garbage at byte {}", p.pos)));
    }
    Ok(v)
}

fn json_to_attr(v: &Json) -> Result<AttrValue, ParseError> {
    Ok(match v {
        Json::Str(s) => AttrValue::Str(s.clone()),
        Json::UInt(n) => AttrValue::UInt(*n),
        Json::Int(n) => AttrValue::Int(*n),
        Json::Float(f) => AttrValue::Float(*f),
        Json::Bool(b) => AttrValue::Bool(*b),
        Json::Null => AttrValue::Str(String::new()),
        _ => return Err(err("nested attrs unsupported in schema v1")),
    })
}

fn attrs_of(v: &Json, key: &str) -> Result<Vec<(String, AttrValue)>, ParseError> {
    match v.get(key) {
        None => Ok(Vec::new()),
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .map(|(k, v)| Ok((k.clone(), json_to_attr(v)?)))
            .collect(),
        Some(_) => Err(err(format!("{key:?} must be an object"))),
    }
}

fn field_u64(v: &Json, key: &str) -> Result<u64, ParseError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| err(format!("missing/invalid {key:?}")))
}

fn field_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, ParseError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| err(format!("missing/invalid {key:?}")))
}

/// Decodes one trace line into a schema-v1 [`Record`].
pub fn parse_line(line: &str) -> Result<Record, ParseError> {
    let v = parse_json(line)?;
    let version = field_u64(&v, "v")?;
    if version != SCHEMA_VERSION {
        return Err(err(format!(
            "unsupported trace schema version {version} (this build reads v{SCHEMA_VERSION})"
        )));
    }
    match field_str(&v, "t")? {
        "span" => Ok(Record::Span {
            kind: field_str(&v, "kind")?.to_string(),
            id: field_u64(&v, "id")?,
            parent: v.get("parent").and_then(Json::as_u64),
            name: field_str(&v, "name")?.to_string(),
            start_us: field_u64(&v, "start_us")?,
            wall_us: field_u64(&v, "wall_us")?,
            attrs: attrs_of(&v, "attrs")?,
        }),
        "event" => Ok(Record::Event {
            name: field_str(&v, "name")?.to_string(),
            at_us: field_u64(&v, "at_us")?,
            attrs: attrs_of(&v, "attrs")?,
        }),
        "counter" => Ok(Record::Counter {
            name: field_str(&v, "name")?.to_string(),
            value: field_u64(&v, "value")?,
        }),
        "gauge" => Ok(Record::Gauge {
            name: field_str(&v, "name")?.to_string(),
            value: v
                .get("value")
                .and_then(Json::as_i64)
                .ok_or_else(|| err("missing/invalid \"value\""))?,
        }),
        "hist" => Ok(Record::Hist {
            name: field_str(&v, "name")?.to_string(),
            bounds: v
                .get("bounds")
                .and_then(Json::as_u64_array)
                .ok_or_else(|| err("missing/invalid \"bounds\""))?,
            buckets: v
                .get("buckets")
                .and_then(Json::as_u64_array)
                .ok_or_else(|| err("missing/invalid \"buckets\""))?,
            count: field_u64(&v, "count")?,
            sum: field_u64(&v, "sum")?,
        }),
        other => Err(err(format!("unknown record type {other:?}"))),
    }
}

/// Parses a whole JSONL trace, skipping blank lines. The error carries
/// the offending 1-based line number.
pub fn parse_jsonl(src: &str) -> Result<Vec<Record>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_line(line).map_err(|mut e| {
            e.line = i + 1;
            e
        })?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse_json(r#"{"a":1,"b":-2,"c":3.5,"d":"x\ny","e":[1,2],"f":true,"g":null}"#)
            .unwrap();
        assert_eq!(v.get("a"), Some(&Json::UInt(1)));
        assert_eq!(v.get("b"), Some(&Json::Int(-2)));
        assert_eq!(v.get("c"), Some(&Json::Float(3.5)));
        assert_eq!(v.get("d").and_then(Json::as_str), Some("x\ny"));
        assert_eq!(v.get("e").and_then(Json::as_u64_array), Some(vec![1, 2]));
        assert_eq!(v.get("f"), Some(&Json::Bool(true)));
        assert_eq!(v.get("g"), Some(&Json::Null));
    }

    #[test]
    fn rejects_wrong_version() {
        let e = parse_line(r#"{"v":2,"t":"counter","name":"x","value":1}"#).unwrap_err();
        assert!(e.reason.contains("version 2"), "{e}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_line("not json").is_err());
        assert!(parse_line(r#"{"v":1,"t":"mystery"}"#).is_err());
        assert!(parse_json(r#"{"a":1} extra"#).is_err());
    }

    #[test]
    fn jsonl_reports_line_numbers() {
        let e = parse_jsonl("{\"v\":1,\"t\":\"counter\",\"name\":\"x\",\"value\":1}\n\nbroken\n")
            .unwrap_err();
        assert_eq!(e.line, 3);
    }
}
