//! Spans, events, and the schema-v1 trace record.
//!
//! The span hierarchy mirrors the engine's structure: one `run` span per
//! script execution, one `region` span per top-level statement, and one
//! `node` span per dataflow node the executor ran. Events are
//! point-in-time observations (supervision decisions, resume claims)
//! attached to the timeline rather than to a duration.

use crate::json::{write_attrs, write_str, AttrValue};
use crate::metrics::MetricsRegistry;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// The trace schema version this crate reads and writes.
pub const SCHEMA_VERSION: u64 = 1;

/// Identifier of a started span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// One line of a schema-v1 JSONL trace.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A completed span.
    Span {
        /// Hierarchy level: `"run"`, `"region"`, or `"node"`.
        kind: String,
        /// Unique id within the trace.
        id: u64,
        /// Parent span id (`None` for the run root).
        parent: Option<u64>,
        /// Display name (pipeline text, node label, script name).
        name: String,
        /// Start offset from trace origin, microseconds.
        start_us: u64,
        /// Duration, microseconds.
        wall_us: u64,
        /// Typed attributes, in insertion order.
        attrs: Vec<(String, AttrValue)>,
    },
    /// A point-in-time event.
    Event {
        /// Event name (`"supervision"`, `"resume"`, …).
        name: String,
        /// Offset from trace origin, microseconds.
        at_us: u64,
        /// Typed attributes.
        attrs: Vec<(String, AttrValue)>,
    },
    /// A counter snapshot.
    Counter {
        /// Metric name.
        name: String,
        /// Final value.
        value: u64,
    },
    /// A gauge snapshot.
    Gauge {
        /// Metric name.
        name: String,
        /// Final value.
        value: i64,
    },
    /// A histogram snapshot.
    Hist {
        /// Metric name.
        name: String,
        /// Inclusive upper bucket bounds.
        bounds: Vec<u64>,
        /// Per-bucket counts (one more than `bounds`: overflow last).
        buckets: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Saturating sum of observations.
        sum: u64,
    },
}

fn write_u64_array(out: &mut String, xs: &[u64]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out.push(']');
}

impl Record {
    /// Serializes the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(out, "{{\"v\":{SCHEMA_VERSION},");
        match self {
            Record::Span {
                kind,
                id,
                parent,
                name,
                start_us,
                wall_us,
                attrs,
            } => {
                out.push_str("\"t\":\"span\",\"kind\":");
                write_str(&mut out, kind);
                let _ = write!(out, ",\"id\":{id}");
                if let Some(p) = parent {
                    let _ = write!(out, ",\"parent\":{p}");
                }
                out.push_str(",\"name\":");
                write_str(&mut out, name);
                let _ = write!(out, ",\"start_us\":{start_us},\"wall_us\":{wall_us},\"attrs\":");
                write_attrs(&mut out, attrs);
            }
            Record::Event { name, at_us, attrs } => {
                out.push_str("\"t\":\"event\",\"name\":");
                write_str(&mut out, name);
                let _ = write!(out, ",\"at_us\":{at_us},\"attrs\":");
                write_attrs(&mut out, attrs);
            }
            Record::Counter { name, value } => {
                out.push_str("\"t\":\"counter\",\"name\":");
                write_str(&mut out, name);
                let _ = write!(out, ",\"value\":{value}");
            }
            Record::Gauge { name, value } => {
                out.push_str("\"t\":\"gauge\",\"name\":");
                write_str(&mut out, name);
                let _ = write!(out, ",\"value\":{value}");
            }
            Record::Hist {
                name,
                bounds,
                buckets,
                count,
                sum,
            } => {
                out.push_str("\"t\":\"hist\",\"name\":");
                write_str(&mut out, name);
                out.push_str(",\"bounds\":");
                write_u64_array(&mut out, bounds);
                out.push_str(",\"buckets\":");
                write_u64_array(&mut out, buckets);
                let _ = write!(out, ",\"count\":{count},\"sum\":{sum}");
            }
        }
        out.push('}');
        out
    }

    /// The attribute named `key`, for span and event records.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        let attrs = match self {
            Record::Span { attrs, .. } | Record::Event { attrs, .. } => attrs,
            _ => return None,
        };
        attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// An attribute as a string, when present and a string.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        match self.attr(key)? {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// An attribute as an unsigned integer, coercing `Int` when exact.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        match self.attr(key)? {
            AttrValue::UInt(n) => Some(*n),
            AttrValue::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }
}

struct OpenSpan {
    kind: String,
    name: String,
    parent: Option<u64>,
    start: Instant,
    attrs: Vec<(String, AttrValue)>,
}

#[derive(Default)]
struct TracerState {
    next_id: u64,
    open: HashMap<u64, OpenSpan>,
    records: Vec<Record>,
}

/// The span/event collector.
///
/// One `Tracer` serves a whole session; it is `Sync`, cheap when idle
/// (one short mutex hold per span boundary), and carries its own
/// [`MetricsRegistry`] so metrics ride along in the same trace file.
pub struct Tracer {
    state: Mutex<TracerState>,
    metrics: MetricsRegistry,
    origin: Instant,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh tracer; the creation instant becomes the trace origin.
    pub fn new() -> Self {
        Tracer {
            state: Mutex::new(TracerState::default()),
            metrics: MetricsRegistry::new(),
            origin: Instant::now(),
        }
    }

    /// The tracer's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Microseconds elapsed since the trace origin.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TracerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Starts a span of `kind` under `parent`.
    pub fn start(&self, kind: &str, name: &str, parent: Option<SpanId>) -> SpanId {
        let mut st = self.lock();
        let id = st.next_id;
        st.next_id += 1;
        st.open.insert(
            id,
            OpenSpan {
                kind: kind.to_string(),
                name: name.to_string(),
                parent: parent.map(|p| p.0),
                start: Instant::now(),
                attrs: Vec::new(),
            },
        );
        SpanId(id)
    }

    /// Sets (or replaces) an attribute on an open span.
    pub fn set_attr(&self, span: SpanId, key: &str, value: impl Into<AttrValue>) {
        let mut st = self.lock();
        if let Some(open) = st.open.get_mut(&span.0) {
            let value = value.into();
            if let Some(slot) = open.attrs.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                open.attrs.push((key.to_string(), value));
            }
        }
    }

    /// The start offset (µs since origin) of an open span.
    pub fn start_us_of(&self, span: SpanId) -> Option<u64> {
        let st = self.lock();
        st.open
            .get(&span.0)
            .map(|o| o.start.duration_since(self.origin).as_micros() as u64)
    }

    /// Ends an open span, committing it to the record stream.
    pub fn end(&self, span: SpanId) {
        let mut st = self.lock();
        if let Some(open) = st.open.remove(&span.0) {
            let start_us = open.start.duration_since(self.origin).as_micros() as u64;
            let wall_us = open.start.elapsed().as_micros() as u64;
            st.records.push(Record::Span {
                kind: open.kind,
                id: span.0,
                parent: open.parent,
                name: open.name,
                start_us,
                wall_us,
                attrs: open.attrs,
            });
        }
    }

    /// Records a pre-measured span in one call (used for nodes, whose
    /// timings arrive after the fact from the executor's metrics).
    pub fn record_span_at(
        &self,
        kind: &str,
        name: &str,
        parent: Option<SpanId>,
        start_us: u64,
        wall_us: u64,
        attrs: Vec<(String, AttrValue)>,
    ) -> SpanId {
        let mut st = self.lock();
        let id = st.next_id;
        st.next_id += 1;
        st.records.push(Record::Span {
            kind: kind.to_string(),
            id,
            parent: parent.map(|p| p.0),
            name: name.to_string(),
            start_us,
            wall_us,
            attrs,
        });
        SpanId(id)
    }

    /// Records a point-in-time event.
    pub fn event(&self, name: &str, attrs: Vec<(String, AttrValue)>) {
        let at_us = self.now_us();
        self.lock().records.push(Record::Event {
            name: name.to_string(),
            at_us,
            attrs,
        });
    }

    /// Drains everything recorded so far: committed spans and events in
    /// completion order, any still-open spans force-closed at the current
    /// instant, then a metrics snapshot.
    pub fn drain(&self) -> Vec<Record> {
        let mut st = self.lock();
        let open: Vec<u64> = st.open.keys().copied().collect();
        let mut open = open;
        open.sort_unstable();
        for id in open {
            if let Some(o) = st.open.remove(&id) {
                let start_us = o.start.duration_since(self.origin).as_micros() as u64;
                let wall_us = o.start.elapsed().as_micros() as u64;
                st.records.push(Record::Span {
                    kind: o.kind,
                    id,
                    parent: o.parent,
                    name: o.name,
                    start_us,
                    wall_us,
                    attrs: o.attrs,
                });
            }
        }
        let mut out = std::mem::take(&mut st.records);
        drop(st);
        out.extend(self.metrics.snapshot());
        out
    }

    /// Serializes [`Tracer::drain`] as JSONL (one record per line, with a
    /// trailing newline when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in self.drain() {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_hierarchy_and_attrs() {
        let t = Tracer::new();
        let run = t.start("run", "script", None);
        let region = t.start("region", "cat /in | sort", Some(run));
        t.set_attr(region, "width", 4u64);
        t.set_attr(region, "width", 2u64); // last write wins
        t.set_attr(region, "action", "optimized");
        t.end(region);
        t.end(run);
        let records = t.drain();
        assert_eq!(records.len(), 2);
        let Record::Span {
            kind,
            parent,
            attrs,
            ..
        } = &records[0]
        else {
            panic!("expected span");
        };
        assert_eq!(kind, "region");
        assert_eq!(*parent, Some(0));
        assert_eq!(
            attrs.iter().find(|(k, _)| k == "width").map(|(_, v)| v),
            Some(&AttrValue::UInt(2))
        );
    }

    #[test]
    fn drain_force_closes_open_spans() {
        let t = Tracer::new();
        let _run = t.start("run", "r", None);
        let records = t.drain();
        assert_eq!(records.len(), 1);
        assert!(matches!(&records[0], Record::Span { kind, .. } if kind == "run"));
    }

    #[test]
    fn metrics_ride_along_in_drain() {
        let t = Tracer::new();
        t.metrics().counter("memo.hits").add(2);
        let records = t.drain();
        assert!(records
            .iter()
            .any(|r| matches!(r, Record::Counter { name, value: 2 } if name == "memo.hits")));
    }

    #[test]
    fn json_line_shape() {
        let r = Record::Span {
            kind: "region".into(),
            id: 7,
            parent: Some(1),
            name: "cat /in".into(),
            start_us: 10,
            wall_us: 20,
            attrs: vec![("width".into(), AttrValue::UInt(4))],
        };
        assert_eq!(
            r.to_json_line(),
            r#"{"v":1,"t":"span","kind":"region","id":7,"parent":1,"name":"cat /in","start_us":10,"wall_us":20,"attrs":{"width":4}}"#
        );
    }
}
