//! A lock-cheap metrics registry: named counters, gauges, and
//! fixed-boundary histograms.
//!
//! Registration takes a mutex once per *name*; every subsequent update
//! is a handful of atomic operations, so split workers can increment
//! shared counters from inside the executor's hot loop without
//! contending. All arithmetic saturates — a metrics overflow must never
//! wrap into a lie.

use crate::span::Record;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default histogram boundaries for microsecond timings: 10 µs … 10 s.
pub const DEFAULT_TIME_BOUNDS_US: &[u64] = &[
    10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000,
];

/// A monotonically increasing counter (saturating).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed upper-bound buckets plus an overflow bucket.
///
/// `bounds` are inclusive upper edges in ascending order; a recorded
/// value lands in the first bucket whose bound is `>= value`, or the
/// final overflow bucket past the last bound.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds.
    pub fn new(bounds: &[u64]) -> Self {
        let mut sorted = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: sorted,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(value))
            });
    }

    /// The inclusive upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket observation counts (one more entry than `bounds`; the
    /// last is the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// A registry of named metrics.
///
/// Names are free-form dotted paths (`"region.bytes_out"`); snapshots
/// emit records sorted by name, so serialization is deterministic no
/// matter the registration order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use with `bounds`
    /// (an existing histogram keeps its original bounds).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Snapshots every metric as schema records, sorted by kind then name.
    pub fn snapshot(&self) -> Vec<Record> {
        let mut out = Vec::new();
        for (name, c) in self.counters.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            out.push(Record::Counter {
                name: name.clone(),
                value: c.get(),
            });
        }
        for (name, g) in self.gauges.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            out.push(Record::Gauge {
                name: name.clone(),
                value: g.get(),
            });
        }
        for (name, h) in self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            out.push(Record::Hist {
                name: name.clone(),
                bounds: h.bounds().to_vec(),
                buckets: h.bucket_counts(),
                count: h.count(),
                sum: h.sum(),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::default();
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive() {
        let h = Histogram::new(&[10, 100]);
        h.record(0);
        h.record(10); // edge: lands in the first bucket
        h.record(11); // just past: second bucket
        h.record(100); // edge: second bucket
        h.record(101); // overflow bucket
        assert_eq!(h.bucket_counts(), vec![2, 2, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 222);
    }

    #[test]
    fn histogram_sum_saturates() {
        let h = Histogram::new(&[1]);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn registry_returns_same_instance_per_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        assert_eq!(b.get(), 3);
        let h1 = r.histogram("h", &[5, 10]);
        let h2 = r.histogram("h", &[999]); // bounds ignored on re-lookup
        assert_eq!(h2.bounds(), h1.bounds());
    }

    #[test]
    fn concurrent_increments_from_split_workers() {
        let r = Arc::new(MetricsRegistry::new());
        let c = r.counter("bytes");
        let h = r.histogram("wall", &[1_000]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1_000 {
                        c.incr();
                        h.record(i % 2_000);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8_000);
        assert_eq!(h.count(), 8_000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 8_000);
    }

    #[test]
    fn snapshot_sorted_by_name() {
        let r = MetricsRegistry::new();
        r.counter("zeta").incr();
        r.counter("alpha").add(2);
        r.gauge("mid").set(-7);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(matches!(&snap[0], Record::Counter { name, value: 2 } if name == "alpha"));
        assert!(matches!(&snap[1], Record::Counter { name, value: 1 } if name == "zeta"));
        assert!(matches!(&snap[2], Record::Gauge { name, value: -7 } if name == "mid"));
    }
}
