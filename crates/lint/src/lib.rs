//! Heuristic support: ShellCheck-style static analyses and a runtime
//! misuse guard (paper §4, *Heuristic support*: "identifying errors and
//! command misuse in a shell script" and "a sound JIT analysis that
//! detects command misuse at runtime (but still before it occurs)").
//!
//! Static rules walk the AST; the runtime guard inspects a fully expanded
//! argv right before execution — the place where the JIT architecture
//! makes "before it occurs" possible, because expansion has resolved the
//! dangerous values.
//!
//! # Examples
//!
//! ```
//! let findings = jash_lint::lint_script("rm -rf $PREFIX/").unwrap();
//! assert!(findings.iter().any(|f| f.rule == "rm-unchecked-expansion"));
//! ```

pub mod rules;
pub mod runtime_guard;

pub use rules::{lint_program, lint_script, Finding, Severity};
pub use runtime_guard::{guard_argv, GuardVerdict};
