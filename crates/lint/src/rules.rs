//! Static lint rules over the AST.

use jash_ast::span::LineMap;
use jash_ast::{visit, Command, CommandKind, Program, Span, Word, WordPart};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style or modernization hint.
    Info,
    /// Probably a latent bug.
    Warning,
    /// Very likely destructive or wrong.
    Error,
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule identifier.
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Source location.
    pub span: Span,
}

impl Finding {
    /// Renders with line/column against the original source.
    pub fn display(&self, source: &str) -> String {
        let (line, col) = LineMap::new(source).position(self.span.start.min(source.len()));
        format!(
            "{}:{}: [{}] {:?}: {}",
            line, col, self.rule, self.severity, self.message
        )
    }
}

/// Parses and lints a script.
pub fn lint_script(src: &str) -> Result<Vec<Finding>, jash_parser::ParseError> {
    let prog = jash_parser::parse(src)?;
    let mut findings = lint_program(&prog);
    // Source-level rules the AST cannot see (backquotes normalize away).
    findings.extend(backtick_style(src));
    findings.sort_by_key(|f| f.span.start);
    Ok(findings)
}

/// Lints a parsed program.
pub fn lint_program(prog: &Program) -> Vec<Finding> {
    let mut findings = Vec::new();
    visit::walk_commands(prog, &mut |cmd| {
        lint_command(cmd, &mut findings);
    });
    lint_top_level(prog, &mut findings);
    findings
}

fn lint_command(cmd: &Command, findings: &mut Vec<Finding>) {
    let CommandKind::Simple(sc) = &cmd.kind else {
        if let CommandKind::For(f) = &cmd.kind {
            lint_for_clause(cmd, f, findings);
        }
        return;
    };
    let Some(name) = sc.words.first().and_then(Word::as_literal) else {
        return;
    };

    match name {
        "rm" => lint_rm(cmd, sc, findings),
        "read" if !sc.words.iter().any(|w| w.as_literal() == Some("-r")) => {
            findings.push(Finding {
                rule: "read-without-r",
                severity: Severity::Info,
                message: "read without -r mangles backslashes".to_string(),
                span: cmd.span,
            });
        }
        "test" | "[" => {
            for w in &sc.words[1..] {
                if bare_unquoted_param(w) {
                    findings.push(Finding {
                        rule: "unquoted-test-operand",
                        severity: Severity::Warning,
                        message: format!(
                            "unquoted `{}` in test: an empty value breaks the expression",
                            jash_ast::unparse_word(w)
                        ),
                        span: cmd.span,
                    });
                }
            }
        }
        _ => {}
    }

    // Unquoted expansions in argument position split and glob.
    for w in sc.words.iter().skip(1) {
        if bare_unquoted_param(w) && !matches!(name, "test" | "[" | "echo" | "printf" | "export")
        {
            findings.push(Finding {
                rule: "unquoted-expansion",
                severity: Severity::Info,
                message: format!(
                    "`{}` is subject to word splitting and globbing; quote it unless splitting is intended",
                    jash_ast::unparse_word(w)
                ),
                span: cmd.span,
            });
        }
    }
}

fn lint_rm(cmd: &Command, sc: &jash_ast::SimpleCommand, findings: &mut Vec<Finding>) {
    let recursive = sc.words.iter().any(|w| {
        w.as_literal()
            .map(|l| l.starts_with('-') && (l.contains('r') || l.contains('R')))
            .unwrap_or(false)
    });
    for w in sc.words.iter().skip(1) {
        if w.as_literal().map(|l| l.starts_with('-')).unwrap_or(false) {
            continue;
        }
        // `rm -rf /$VAR` or `rm -rf $VAR/...`: an unset VAR turns this
        // into `rm -rf /` — the paper's "single typo could erase entire
        // hard drives".
        let has_plain_param = w.parts.iter().any(|p| {
            matches!(
                p,
                WordPart::Param(pe) if matches!(pe.op, jash_ast::ParamOp::Plain)
            )
        });
        if recursive && has_plain_param {
            findings.push(Finding {
                rule: "rm-unchecked-expansion",
                severity: Severity::Error,
                message: format!(
                    "`rm -r {}`: if the variable is unset or empty this can delete far more than intended; use ${{var:?}} or quote and validate",
                    jash_ast::unparse_word(w)
                ),
                span: cmd.span,
            });
        }
        if w.as_literal() == Some("/") && recursive {
            findings.push(Finding {
                rule: "rm-root",
                severity: Severity::Error,
                message: "`rm -r /` deletes the entire filesystem".to_string(),
                span: cmd.span,
            });
        }
    }
}

fn lint_for_clause(cmd: &Command, f: &jash_ast::ForClause, findings: &mut Vec<Finding>) {
    let Some(words) = &f.words else { return };
    for w in words {
        let ls_subst = w.parts.iter().any(|p| match p {
            WordPart::CmdSubst(prog) => {
                let mut found = false;
                visit::walk_commands(prog, &mut |c| {
                    if let CommandKind::Simple(sc) = &c.kind {
                        if sc.words.first().and_then(Word::as_literal) == Some("ls") {
                            found = true;
                        }
                    }
                });
                found
            }
            _ => false,
        });
        if ls_subst {
            findings.push(Finding {
                rule: "for-over-ls",
                severity: Severity::Warning,
                message: "iterating $(ls ...) breaks on whitespace in names; iterate a glob instead"
                    .to_string(),
                span: cmd.span,
            });
        }
    }
}

fn lint_top_level(prog: &Program, findings: &mut Vec<Finding>) {
    for item in &prog.items {
        let pl = &item.and_or.first;
        // Useless cat: `cat onefile | cmd` (and the item has more stages).
        if pl.commands.len() >= 2 {
            if let CommandKind::Simple(sc) = &pl.commands[0].kind {
                if sc.words.first().and_then(Word::as_literal) == Some("cat")
                    && sc.words.len() == 2
                    && pl.commands[0].redirects.is_empty()
                    && sc.words[1].as_literal().map(|l| l != "-").unwrap_or(false)
                {
                    findings.push(Finding {
                        rule: "useless-cat",
                        severity: Severity::Info,
                        message: "cat of a single file piped onward; `cmd < file` avoids a copy"
                            .to_string(),
                        span: pl.commands[0].span,
                    });
                }
            }
        }
        // Unchecked cd: a lone `cd` whose failure the script ignores.
        if item.and_or.rest.is_empty() && pl.commands.len() == 1 {
            if let CommandKind::Simple(sc) = &pl.commands[0].kind {
                if sc.words.first().and_then(Word::as_literal) == Some("cd") {
                    findings.push(Finding {
                        rule: "unchecked-cd",
                        severity: Severity::Warning,
                        message:
                            "cd can fail; `cd ... || exit` (or set -e) prevents running in the wrong directory"
                                .to_string(),
                        span: pl.commands[0].span,
                    });
                }
            }
        }
    }
}

/// A word that is a bare `$x` / `${x}` with no quoting.
fn bare_unquoted_param(w: &Word) -> bool {
    w.parts.iter().any(|p| {
        matches!(p, WordPart::Param(pe) if matches!(pe.op, jash_ast::ParamOp::Plain))
    }) && !w
        .parts
        .iter()
        .any(|p| matches!(p, WordPart::DoubleQuoted(_) | WordPart::SingleQuoted(_)))
}

fn backtick_style(src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_single = false;
    let mut escaped = false;
    for (i, c) in src.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '\'' => in_single = !in_single,
            '`' if !in_single => {
                findings.push(Finding {
                    rule: "backtick-substitution",
                    severity: Severity::Info,
                    message: "prefer $(...) over backticks: it nests and reads better".to_string(),
                    span: Span::new(i, i + 1),
                });
                // Skip to the closing backtick.
                return findings;
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(src: &str) -> Vec<&'static str> {
        lint_script(src).unwrap().iter().map(|f| f.rule).collect()
    }

    #[test]
    fn clean_scripts_are_clean() {
        assert!(rules("sort < /in > /out").is_empty());
        assert!(rules("grep -v 999 /data | head -n1").is_empty());
    }

    #[test]
    fn rm_with_unchecked_expansion() {
        let f = lint_script("rm -rf $PREFIX/build").unwrap();
        assert_eq!(f[0].rule, "rm-unchecked-expansion");
        assert_eq!(f[0].severity, Severity::Error);
        // Guarded spellings do not fire.
        assert!(!rules("rm -rf ${PREFIX:?}/build").contains(&"rm-unchecked-expansion"));
        assert!(!rules("rm -rf /tmp/fixed").contains(&"rm-unchecked-expansion"));
    }

    #[test]
    fn rm_root_detected() {
        assert!(rules("rm -rf /").contains(&"rm-root"));
        assert!(!rules("rm /tmp/file").contains(&"rm-root"));
    }

    #[test]
    fn useless_cat() {
        assert!(rules("cat /file | wc -l").contains(&"useless-cat"));
        assert!(!rules("cat /a /b | wc -l").contains(&"useless-cat"));
        assert!(!rules("cat /file").contains(&"useless-cat"));
    }

    #[test]
    fn unchecked_cd() {
        assert!(rules("cd /somewhere").contains(&"unchecked-cd"));
        assert!(!rules("cd /somewhere || exit 1").contains(&"unchecked-cd"));
        assert!(!rules("cd /somewhere && make").contains(&"unchecked-cd"));
    }

    #[test]
    fn read_without_r() {
        assert!(rules("read line").contains(&"read-without-r"));
        assert!(!rules("read -r line").contains(&"read-without-r"));
    }

    #[test]
    fn unquoted_test_operand() {
        assert!(rules("[ $x = y ]").contains(&"unquoted-test-operand"));
        assert!(!rules("[ \"$x\" = y ]").contains(&"unquoted-test-operand"));
    }

    #[test]
    fn for_over_ls() {
        assert!(rules("for f in $(ls /d); do echo $f; done").contains(&"for-over-ls"));
        assert!(!rules("for f in /d/*; do echo \"$f\"; done").contains(&"for-over-ls"));
    }

    #[test]
    fn backticks_flagged() {
        assert!(rules("x=`date`").contains(&"backtick-substitution"));
        assert!(!rules("x=$(date)").contains(&"backtick-substitution"));
        assert!(!rules("echo 'not a `tick`'").contains(&"backtick-substitution"));
    }

    #[test]
    fn unquoted_expansion_info() {
        assert!(rules("wc -l $files").contains(&"unquoted-expansion"));
        assert!(!rules("wc -l \"$files\"").contains(&"unquoted-expansion"));
        // echo is exempt (splitting is almost always intended there).
        assert!(!rules("echo $files").contains(&"unquoted-expansion"));
    }

    #[test]
    fn findings_render_with_position() {
        let src = "true\nrm -rf $X";
        let f = lint_script(src).unwrap();
        let text = f[0].display(src);
        assert!(text.starts_with("2:"), "{text}");
    }

    #[test]
    fn rules_reach_nested_commands() {
        assert!(rules("if true; then rm -rf $X; fi").contains(&"rm-unchecked-expansion"));
    }
}
