//! The JIT-time misuse guard.
//!
//! Static rules see `rm -rf $PREFIX/` and can only warn. The JIT sees the
//! *expanded* argv — `rm -rf /` — right before execution, where a sound
//! verdict is possible ("detects command misuse at runtime (but still
//! before it occurs)", paper §4).

/// The guard's verdict on an expanded argv.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardVerdict {
    /// Nothing suspicious.
    Allow,
    /// Suspicious but plausible; run only if the user opted in.
    Confirm(String),
    /// Refuse to run.
    Deny(String),
}

/// Critical paths no recursive delete should ever target.
const PROTECTED: &[&str] = &["/", "/bin", "/etc", "/home", "/usr", "/var", "/dev"];

/// Inspects a fully expanded argv (resolved against `cwd`).
pub fn guard_argv(argv: &[String], cwd: &str) -> GuardVerdict {
    let Some(name) = argv.first() else {
        return GuardVerdict::Allow;
    };
    match name.as_str() {
        "rm" => guard_rm(&argv[1..], cwd),
        "mv" | "cp" => {
            // Overwriting a protected path wholesale.
            if let Some(dst) = argv.last() {
                let dst = jash_io::fs::normalize(cwd, dst);
                if PROTECTED.contains(&dst.as_str()) && argv.len() > 2 {
                    return GuardVerdict::Confirm(format!(
                        "{name} writes into protected path {dst}"
                    ));
                }
            }
            GuardVerdict::Allow
        }
        _ => GuardVerdict::Allow,
    }
}

fn guard_rm(args: &[String], cwd: &str) -> GuardVerdict {
    let recursive = args
        .iter()
        .take_while(|a| a.starts_with('-'))
        .any(|a| a.contains('r') || a.contains('R'));
    let force = args
        .iter()
        .take_while(|a| a.starts_with('-'))
        .any(|a| a.contains('f'));
    for a in args.iter().filter(|a| !a.starts_with('-')) {
        if a.is_empty() {
            return GuardVerdict::Deny(
                "rm with an empty operand (an unset variable expanded to nothing?)".to_string(),
            );
        }
        let path = jash_io::fs::normalize(cwd, a);
        if recursive && PROTECTED.contains(&path.as_str()) {
            return GuardVerdict::Deny(format!("recursive rm of protected path {path}"));
        }
        if recursive && force && path == jash_io::fs::normalize(cwd, "..") {
            return GuardVerdict::Confirm(format!("rm -rf of the parent directory {path}"));
        }
    }
    // `rm -rf` with zero path operands usually means every operand
    // expanded away.
    if recursive && force && args.iter().all(|a| a.starts_with('-')) {
        return GuardVerdict::Confirm("rm -rf with no path operands".to_string());
    }
    GuardVerdict::Allow
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(a: &[&str]) -> Vec<String> {
        a.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn ordinary_commands_allowed() {
        assert_eq!(guard_argv(&argv(&["sort", "/data"]), "/"), GuardVerdict::Allow);
        assert_eq!(guard_argv(&argv(&["rm", "/tmp/scratch"]), "/"), GuardVerdict::Allow);
        assert_eq!(guard_argv(&[], "/"), GuardVerdict::Allow);
    }

    #[test]
    fn rm_rf_root_denied() {
        // The scenario the static rule can only guess at: `rm -rf $X/`
        // where X expanded empty.
        assert!(matches!(
            guard_argv(&argv(&["rm", "-rf", "/"]), "/"),
            GuardVerdict::Deny(_)
        ));
        assert!(matches!(
            guard_argv(&argv(&["rm", "-r", "/usr"]), "/"),
            GuardVerdict::Deny(_)
        ));
    }

    #[test]
    fn empty_operand_denied() {
        assert!(matches!(
            guard_argv(&argv(&["rm", "-rf", ""]), "/"),
            GuardVerdict::Deny(_)
        ));
    }

    #[test]
    fn relative_paths_resolved_against_cwd() {
        // In /usr, `rm -rf .` is a protected-path delete.
        assert!(matches!(
            guard_argv(&argv(&["rm", "-r", "."]), "/usr"),
            GuardVerdict::Deny(_)
        ));
        // In /home/user/project it is fine.
        assert_eq!(
            guard_argv(&argv(&["rm", "-r", "."]), "/home/user/project"),
            GuardVerdict::Allow
        );
    }

    #[test]
    fn no_operand_rm_rf_needs_confirmation() {
        assert!(matches!(
            guard_argv(&argv(&["rm", "-rf"]), "/"),
            GuardVerdict::Confirm(_)
        ));
    }

    #[test]
    fn cp_into_protected_path_flagged() {
        assert!(matches!(
            guard_argv(&argv(&["cp", "x", "/etc"]), "/"),
            GuardVerdict::Confirm(_)
        ));
        assert_eq!(
            guard_argv(&argv(&["cp", "x", "/etc/app.conf"]), "/"),
            GuardVerdict::Allow
        );
    }
}
