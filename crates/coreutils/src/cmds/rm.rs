//! `rm` — remove files.

use crate::util::write_stderr;
use crate::{UtilCtx, UtilIo};
use std::io;

/// Runs `rm [-f] [-r] file...`. Directories require `-r` (which removes
/// every file under the prefix on the virtual filesystem).
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let (flags, files) = crate::util::split_flags(args);
    let force = flags.iter().any(|f| f.contains('f'));
    let recursive = flags.iter().any(|f| f.contains('r') || f.contains('R'));
    if files.is_empty() && !force {
        write_stderr(io, "rm: missing operand\n")?;
        return Ok(2);
    }
    let mut status = 0;
    for f in &files {
        let path = ctx.resolve(f);
        match ctx.fs.metadata(&path) {
            Ok(meta) if meta.is_dir => {
                if recursive {
                    remove_tree(ctx, &path)?;
                } else {
                    write_stderr(io, &format!("rm: {f}: is a directory\n"))?;
                    status = 1;
                }
            }
            Ok(_) => {
                if ctx.fs.remove(&path).is_err() && !force {
                    status = 1;
                }
            }
            Err(e) => {
                if !force {
                    write_stderr(io, &format!("rm: {f}: {e}\n"))?;
                    status = 1;
                }
            }
        }
    }
    Ok(status)
}

fn remove_tree(ctx: &UtilCtx, path: &str) -> io::Result<()> {
    if let Ok(names) = ctx.fs.list_dir(path) {
        for n in names {
            let child = format!("{}/{}", path.trim_end_matches('/'), n);
            match ctx.fs.metadata(&child) {
                Ok(m) if m.is_dir => remove_tree(ctx, &child)?,
                _ => {
                    let _ = ctx.fs.remove(&child);
                }
            }
        }
    }
    let _ = ctx.fs.remove(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    #[test]
    fn removes_files() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        jash_io::fs::write_file(ctx.fs.as_ref(), "/x", b"1").unwrap();
        let (st, _, _) = run_on_bytes(&ctx, "rm", &["/x"], b"").unwrap();
        assert_eq!(st, 0);
        assert!(!ctx.fs.exists("/x"));
    }

    #[test]
    fn missing_file_errors_unless_forced() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        assert_eq!(run_on_bytes(&ctx, "rm", &["/nope"], b"").unwrap().0, 1);
        assert_eq!(run_on_bytes(&ctx, "rm", &["-f", "/nope"], b"").unwrap().0, 0);
    }

    #[test]
    fn directories_need_recursive() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        jash_io::fs::write_file(ctx.fs.as_ref(), "/d/a", b"1").unwrap();
        jash_io::fs::write_file(ctx.fs.as_ref(), "/d/sub/b", b"2").unwrap();
        assert_eq!(run_on_bytes(&ctx, "rm", &["/d"], b"").unwrap().0, 1);
        assert_eq!(run_on_bytes(&ctx, "rm", &["-r", "/d"], b"").unwrap().0, 0);
        assert!(!ctx.fs.exists("/d/a"));
        assert!(!ctx.fs.exists("/d/sub/b"));
    }
}
