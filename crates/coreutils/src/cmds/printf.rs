//! `printf` — formatted output (the POSIX subset scripts actually use).

use crate::util::write_stderr;
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `printf format [args...]`.
///
/// Supports `%s`, `%d`/`%i`, `%x`, `%o`, `%c`, `%%`, field width/zero-pad
/// (`%5d`, `%-8s`, `%05d`), and the escapes `\n \t \r \\ \0`. The format
/// is reused until all arguments are consumed, per POSIX.
pub fn run(args: &[String], io: &mut UtilIo<'_>, _ctx: &UtilCtx) -> io::Result<i32> {
    let Some(format) = args.first() else {
        write_stderr(io, "printf: missing format\n")?;
        return Ok(2);
    };
    let mut operands = args[1..].iter();
    let mut out = String::new();
    let mut status = 0;
    loop {
        let mut consumed = false;
        let mut chars = format.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('\\') => out.push('\\'),
                    Some('0') => out.push('\0'),
                    Some(other) => {
                        out.push('\\');
                        out.push(other);
                    }
                    None => out.push('\\'),
                },
                '%' => {
                    if chars.peek() == Some(&'%') {
                        chars.next();
                        out.push('%');
                        continue;
                    }
                    // Flags and width.
                    let mut left = false;
                    let mut zero = false;
                    while let Some(&f) = chars.peek() {
                        match f {
                            '-' => {
                                left = true;
                                chars.next();
                            }
                            '0' => {
                                zero = true;
                                chars.next();
                            }
                            _ => break,
                        }
                    }
                    let mut width = 0usize;
                    while let Some(&d) = chars.peek() {
                        if d.is_ascii_digit() {
                            width = width * 10 + d.to_digit(10).unwrap_or(0) as usize;
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let conv = chars.next().unwrap_or('s');
                    let arg = operands.next().map(|s| {
                        consumed = true;
                        s.clone()
                    });
                    let rendered = match conv {
                        's' => arg.unwrap_or_default(),
                        'c' => arg.unwrap_or_default().chars().next().map(String::from).unwrap_or_default(),
                        'd' | 'i' | 'x' | 'o' | 'u' => {
                            let n: i64 = arg
                                .as_deref()
                                .unwrap_or("0")
                                .trim()
                                .parse()
                                .unwrap_or_else(|_| {
                                    status = 1;
                                    0
                                });
                            match conv {
                                'x' => format!("{n:x}"),
                                'o' => format!("{n:o}"),
                                _ => n.to_string(),
                            }
                        }
                        other => {
                            status = 1;
                            format!("%{other}")
                        }
                    };
                    let pad = width.saturating_sub(rendered.chars().count());
                    if left {
                        out.push_str(&rendered);
                        out.extend(std::iter::repeat_n(' ', pad));
                    } else {
                        out.extend(std::iter::repeat_n(if zero { '0' } else { ' ' }, pad));
                        out.push_str(&rendered);
                    }
                }
                other => out.push(other),
            }
        }
        if operands.len() == 0 || !consumed {
            break;
        }
    }
    io.stdout.write_chunk(Bytes::from(out))?;
    Ok(status)
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    fn printf(args: &[&str]) -> String {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        String::from_utf8(run_on_bytes(&ctx, "printf", args, b"").unwrap().1).unwrap()
    }

    #[test]
    fn basic_string_and_escape() {
        assert_eq!(printf(&["%s\\n", "hi"]), "hi\n");
        assert_eq!(printf(&["a\\tb"]), "a\tb");
    }

    #[test]
    fn numeric_conversions() {
        assert_eq!(printf(&["%d", "42"]), "42");
        assert_eq!(printf(&["%x", "255"]), "ff");
        assert_eq!(printf(&["%o", "8"]), "10");
    }

    #[test]
    fn widths() {
        assert_eq!(printf(&["%5d", "42"]), "   42");
        assert_eq!(printf(&["%-5d|", "42"]), "42   |");
        assert_eq!(printf(&["%05d", "42"]), "00042");
    }

    #[test]
    fn percent_literal() {
        assert_eq!(printf(&["100%%"]), "100%");
    }

    #[test]
    fn format_reuse() {
        assert_eq!(printf(&["[%s]", "a", "b"]), "[a][b]");
    }

    #[test]
    fn missing_args_are_empty() {
        assert_eq!(printf(&["%s-%s", "only"]), "only-");
    }
}
