//! `echo` — write arguments to standard output.

use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `echo [-n] args...`. `-n` suppresses the trailing newline;
/// backslash escapes are not interpreted (POSIX XSI escapes vary wildly
/// between shells; dash-style `-n` is the behavior scripts rely on most).
pub fn run(args: &[String], io: &mut UtilIo<'_>, _ctx: &UtilCtx) -> io::Result<i32> {
    let (no_newline, rest) = match args.first().map(|s| s.as_str()) {
        Some("-n") => (true, &args[1..]),
        _ => (false, args),
    };
    let mut out = rest.join(" ");
    if !no_newline {
        out.push('\n');
    }
    io.stdout.write_chunk(Bytes::from(out))?;
    Ok(0)
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    #[test]
    fn joins_with_spaces() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (_, out, _) = run_on_bytes(&ctx, "echo", &["a", "b c"], b"").unwrap();
        assert_eq!(out, b"a b c\n");
    }

    #[test]
    fn dash_n() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (_, out, _) = run_on_bytes(&ctx, "echo", &["-n", "x"], b"").unwrap();
        assert_eq!(out, b"x");
    }

    #[test]
    fn empty() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (_, out, _) = run_on_bytes(&ctx, "echo", &[], b"").unwrap();
        assert_eq!(out, b"\n");
    }
}
