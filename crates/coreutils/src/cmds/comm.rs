//! `comm` — compare two sorted files line by line.
//!
//! Column 1: lines only in file1; column 2: lines only in file2; column 3:
//! common lines. The spell pipeline's `comm -13 $DICT -` keeps only
//! column 2 — words not in the dictionary.

use crate::util::{read_all_input, write_stderr};
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `comm [-123] file1 file2`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let (flags, files) = crate::util::split_flags(args);
    let mut show1 = true;
    let mut show2 = true;
    let mut show3 = true;
    for f in flags {
        for c in f.chars().skip(1) {
            match c {
                '1' => show1 = false,
                '2' => show2 = false,
                '3' => show3 = false,
                other => {
                    write_stderr(io, &format!("comm: unknown option -{other}\n"))?;
                    return Ok(2);
                }
            }
        }
    }
    if files.len() != 2 {
        write_stderr(io, "comm: requires exactly two files\n")?;
        return Ok(2);
    }

    let a_data = read_all_input(&files[0..1], io, ctx)?;
    let b_data = read_all_input(&files[1..2], io, ctx)?;
    let a: Vec<&[u8]> = jash_io::split_lines(&a_data);
    let b: Vec<&[u8]> = jash_io::split_lines(&b_data);

    // Column indentation: col2 is indented by one tab iff col1 shown, col3
    // by one tab per shown earlier column.
    let col2_indent: &[u8] = if show1 { b"\t" } else { b"" };
    let col3_indent: Vec<u8> = {
        let mut v = Vec::new();
        if show1 {
            v.push(b'\t');
        }
        if show2 {
            v.push(b'\t');
        }
        v
    };

    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let ord = match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => x.cmp(y),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => break,
        };
        match ord {
            std::cmp::Ordering::Less => {
                if show1 {
                    out.extend_from_slice(a[i]);
                    out.push(b'\n');
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if show2 {
                    out.extend_from_slice(col2_indent);
                    out.extend_from_slice(b[j]);
                    out.push(b'\n');
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if show3 {
                    out.extend_from_slice(&col3_indent);
                    out.extend_from_slice(a[i]);
                    out.push(b'\n');
                }
                i += 1;
                j += 1;
            }
        }
    }
    io.stdout.write_chunk(Bytes::from(out))?;
    Ok(0)
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    fn setup() -> UtilCtx {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        jash_io::fs::write_file(ctx.fs.as_ref(), "/a", b"apple\nbanana\ncherry\n").unwrap();
        jash_io::fs::write_file(ctx.fs.as_ref(), "/b", b"banana\ndate\n").unwrap();
        ctx
    }

    #[test]
    fn three_columns() {
        let ctx = setup();
        let (st, out, _) = run_on_bytes(&ctx, "comm", &["/a", "/b"], b"").unwrap();
        assert_eq!(st, 0);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "apple\n\t\tbanana\ncherry\n\tdate\n"
        );
    }

    #[test]
    fn suppress_to_spell_style() {
        // `comm -13`: only lines unique to file2.
        let ctx = setup();
        let (_, out, _) = run_on_bytes(&ctx, "comm", &["-13", "/a", "/b"], b"").unwrap();
        assert_eq!(out, b"date\n");
    }

    #[test]
    fn stdin_as_dash() {
        let ctx = setup();
        let (_, out, _) = run_on_bytes(&ctx, "comm", &["-13", "/a", "-"], b"banana\nzebra\n")
            .unwrap();
        assert_eq!(out, b"zebra\n");
    }

    #[test]
    fn wrong_arity_errors() {
        let ctx = setup();
        let (st, _, _) = run_on_bytes(&ctx, "comm", &["/a"], b"").unwrap();
        assert_eq!(st, 2);
    }
}
