//! `head` — output the first lines (or bytes) of input.
//!
//! `head` is the canonical *prefix-only* consumer in the dataflow model:
//! it stops reading once satisfied, which upstream stages observe as a
//! closed pipe.

use crate::util::{for_each_input_line, write_stderr};
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `head [-n N | -c N] [file...]`. Also accepts historical `-N`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let mut lines: u64 = 10;
    let mut bytes_mode: Option<u64> = None;
    let mut files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(rest) = a.strip_prefix("-n") {
            let v = if rest.is_empty() {
                i += 1;
                args.get(i).cloned().unwrap_or_default()
            } else {
                rest.to_string()
            };
            match v.parse() {
                Ok(n) => lines = n,
                Err(_) => {
                    write_stderr(io, &format!("head: invalid line count `{v}`\n"))?;
                    return Ok(2);
                }
            }
        } else if let Some(rest) = a.strip_prefix("-c") {
            let v = if rest.is_empty() {
                i += 1;
                args.get(i).cloned().unwrap_or_default()
            } else {
                rest.to_string()
            };
            match v.parse() {
                Ok(n) => bytes_mode = Some(n),
                Err(_) => {
                    write_stderr(io, &format!("head: invalid byte count `{v}`\n"))?;
                    return Ok(2);
                }
            }
        } else if a.starts_with('-') && a.len() > 1 && a[1..].chars().all(|c| c.is_ascii_digit())
        {
            lines = a[1..].parse().unwrap_or(10);
        } else if a == "--" {
            files.extend(args[i + 1..].iter().cloned());
            break;
        } else {
            files.push(a.clone());
        }
        i += 1;
    }

    if let Some(limit) = bytes_mode {
        let mut remaining = limit;
        if files.is_empty() {
            while remaining > 0 {
                let Some(chunk) = io.stdin.next_chunk()? else {
                    break;
                };
                let take = chunk.len().min(remaining as usize);
                io.stdout.write_chunk(chunk.slice(..take))?;
                remaining -= take as u64;
            }
        } else {
            for f in &files {
                let mut h = ctx.fs.open_read(&ctx.resolve(f))?;
                while remaining > 0 {
                    let Some(chunk) = h.read_chunk(jash_io::DEFAULT_CHUNK)? else {
                        break;
                    };
                    let take = chunk.len().min(remaining as usize);
                    io.stdout.write_chunk(chunk.slice(..take))?;
                    remaining -= take as u64;
                }
            }
        }
        return Ok(0);
    }

    if lines == 0 {
        return Ok(0);
    }
    let mut seen = 0u64;
    for_each_input_line(&files, io, ctx, |out, line| {
        seen += 1;
        let mut owned = line.to_vec();
        if !owned.ends_with(b"\n") {
            owned.push(b'\n');
        }
        out.write_chunk(Bytes::from(owned))?;
        Ok(seen < lines)
    })
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    fn head(args: &[&str], input: &[u8]) -> String {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        String::from_utf8(run_on_bytes(&ctx, "head", args, input).unwrap().1).unwrap()
    }

    #[test]
    fn default_ten() {
        let input: String = (1..=20).map(|i| format!("{i}\n")).collect();
        let out = head(&[], input.as_bytes());
        assert_eq!(out.lines().count(), 10);
        assert!(out.starts_with("1\n"));
    }

    #[test]
    fn n_flag_variants() {
        assert_eq!(head(&["-n", "2"], b"a\nb\nc\n"), "a\nb\n");
        assert_eq!(head(&["-n2"], b"a\nb\nc\n"), "a\nb\n");
        assert_eq!(head(&["-2"], b"a\nb\nc\n"), "a\nb\n");
        // The paper's `head -n1`.
        assert_eq!(head(&["-n1"], b"0100\n0042\n"), "0100\n");
    }

    #[test]
    fn byte_mode() {
        assert_eq!(head(&["-c", "3"], b"abcdef"), "abc");
    }

    #[test]
    fn zero_lines() {
        assert_eq!(head(&["-n", "0"], b"a\n"), "");
    }

    #[test]
    fn fewer_lines_than_requested() {
        assert_eq!(head(&["-n", "5"], b"a\nb\n"), "a\nb\n");
    }
}
