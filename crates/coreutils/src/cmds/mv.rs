//! `mv` — move (copy + remove) files.

use crate::util::write_stderr;
use crate::{UtilCtx, UtilIo};
use std::io;

/// Runs `mv src dst` or `mv src... dir`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let (_, operands) = crate::util::split_flags(args);
    let Some((dst_op, srcs)) = operands.split_last() else {
        write_stderr(io, "mv: missing operand\n")?;
        return Ok(2);
    };
    if srcs.is_empty() {
        write_stderr(io, &format!("mv: missing destination operand after '{dst_op}'\n"))?;
        return Ok(2);
    }
    let dst = ctx.resolve(dst_op);
    let dst_is_dir = ctx.fs.metadata(&dst).map(|m| m.is_dir).unwrap_or(false);
    let mut status = 0;
    for src in srcs {
        let s = ctx.resolve(src);
        let target = if dst_is_dir {
            let base = s.rsplit('/').next().unwrap_or("file");
            format!("{}/{}", dst.trim_end_matches('/'), base)
        } else {
            dst.clone()
        };
        match super::cp::copy_one(ctx, &s, &target).and_then(|()| ctx.fs.remove(&s)) {
            Ok(()) => {}
            Err(e) => {
                write_stderr(io, &format!("mv: {src}: {e}\n"))?;
                status = 1;
            }
        }
    }
    Ok(status)
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    #[test]
    fn moves_file() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        jash_io::fs::write_file(ctx.fs.as_ref(), "/a", b"data").unwrap();
        assert_eq!(run_on_bytes(&ctx, "mv", &["/a", "/b"], b"").unwrap().0, 0);
        assert!(!ctx.fs.exists("/a"));
        assert_eq!(jash_io::fs::read_to_vec(ctx.fs.as_ref(), "/b").unwrap(), b"data");
    }
}
