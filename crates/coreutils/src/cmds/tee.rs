//! `tee` — copy stdin to stdout and to files.

use crate::{UtilCtx, UtilIo};
use std::io;

/// Runs `tee [-a] [file...]`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let (flags, files) = crate::util::split_flags(args);
    let append = flags.iter().any(|f| f.contains('a'));
    let mut handles = Vec::new();
    for f in &files {
        handles.push(ctx.fs.open_write(&ctx.resolve(f), append)?);
    }
    while let Some(chunk) = io.stdin.next_chunk()? {
        for h in &mut handles {
            h.write_all(&chunk)?;
        }
        io.stdout.write_chunk(chunk)?;
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    #[test]
    fn copies_to_stdout_and_file() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (st, out, _) = run_on_bytes(&ctx, "tee", &["/copy"], b"data\n").unwrap();
        assert_eq!(st, 0);
        assert_eq!(out, b"data\n");
        assert_eq!(
            jash_io::fs::read_to_vec(ctx.fs.as_ref(), "/copy").unwrap(),
            b"data\n"
        );
    }

    #[test]
    fn append_mode() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        jash_io::fs::write_file(ctx.fs.as_ref(), "/log", b"old\n").unwrap();
        run_on_bytes(&ctx, "tee", &["-a", "/log"], b"new\n").unwrap();
        assert_eq!(
            jash_io::fs::read_to_vec(ctx.fs.as_ref(), "/log").unwrap(),
            b"old\nnew\n"
        );
    }
}
