//! `seq` — print a sequence of numbers.

use crate::util::write_stderr;
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `seq [first [incr]] last`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, _ctx: &UtilCtx) -> io::Result<i32> {
    let nums: Result<Vec<i64>, _> = args.iter().map(|a| a.parse::<i64>()).collect();
    let Ok(nums) = nums else {
        write_stderr(io, "seq: invalid numeric argument\n")?;
        return Ok(2);
    };
    let (first, incr, last) = match nums.as_slice() {
        [last] => (1, 1, *last),
        [first, last] => (*first, 1, *last),
        [first, incr, last] => (*first, *incr, *last),
        _ => {
            write_stderr(io, "seq: expected 1..3 arguments\n")?;
            return Ok(2);
        }
    };
    if incr == 0 {
        write_stderr(io, "seq: increment must not be zero\n")?;
        return Ok(2);
    }
    let mut buf = String::new();
    let mut x = first;
    while (incr > 0 && x <= last) || (incr < 0 && x >= last) {
        buf.push_str(&x.to_string());
        buf.push('\n');
        if buf.len() > 64 * 1024 {
            io.stdout.write_chunk(Bytes::from(std::mem::take(&mut buf)))?;
        }
        x += incr;
    }
    if !buf.is_empty() {
        io.stdout.write_chunk(Bytes::from(buf))?;
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    fn seq(args: &[&str]) -> String {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        String::from_utf8(run_on_bytes(&ctx, "seq", args, b"").unwrap().1).unwrap()
    }

    #[test]
    fn single_arg() {
        assert_eq!(seq(&["3"]), "1\n2\n3\n");
    }

    #[test]
    fn first_last() {
        assert_eq!(seq(&["4", "6"]), "4\n5\n6\n");
    }

    #[test]
    fn with_increment() {
        assert_eq!(seq(&["1", "2", "7"]), "1\n3\n5\n7\n");
        assert_eq!(seq(&["5", "-2", "1"]), "5\n3\n1\n");
    }

    #[test]
    fn empty_range() {
        assert_eq!(seq(&["5", "3"]), "");
    }

    #[test]
    fn zero_increment_errors() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (st, _, _) = run_on_bytes(&ctx, "seq", &["1", "0", "5"], b"").unwrap();
        assert_eq!(st, 2);
    }
}
