//! `nl` — number lines.

use crate::util::for_each_input_line;
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `nl [-ba] [file...]`. `-ba` (number all lines) is the default
/// here; `-bt` (skip empty lines) is also accepted.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let mut skip_empty = false;
    let mut files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "-ba" {
            skip_empty = false;
        } else if a == "-bt" {
            skip_empty = true;
        } else if a == "-b" {
            i += 1;
            skip_empty = args.get(i).map(|v| v == "t").unwrap_or(false);
        } else {
            files.push(a.clone());
        }
        i += 1;
    }
    let mut n = 0u64;
    for_each_input_line(&files, io, ctx, |out, line| {
        let body = crate::util::chomp(line);
        let mut buf = Vec::with_capacity(body.len() + 10);
        if skip_empty && body.is_empty() {
            buf.extend_from_slice(b"\n");
        } else {
            n += 1;
            buf.extend_from_slice(format!("{n:>6}\t").as_bytes());
            buf.extend_from_slice(body);
            buf.push(b'\n');
        }
        out.write_chunk(Bytes::from(buf))?;
        Ok(true)
    })
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    #[test]
    fn numbers_lines() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (_, out, _) = run_on_bytes(&ctx, "nl", &[], b"a\nb\n").unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "     1\ta\n     2\tb\n");
    }

    #[test]
    fn skip_empty_with_bt() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (_, out, _) = run_on_bytes(&ctx, "nl", &["-bt"], b"a\n\nb\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("1\ta"));
        assert!(text.contains("2\tb"));
    }
}
