//! `ls` — list directory contents (names only; `-1` layout).

use crate::util::write_stderr;
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `ls [-1a] [dir...]`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let (flags, mut dirs) = crate::util::split_flags(args);
    let all = flags.iter().any(|f| f.contains('a'));
    if dirs.is_empty() {
        dirs.push(".".to_string());
    }
    let many = dirs.len() > 1;
    let mut status = 0;
    for (i, d) in dirs.iter().enumerate() {
        let path = ctx.resolve(d);
        match ctx.fs.metadata(&path) {
            Ok(meta) if !meta.is_dir => {
                io.stdout.write_chunk(Bytes::from(format!("{d}\n")))?;
            }
            Ok(_) => {
                if many {
                    if i > 0 {
                        io.stdout.write_chunk(Bytes::from_static(b"\n"))?;
                    }
                    io.stdout.write_chunk(Bytes::from(format!("{d}:\n")))?;
                }
                match ctx.fs.list_dir(&path) {
                    Ok(names) => {
                        let mut out = String::new();
                        for n in names {
                            if !all && n.starts_with('.') {
                                continue;
                            }
                            out.push_str(&n);
                            out.push('\n');
                        }
                        io.stdout.write_chunk(Bytes::from(out))?;
                    }
                    Err(e) => {
                        write_stderr(io, &format!("ls: {d}: {e}\n"))?;
                        status = 1;
                    }
                }
            }
            Err(e) => {
                write_stderr(io, &format!("ls: {d}: {e}\n"))?;
                status = 1;
            }
        }
    }
    Ok(status)
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    fn setup() -> UtilCtx {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        for f in ["/d/b.txt", "/d/a.txt", "/d/.hidden"] {
            jash_io::fs::write_file(ctx.fs.as_ref(), f, b"").unwrap();
        }
        ctx
    }

    #[test]
    fn lists_sorted_without_hidden() {
        let ctx = setup();
        let (st, out, _) = run_on_bytes(&ctx, "ls", &["/d"], b"").unwrap();
        assert_eq!(st, 0);
        assert_eq!(out, b"a.txt\nb.txt\n");
    }

    #[test]
    fn dash_a_shows_hidden() {
        let ctx = setup();
        let (_, out, _) = run_on_bytes(&ctx, "ls", &["-a", "/d"], b"").unwrap();
        assert_eq!(out, b".hidden\na.txt\nb.txt\n");
    }

    #[test]
    fn missing_dir_errors() {
        let ctx = setup();
        let (st, _, err) = run_on_bytes(&ctx, "ls", &["/nope"], b"").unwrap();
        assert_eq!(st, 1);
        assert!(!err.is_empty());
    }

    #[test]
    fn file_operand_echoes_name() {
        let ctx = setup();
        let (_, out, _) = run_on_bytes(&ctx, "ls", &["/d/a.txt"], b"").unwrap();
        assert_eq!(out, b"/d/a.txt\n");
    }
}
