//! `fold` — wrap lines to a fixed width.

use crate::util::{chomp, for_each_input_line};
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `fold [-w width] [file...]` (default width 80).
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let mut width = 80usize;
    let mut files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(rest) = a.strip_prefix("-w") {
            let v = if rest.is_empty() {
                i += 1;
                args.get(i).cloned().unwrap_or_default()
            } else {
                rest.to_string()
            };
            match v.parse() {
                Ok(w) if w > 0 => width = w,
                _ => {
                    crate::util::write_stderr(io, "fold: invalid width\n")?;
                    return Ok(2);
                }
            }
        } else {
            files.push(a.clone());
        }
        i += 1;
    }
    for_each_input_line(&files, io, ctx, |out, line| {
        let body = chomp(line);
        let mut buf = Vec::with_capacity(body.len() + body.len() / width + 2);
        for (i, b) in body.iter().enumerate() {
            if i > 0 && i % width == 0 {
                buf.push(b'\n');
            }
            buf.push(*b);
        }
        buf.push(b'\n');
        out.write_chunk(Bytes::from(buf))?;
        Ok(true)
    })
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    fn fold(args: &[&str], input: &[u8]) -> String {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        String::from_utf8(run_on_bytes(&ctx, "fold", args, input).unwrap().1).unwrap()
    }

    #[test]
    fn wraps_at_width() {
        assert_eq!(fold(&["-w", "3"], b"abcdefgh\n"), "abc\ndef\ngh\n");
        assert_eq!(fold(&["-w3"], b"ab\n"), "ab\n");
    }

    #[test]
    fn exact_multiple() {
        assert_eq!(fold(&["-w", "2"], b"abcd\n"), "ab\ncd\n");
    }
}
