//! `wc` — count lines, words, and bytes.

use crate::util::write_stderr;
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

#[derive(Default, Clone, Copy)]
struct Counts {
    lines: u64,
    words: u64,
    bytes: u64,
}

/// Runs `wc [-lwcm] [file...]`. With multiple files a `total` row is
/// printed, like the real tool.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let (flags, files) = crate::util::split_flags(args);
    let mut show_lines = false;
    let mut show_words = false;
    let mut show_bytes = false;
    for f in flags {
        for c in f.chars().skip(1) {
            match c {
                'l' => show_lines = true,
                'w' => show_words = true,
                'c' | 'm' => show_bytes = true,
                other => {
                    write_stderr(io, &format!("wc: unknown option -{other}\n"))?;
                    return Ok(2);
                }
            }
        }
    }
    if !(show_lines || show_words || show_bytes) {
        show_lines = true;
        show_words = true;
        show_bytes = true;
    }

    let mut total = Counts::default();
    let mut status = 0;

    let report = |io: &mut UtilIo<'_>, c: Counts, name: Option<&str>| -> io::Result<()> {
        let mut cols = Vec::new();
        if show_lines {
            cols.push(c.lines.to_string());
        }
        if show_words {
            cols.push(c.words.to_string());
        }
        if show_bytes {
            cols.push(c.bytes.to_string());
        }
        let mut line = cols
            .iter()
            .map(|c| format!("{c:>7}"))
            .collect::<Vec<_>>()
            .join(" ");
        if cols.len() == 1 {
            line = cols[0].clone();
        }
        if let Some(n) = name {
            line.push(' ');
            line.push_str(n);
        }
        line.push('\n');
        io.stdout.write_chunk(Bytes::from(line))
    };

    if files.is_empty() {
        let mut c = Counts::default();
        let mut in_word = false;
        while let Some(chunk) = io.stdin.next_chunk()? {
            count_chunk(&chunk, &mut c, &mut in_word);
        }
        report(io, c, None)?;
        return Ok(0);
    }

    for f in &files {
        let mut c = Counts::default();
        let mut in_word = false;
        match ctx.fs.open_read(&ctx.resolve(f)) {
            Ok(mut h) => {
                while let Some(chunk) = h.read_chunk(jash_io::DEFAULT_CHUNK)? {
                    count_chunk(&chunk, &mut c, &mut in_word);
                }
                total.lines += c.lines;
                total.words += c.words;
                total.bytes += c.bytes;
                report(io, c, Some(f))?;
            }
            Err(e) => {
                write_stderr(io, &format!("wc: {f}: {e}\n"))?;
                status = 1;
            }
        }
    }
    if files.len() > 1 {
        report(io, total, Some("total"))?;
    }
    Ok(status)
}

fn count_chunk(chunk: &[u8], c: &mut Counts, in_word: &mut bool) {
    c.bytes += chunk.len() as u64;
    for &b in chunk {
        if b == b'\n' {
            c.lines += 1;
        }
        if b.is_ascii_whitespace() {
            *in_word = false;
        } else if !*in_word {
            *in_word = true;
            c.words += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    fn wc(args: &[&str], input: &[u8]) -> String {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        String::from_utf8(run_on_bytes(&ctx, "wc", args, input).unwrap().1).unwrap()
    }

    #[test]
    fn line_count() {
        assert_eq!(wc(&["-l"], b"a\nb\nc\n"), "3\n");
        assert_eq!(wc(&["-l"], b"no newline"), "0\n");
    }

    #[test]
    fn word_count() {
        assert_eq!(wc(&["-w"], b"one two  three\nfour\n"), "4\n");
    }

    #[test]
    fn byte_count() {
        assert_eq!(wc(&["-c"], b"12345"), "5\n");
    }

    #[test]
    fn default_shows_all_three() {
        let out = wc(&[], b"one two\n");
        let nums: Vec<&str> = out.split_whitespace().collect();
        assert_eq!(nums, vec!["1", "2", "8"]);
    }

    #[test]
    fn multiple_files_with_total() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        jash_io::fs::write_file(ctx.fs.as_ref(), "/a", b"x\n").unwrap();
        jash_io::fs::write_file(ctx.fs.as_ref(), "/b", b"y\nz\n").unwrap();
        let (_, out, _) = run_on_bytes(&ctx, "wc", &["-l", "/a", "/b"], b"").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("1 /a"));
        assert!(text.contains("2 /b"));
        assert!(text.contains("3 total"));
    }
}
