//! `paste` — merge corresponding lines of files.

use crate::util::{read_all_input, write_stderr};
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `paste [-d list] [-s] file...`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let mut delims = vec![b'\t'];
    let mut serial = false;
    let mut files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(rest) = a.strip_prefix("-d") {
            let d = if rest.is_empty() {
                i += 1;
                args.get(i).cloned().unwrap_or_default()
            } else {
                rest.to_string()
            };
            delims = if d.is_empty() {
                vec![b'\t']
            } else {
                d.bytes().collect()
            };
        } else if a == "-s" {
            serial = true;
        } else {
            files.push(a.clone());
        }
        i += 1;
    }
    if files.is_empty() {
        write_stderr(io, "paste: missing file operands\n")?;
        return Ok(2);
    }

    let mut columns: Vec<Vec<Vec<u8>>> = Vec::new();
    for f in &files {
        let data = read_all_input(std::slice::from_ref(f), io, ctx)?;
        columns.push(
            jash_io::split_lines(&data)
                .into_iter()
                .map(|l| l.to_vec())
                .collect(),
        );
    }

    let mut out = Vec::new();
    if serial {
        for col in &columns {
            for (i, line) in col.iter().enumerate() {
                if i > 0 {
                    out.push(delims[(i - 1) % delims.len()]);
                }
                out.extend_from_slice(line);
            }
            out.push(b'\n');
        }
    } else {
        let rows = columns.iter().map(|c| c.len()).max().unwrap_or(0);
        for r in 0..rows {
            for (ci, col) in columns.iter().enumerate() {
                if ci > 0 {
                    out.push(delims[(ci - 1) % delims.len()]);
                }
                if let Some(line) = col.get(r) {
                    out.extend_from_slice(line);
                }
            }
            out.push(b'\n');
        }
    }
    io.stdout.write_chunk(Bytes::from(out))?;
    Ok(0)
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    fn setup() -> UtilCtx {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        jash_io::fs::write_file(ctx.fs.as_ref(), "/a", b"1\n2\n3\n").unwrap();
        jash_io::fs::write_file(ctx.fs.as_ref(), "/b", b"x\ny\n").unwrap();
        ctx
    }

    #[test]
    fn parallel_merge() {
        let ctx = setup();
        let (_, out, _) = run_on_bytes(&ctx, "paste", &["/a", "/b"], b"").unwrap();
        assert_eq!(out, b"1\tx\n2\ty\n3\t\n");
    }

    #[test]
    fn custom_delimiter() {
        let ctx = setup();
        let (_, out, _) = run_on_bytes(&ctx, "paste", &["-d", ",", "/a", "/b"], b"").unwrap();
        assert!(out.starts_with(b"1,x\n"));
    }

    #[test]
    fn serial_mode() {
        let ctx = setup();
        let (_, out, _) = run_on_bytes(&ctx, "paste", &["-s", "/a"], b"").unwrap();
        assert_eq!(out, b"1\t2\t3\n");
    }
}
