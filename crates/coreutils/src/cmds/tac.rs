//! `tac` — print lines in reverse order (blocking).

use crate::util::read_all_input;
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `tac [file...]`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let data = read_all_input(args, io, ctx)?;
    let mut out = Vec::with_capacity(data.len());
    for line in jash_io::split_lines(&data).iter().rev() {
        out.extend_from_slice(line);
        out.push(b'\n');
    }
    io.stdout.write_chunk(Bytes::from(out))?;
    Ok(0)
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    #[test]
    fn reverses_line_order() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (_, out, _) = run_on_bytes(&ctx, "tac", &[], b"1\n2\n3\n").unwrap();
        assert_eq!(out, b"3\n2\n1\n");
    }

    #[test]
    fn empty_input() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (_, out, _) = run_on_bytes(&ctx, "tac", &[], b"").unwrap();
        assert!(out.is_empty());
    }
}
