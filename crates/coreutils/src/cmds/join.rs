//! `join` — relational join of two sorted files on a key field.

use crate::util::{read_all_input, write_stderr};
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `join [-t SEP] [-1 F] [-2 F] file1 file2`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let mut sep: Option<u8> = None;
    let mut key1 = 1usize;
    let mut key2 = 1usize;
    let mut files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(rest) = a.strip_prefix("-t") {
            let d = if rest.is_empty() {
                i += 1;
                args.get(i).cloned().unwrap_or_default()
            } else {
                rest.to_string()
            };
            sep = d.bytes().next();
        } else if let Some(rest) = a.strip_prefix("-1") {
            key1 = grab_num(rest, args, &mut i).unwrap_or(1);
        } else if let Some(rest) = a.strip_prefix("-2") {
            key2 = grab_num(rest, args, &mut i).unwrap_or(1);
        } else {
            files.push(a.clone());
        }
        i += 1;
    }
    if files.len() != 2 {
        write_stderr(io, "join: requires exactly two files\n")?;
        return Ok(2);
    }

    let a_data = read_all_input(&files[0..1], io, ctx)?;
    let b_data = read_all_input(&files[1..2], io, ctx)?;
    let a: Vec<Vec<Vec<u8>>> = split_fields(&a_data, sep);
    let b: Vec<Vec<Vec<u8>>> = split_fields(&b_data, sep);

    let out_sep = sep.unwrap_or(b' ');
    let key = |row: &Vec<Vec<u8>>, k: usize| row.get(k - 1).cloned().unwrap_or_default();

    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let ka = key(&a[i], key1);
        let kb = key(&b[j], key2);
        match ka.cmp(&kb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the cross product of equal-key runs.
                // The first range element matches by construction, so the
                // run is never empty — but never panic on data.
                let ai_end = (i..a.len()).take_while(|&x| key(&a[x], key1) == ka).last().unwrap_or(i) + 1;
                let bj_end = (j..b.len()).take_while(|&x| key(&b[x], key2) == kb).last().unwrap_or(j) + 1;
                for row_a in &a[i..ai_end] {
                    for row_b in &b[j..bj_end] {
                        out.extend_from_slice(&ka);
                        for (fi, f) in row_a.iter().enumerate() {
                            if fi + 1 != key1 {
                                out.push(out_sep);
                                out.extend_from_slice(f);
                            }
                        }
                        for (fi, f) in row_b.iter().enumerate() {
                            if fi + 1 != key2 {
                                out.push(out_sep);
                                out.extend_from_slice(f);
                            }
                        }
                        out.push(b'\n');
                    }
                }
                i = ai_end;
                j = bj_end;
            }
        }
    }
    io.stdout.write_chunk(Bytes::from(out))?;
    Ok(0)
}

fn grab_num(rest: &str, args: &[String], i: &mut usize) -> Option<usize> {
    if rest.is_empty() {
        *i += 1;
        args.get(*i)?.parse().ok()
    } else {
        rest.parse().ok()
    }
}

fn split_fields(data: &[u8], sep: Option<u8>) -> Vec<Vec<Vec<u8>>> {
    jash_io::split_lines(data)
        .into_iter()
        .map(|line| match sep {
            Some(s) => line.split(|&b| b == s).map(|f| f.to_vec()).collect(),
            None => line
                .split(|b| b.is_ascii_whitespace())
                .filter(|f| !f.is_empty())
                .map(|f| f.to_vec())
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    #[test]
    fn joins_on_first_field() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        jash_io::fs::write_file(ctx.fs.as_ref(), "/a", b"1 alice\n2 bob\n3 carol\n").unwrap();
        jash_io::fs::write_file(ctx.fs.as_ref(), "/b", b"1 admin\n3 user\n").unwrap();
        let (_, out, _) = run_on_bytes(&ctx, "join", &["/a", "/b"], b"").unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "1 alice admin\n3 carol user\n"
        );
    }

    #[test]
    fn custom_separator() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        jash_io::fs::write_file(ctx.fs.as_ref(), "/a", b"k:va\n").unwrap();
        jash_io::fs::write_file(ctx.fs.as_ref(), "/b", b"k:vb\n").unwrap();
        let (_, out, _) = run_on_bytes(&ctx, "join", &["-t", ":", "/a", "/b"], b"").unwrap();
        assert_eq!(out, b"k:va:vb\n");
    }

    #[test]
    fn duplicate_keys_cross_product() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        jash_io::fs::write_file(ctx.fs.as_ref(), "/a", b"k a1\nk a2\n").unwrap();
        jash_io::fs::write_file(ctx.fs.as_ref(), "/b", b"k b1\n").unwrap();
        let (_, out, _) = run_on_bytes(&ctx, "join", &["/a", "/b"], b"").unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "k a1 b1\nk a2 b1\n");
    }
}
