//! `tr` — translate, squeeze, or delete characters.
//!
//! Supports the invocations the paper's pipelines rely on (`tr A-Z a-z`,
//! `tr -cs A-Za-z '\n'`) plus `-d`: ranges, `[:classes:]`, and the
//! `\n`/`\t`/`\\` escapes.

use crate::util::{split_flags, write_stderr};
use crate::{UtilCtx, UtilIo};
use bytes::BytesMut;
use std::io;

/// Runs `tr [-c] [-d] [-s] SET1 [SET2]`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let _ = ctx;
    let (flags, operands) = split_flags(args);
    let mut complement = false;
    let mut delete = false;
    let mut squeeze = false;
    for f in flags {
        for c in f.chars().skip(1) {
            match c {
                'c' | 'C' => complement = true,
                'd' => delete = true,
                's' => squeeze = true,
                other => {
                    write_stderr(io, &format!("tr: unknown option -{other}\n"))?;
                    return Ok(2);
                }
            }
        }
    }

    let set1 = match operands.first() {
        Some(s) => expand_set(s),
        None => {
            write_stderr(io, "tr: missing operand\n")?;
            return Ok(2);
        }
    };
    let set2 = operands.get(1).map(|s| expand_set(s));

    // Membership table for SET1 (with optional complement).
    let mut member = [false; 256];
    for &b in &set1 {
        member[b as usize] = true;
    }
    if complement {
        for m in member.iter_mut() {
            *m = !*m;
        }
    }

    // Translation table.
    let mut xlate: [u8; 256] = std::array::from_fn(|i| i as u8);
    if let (Some(set2), false) = (&set2, delete) {
        let Some(&last) = set2.last() else {
            write_stderr(io, "tr: SET2 must not be empty\n")?;
            return Ok(2);
        };
        if complement {
            // POSIX: with -c, every complemented byte maps to the last
            // element of SET2 (the common `tr -cs A-Za-z '\n'` case).
            for (i, m) in member.iter().enumerate() {
                if *m {
                    xlate[i] = last;
                }
            }
        } else {
            for (i, &from) in set1.iter().enumerate() {
                // SET2 shorter than SET1 extends with its last element.
                let to = set2.get(i).copied().unwrap_or(last);
                xlate[from as usize] = to;
            }
        }
    }

    let squeeze_set: [bool; 256] = {
        let mut t = [false; 256];
        if squeeze {
            // Squeeze applies to SET2 when translating, else to SET1.
            match (&set2, delete) {
                (Some(s2), false) => {
                    for &b in s2 {
                        t[b as usize] = true;
                    }
                }
                _ => t = member,
            }
        }
        t
    };

    let translating = set2.is_some() && !delete;
    let mut last_out: Option<u8> = None;
    while let Some(chunk) = io.stdin.next_chunk()? {
        let mut out = BytesMut::with_capacity(chunk.len());
        for &b in chunk.iter() {
            let mut ob = b;
            if delete && member[b as usize] {
                continue;
            }
            if translating && member[b as usize] {
                ob = xlate[b as usize];
            } else if translating && !complement {
                // Non-members pass through untouched.
            }
            if squeeze && squeeze_set[ob as usize] && last_out == Some(ob) {
                continue;
            }
            last_out = Some(ob);
            out.extend_from_slice(&[ob]);
        }
        if !out.is_empty() {
            io.stdout.write_chunk(out.freeze())?;
        }
    }
    Ok(0)
}

/// Expands a set operand: escapes, ranges, and `[:class:]` members.
///
/// Public because the specification layer (`jash-spec`) needs the squeeze
/// set to build boundary aggregators.
pub fn expand_set(spec: &str) -> Vec<u8> {
    let bytes = spec.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // [:class:]
        if bytes[i] == b'[' && bytes.get(i + 1) == Some(&b':') {
            if let Some(end) = spec[i + 2..].find(":]") {
                let name = &spec[i + 2..i + 2 + end];
                out.extend(class_bytes(name));
                i += 2 + end + 2;
                continue;
            }
        }
        let c = if bytes[i] == b'\\' && i + 1 < bytes.len() {
            i += 1;
            match bytes[i] {
                b'n' => b'\n',
                b't' => b'\t',
                b'r' => b'\r',
                b'0' => 0,
                b'\\' => b'\\',
                other => other,
            }
        } else {
            bytes[i]
        };
        // Range a-z?
        if bytes.get(i + 1) == Some(&b'-') && i + 2 < bytes.len() {
            let hi = bytes[i + 2];
            if hi >= c {
                out.extend(c..=hi);
                i += 3;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

fn class_bytes(name: &str) -> Vec<u8> {
    match name {
        "upper" => (b'A'..=b'Z').collect(),
        "lower" => (b'a'..=b'z').collect(),
        "digit" => (b'0'..=b'9').collect(),
        "alpha" => (b'A'..=b'Z').chain(b'a'..=b'z').collect(),
        "alnum" => (b'A'..=b'Z').chain(b'a'..=b'z').chain(b'0'..=b'9').collect(),
        "space" => vec![b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c],
        "blank" => vec![b' ', b'\t'],
        "punct" => (b'!'..=b'/')
            .chain(b':'..=b'@')
            .chain(b'['..=b'`')
            .chain(b'{'..=b'~')
            .collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    fn ctx() -> UtilCtx {
        UtilCtx::new(jash_io::mem_fs())
    }

    fn tr(args: &[&str], input: &[u8]) -> Vec<u8> {
        run_on_bytes(&ctx(), "tr", args, input).unwrap().1
    }

    #[test]
    fn upper_to_lower_range() {
        assert_eq!(tr(&["A-Z", "a-z"], b"Hello World"), b"hello world");
    }

    #[test]
    fn classes() {
        assert_eq!(tr(&["[:upper:]", "[:lower:]"], b"ABCdef"), b"abcdef");
    }

    #[test]
    fn delete() {
        assert_eq!(tr(&["-d", "aeiou"], b"programming"), b"prgrmmng");
    }

    #[test]
    fn delete_complement() {
        assert_eq!(tr(&["-cd", "0-9"], b"a1b2c3\n"), b"123");
    }

    #[test]
    fn squeeze() {
        assert_eq!(tr(&["-s", "l"], b"hello llama"), b"helo lama");
    }

    #[test]
    fn squeeze_after_translate() {
        assert_eq!(tr(&["-s", "A-Z", "a-z"], b"HEELLO"), b"helo");
    }

    #[test]
    fn the_spell_transform() {
        // `tr -cs A-Za-z '\n'` — the word splitter from the spell script.
        let out = tr(&["-cs", "A-Za-z", "\n"], b"Hello, world! 42 times");
        assert_eq!(out, b"Hello\nworld\ntimes");
    }

    #[test]
    fn shorter_set2_extends_with_last() {
        assert_eq!(tr(&["abc", "xy"], b"aabbcc"), b"xxyyyy");
    }

    #[test]
    fn escapes_in_sets() {
        assert_eq!(tr(&["\\n", " "], b"a\nb\n"), b"a b ");
    }

    #[test]
    fn missing_operand_errors() {
        let (st, _, err) = run_on_bytes(&ctx(), "tr", &[], b"").unwrap();
        assert_eq!(st, 2);
        assert!(!err.is_empty());
    }
}
