//! `rev` — reverse the characters of each line.

use crate::util::{chomp, for_each_input_line};
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `rev [file...]`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    for_each_input_line(args, io, ctx, |out, line| {
        let had_nl = line.ends_with(b"\n");
        let body = chomp(line);
        let mut rev: Vec<u8> = String::from_utf8_lossy(body)
            .chars()
            .rev()
            .collect::<String>()
            .into_bytes();
        if had_nl {
            rev.push(b'\n');
        }
        out.write_chunk(Bytes::from(rev))?;
        Ok(true)
    })
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    #[test]
    fn reverses_each_line() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (st, out, _) = run_on_bytes(&ctx, "rev", &[], b"abc\nde\n").unwrap();
        assert_eq!(st, 0);
        assert_eq!(out, b"cba\ned\n");
    }

    #[test]
    fn preserves_missing_trailing_newline() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (_, out, _) = run_on_bytes(&ctx, "rev", &[], b"xy").unwrap();
        assert_eq!(out, b"yx");
    }
}
