//! `cp` — copy files.

use crate::util::write_stderr;
use crate::{UtilCtx, UtilIo};
use std::io;

/// Runs `cp src dst` or `cp src... dir`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let (_, operands) = crate::util::split_flags(args);
    let Some((dst_op, srcs)) = operands.split_last() else {
        write_stderr(io, "cp: missing operand\n")?;
        return Ok(2);
    };
    if srcs.is_empty() {
        write_stderr(io, &format!("cp: missing destination operand after '{dst_op}'\n"))?;
        return Ok(2);
    }
    let dst = ctx.resolve(dst_op);
    let dst_is_dir = ctx.fs.metadata(&dst).map(|m| m.is_dir).unwrap_or(false);
    if srcs.len() > 1 && !dst_is_dir {
        write_stderr(io, &format!("cp: {dst}: not a directory\n"))?;
        return Ok(2);
    }
    let mut status = 0;
    for src in srcs {
        let s = ctx.resolve(src);
        let target = if dst_is_dir {
            let base = s.rsplit('/').next().unwrap_or("file");
            format!("{}/{}", dst.trim_end_matches('/'), base)
        } else {
            dst.clone()
        };
        match copy_one(ctx, &s, &target) {
            Ok(()) => {}
            Err(e) => {
                write_stderr(io, &format!("cp: {src}: {e}\n"))?;
                status = 1;
            }
        }
    }
    Ok(status)
}

pub(crate) fn copy_one(ctx: &UtilCtx, src: &str, dst: &str) -> io::Result<()> {
    let mut r = ctx.fs.open_read(src)?;
    let mut w = ctx.fs.open_write(dst, false)?;
    while let Some(chunk) = r.read_chunk(jash_io::DEFAULT_CHUNK)? {
        w.write_all(&chunk)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    #[test]
    fn copies_contents() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        jash_io::fs::write_file(ctx.fs.as_ref(), "/a", b"data").unwrap();
        assert_eq!(run_on_bytes(&ctx, "cp", &["/a", "/b"], b"").unwrap().0, 0);
        assert_eq!(jash_io::fs::read_to_vec(ctx.fs.as_ref(), "/b").unwrap(), b"data");
    }

    #[test]
    fn copies_into_directory() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        jash_io::fs::write_file(ctx.fs.as_ref(), "/a", b"1").unwrap();
        jash_io::fs::write_file(ctx.fs.as_ref(), "/dir/existing", b"x").unwrap();
        assert_eq!(run_on_bytes(&ctx, "cp", &["/a", "/dir"], b"").unwrap().0, 0);
        assert!(ctx.fs.exists("/dir/a"));
    }

    #[test]
    fn missing_source_errors() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        assert_eq!(run_on_bytes(&ctx, "cp", &["/nope", "/b"], b"").unwrap().0, 1);
    }
}
