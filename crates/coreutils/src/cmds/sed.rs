//! `sed` — stream editor (the widely-used subset).
//!
//! Supported: `-n`; commands `s/re/repl/[g][p]`, `p`, `d`, `q`; optional
//! addresses — line numbers, `$`, and `/re/` — with `addr1,addr2` ranges;
//! `&` and `\1`-free replacement text (backreferences are not supported,
//! which the spec registry reflects by marking such scripts non-offloadable).

use crate::regex::{Flavor, Regex};
use crate::util::{chomp, for_each_input_line, write_stderr};
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

enum Addr {
    Line(u64),
    Last,
    Re(Regex),
}

enum AddrSpec {
    None,
    One(Addr),
    Range(Addr, Addr),
}

enum Cmd {
    Subst {
        re: Regex,
        repl: Vec<u8>,
        global: bool,
        print: bool,
    },
    Print,
    Delete,
    Quit,
}

struct Rule {
    addr: AddrSpec,
    cmd: Cmd,
    /// Range state: currently inside an active addr1,addr2 range.
    active: bool,
}

/// Runs `sed [-n] [-e script]... script [file...]`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let mut quiet = false;
    let mut scripts: Vec<String> = Vec::new();
    let mut files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "-n" {
            quiet = true;
        } else if a == "-e" {
            i += 1;
            match args.get(i) {
                Some(s) => scripts.push(s.clone()),
                None => {
                    write_stderr(io, "sed: -e requires an argument\n")?;
                    return Ok(2);
                }
            }
        } else if a == "--" {
            files.extend(args[i + 1..].iter().cloned());
            break;
        } else if a.starts_with('-') && a.len() > 1 {
            write_stderr(io, &format!("sed: unknown option {a}\n"))?;
            return Ok(2);
        } else if scripts.is_empty() {
            scripts.push(a.clone());
        } else {
            files.push(a.clone());
        }
        i += 1;
    }
    if scripts.is_empty() {
        write_stderr(io, "sed: missing script\n")?;
        return Ok(2);
    }

    let mut rules = Vec::new();
    for script in &scripts {
        for part in split_script(script) {
            match parse_rule(&part) {
                Ok(r) => rules.push(r),
                Err(e) => {
                    write_stderr(io, &format!("sed: {e}\n"))?;
                    return Ok(2);
                }
            }
        }
    }

    // Two passes are needed to know the last line for `$`; if any rule uses
    // `$`, buffer the input. Otherwise stream.
    let uses_last = rules.iter().any(|r| {
        matches!(&r.addr, AddrSpec::One(Addr::Last))
            || matches!(&r.addr, AddrSpec::Range(a, b)
                if matches!(a, Addr::Last) || matches!(b, Addr::Last))
    });

    let mut lineno = 0u64;
    let mut quitting = false;
    if uses_last {
        let data = crate::util::read_all_input(&files, io, ctx)?;
        let all: Vec<&[u8]> = jash_io::split_lines(&data);
        let n = all.len() as u64;
        for line in &all {
            lineno += 1;
            if !process_line(
                io.stdout,
                &mut rules,
                line,
                lineno,
                lineno == n,
                quiet,
                &mut quitting,
            )? {
                break;
            }
        }
        return Ok(0);
    }

    for_each_input_line(&files, io, ctx, |out, line| {
        lineno += 1;
        let body = chomp(line);
        process_line(out, &mut rules, body, lineno, false, quiet, &mut quitting)
    })?;
    Ok(0)
}

#[allow(clippy::too_many_arguments)]
fn process_line(
    out: &mut dyn jash_io::Sink,
    rules: &mut [Rule],
    line: &[u8],
    lineno: u64,
    is_last: bool,
    quiet: bool,
    quitting: &mut bool,
) -> io::Result<bool> {
    if *quitting {
        return Ok(false);
    }
    let mut pattern_space = line.to_vec();
    let mut deleted = false;
    let mut extra_prints = 0usize;
    for rule in rules.iter_mut() {
        let selected = rule_selects(rule, &pattern_space, lineno, is_last);
        if !selected {
            continue;
        }
        match &rule.cmd {
            Cmd::Delete => {
                deleted = true;
                break;
            }
            Cmd::Print => extra_prints += 1,
            Cmd::Quit => {
                *quitting = true;
                break;
            }
            Cmd::Subst {
                re,
                repl,
                global,
                print,
            } => {
                let (new, changed) = substitute(re, repl, &pattern_space, *global);
                pattern_space = new;
                if changed && *print {
                    extra_prints += 1;
                }
            }
        }
    }
    if !deleted && !quiet {
        let mut buf = pattern_space.clone();
        buf.push(b'\n');
        out.write_chunk(Bytes::from(buf))?;
    }
    for _ in 0..extra_prints {
        let mut buf = pattern_space.clone();
        buf.push(b'\n');
        out.write_chunk(Bytes::from(buf))?;
    }
    Ok(!*quitting)
}

/// Streaming per-line `sed` state for the fused-kernel executor.
///
/// Reuses the exact rule machinery of [`run`] — same parser, same
/// selection, same substitution — but drives one line at a time into a
/// plain buffer instead of a [`jash_io::Sink`]. Only invocations the
/// kernel can reproduce byte-for-byte are accepted: `$` addresses need
/// lookahead (`is_last`) the kernel does not have, and file operands or
/// unknown flags belong to the real implementation.
pub(crate) struct KernelSed {
    rules: Vec<Rule>,
    quiet: bool,
    lineno: u64,
    quitting: bool,
}

/// Builds a [`KernelSed`] for `args`, or `None` if the invocation is
/// outside the kernel-supported subset.
pub(crate) fn kernel_sed(args: &[String]) -> Option<KernelSed> {
    let mut quiet = false;
    let mut scripts: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "-n" {
            quiet = true;
        } else if a == "-e" {
            i += 1;
            scripts.push(args.get(i)?.clone());
        } else if a == "--" {
            // Everything after `--` is a file operand in `run`.
            if args.len() > i + 1 {
                return None;
            }
            break;
        } else if a.starts_with('-') && a.len() > 1 {
            return None;
        } else if scripts.is_empty() {
            scripts.push(a.clone());
        } else {
            return None; // File operand.
        }
        i += 1;
    }
    if scripts.is_empty() {
        return None;
    }
    let mut rules = Vec::new();
    for script in &scripts {
        for part in split_script(script) {
            rules.push(parse_rule(&part).ok()?);
        }
    }
    let uses_last = rules.iter().any(|r| {
        matches!(&r.addr, AddrSpec::One(Addr::Last))
            || matches!(&r.addr, AddrSpec::Range(a, b)
                if matches!(a, Addr::Last) || matches!(b, Addr::Last))
    });
    if uses_last {
        return None;
    }
    Some(KernelSed {
        rules,
        quiet,
        lineno: 0,
        quitting: false,
    })
}

impl KernelSed {
    /// Processes one line body (no trailing newline), appending output to
    /// `out`. Returns `false` once a `q` command fires — mirroring
    /// [`process_line`]'s early-stop contract.
    pub(crate) fn line(&mut self, body: &[u8], out: &mut Vec<u8>) -> bool {
        if self.quitting {
            return false;
        }
        self.lineno += 1;
        let mut pattern_space = body.to_vec();
        let mut deleted = false;
        let mut extra_prints = 0usize;
        for rule in self.rules.iter_mut() {
            if !rule_selects(rule, &pattern_space, self.lineno, false) {
                continue;
            }
            match &rule.cmd {
                Cmd::Delete => {
                    deleted = true;
                    break;
                }
                Cmd::Print => extra_prints += 1,
                Cmd::Quit => {
                    self.quitting = true;
                    break;
                }
                Cmd::Subst {
                    re,
                    repl,
                    global,
                    print,
                } => {
                    let (new, changed) = substitute(re, repl, &pattern_space, *global);
                    pattern_space = new;
                    if changed && *print {
                        extra_prints += 1;
                    }
                }
            }
        }
        if !deleted && !self.quiet {
            out.extend_from_slice(&pattern_space);
            out.push(b'\n');
        }
        for _ in 0..extra_prints {
            out.extend_from_slice(&pattern_space);
            out.push(b'\n');
        }
        !self.quitting
    }
}

fn rule_selects(rule: &mut Rule, line: &[u8], lineno: u64, is_last: bool) -> bool {
    let hit = |a: &Addr| match a {
        Addr::Line(n) => *n == lineno,
        Addr::Last => is_last,
        Addr::Re(re) => re.is_match(line),
    };
    match &rule.addr {
        AddrSpec::None => true,
        AddrSpec::One(a) => hit(a),
        AddrSpec::Range(a, b) => {
            if rule.active {
                if hit(b) {
                    rule.active = false;
                }
                true
            } else if hit(a) {
                rule.active = !hit(b) || matches!(b, Addr::Re(_));
                rule.active = !hit(b);
                true
            } else {
                false
            }
        }
    }
}

fn substitute(re: &Regex, repl: &[u8], line: &[u8], global: bool) -> (Vec<u8>, bool) {
    let mut out = Vec::with_capacity(line.len());
    let mut pos = 0;
    let mut changed = false;
    while pos <= line.len() {
        match re.find_from(line, pos) {
            Some((s, e)) => {
                out.extend_from_slice(&line[pos..s]);
                // `&` inserts the matched text; `\&` a literal ampersand.
                let mut k = 0;
                while k < repl.len() {
                    match repl[k] {
                        b'\\' if k + 1 < repl.len() => {
                            out.push(repl[k + 1]);
                            k += 2;
                        }
                        b'&' => {
                            out.extend_from_slice(&line[s..e]);
                            k += 1;
                        }
                        other => {
                            out.push(other);
                            k += 1;
                        }
                    }
                }
                changed = true;
                if e == s {
                    // Empty match: avoid infinite loop.
                    if s < line.len() {
                        out.push(line[s]);
                    }
                    pos = s + 1;
                } else {
                    pos = e;
                }
                if !global {
                    break;
                }
            }
            None => break,
        }
    }
    if pos < line.len() {
        out.extend_from_slice(&line[pos..]);
    }
    (out, changed)
}

/// Splits a script on `;` (not inside s/// delimiters) and newlines.
fn split_script(script: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut delim: Option<char> = None;
    let mut delim_seen = 0;
    let mut chars = script.chars().peekable();
    while let Some(c) = chars.next() {
        if let Some(d) = delim {
            cur.push(c);
            if c == '\\' {
                if let Some(&n) = chars.peek() {
                    cur.push(n);
                    chars.next();
                }
            } else if c == d {
                delim_seen += 1;
                if delim_seen == 3 {
                    delim = None;
                }
            }
            continue;
        }
        match c {
            's' if cur.trim_end().is_empty() || cur.ends_with(|c: char| c.is_ascii_digit())
                || cur.ends_with('$') || cur.ends_with('/') || cur.ends_with(',') =>
            {
                cur.push(c);
                if let Some(&d) = chars.peek() {
                    if !d.is_ascii_alphanumeric() && d != ';' {
                        delim = Some(d);
                        delim_seen = 1;
                        cur.push(d);
                        chars.next();
                    }
                }
            }
            ';' | '\n' => {
                if !cur.trim().is_empty() {
                    parts.push(cur.trim().to_string());
                }
                cur = String::new();
            }
            other => cur.push(other),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_string());
    }
    parts
}

fn parse_rule(text: &str) -> Result<Rule, String> {
    let (addr, rest) = parse_addr_spec(text)?;
    let rest = rest.trim_start();
    let cmd = match rest.chars().next() {
        Some('s') => parse_subst(rest)?,
        Some('p') => Cmd::Print,
        Some('d') => Cmd::Delete,
        Some('q') => Cmd::Quit,
        other => return Err(format!("unsupported command `{other:?}` in `{text}`")),
    };
    Ok(Rule {
        addr,
        cmd,
        active: false,
    })
}

fn parse_addr_spec(text: &str) -> Result<(AddrSpec, &str), String> {
    let (first, rest) = parse_addr(text)?;
    let Some(first) = first else {
        return Ok((AddrSpec::None, text));
    };
    if let Some(stripped) = rest.strip_prefix(',') {
        let (second, rest2) = parse_addr(stripped)?;
        let second = second.ok_or_else(|| "missing second address".to_string())?;
        return Ok((AddrSpec::Range(first, second), rest2));
    }
    Ok((AddrSpec::One(first), rest))
}

fn parse_addr(text: &str) -> Result<(Option<Addr>, &str), String> {
    let bytes = text.as_bytes();
    match bytes.first() {
        Some(b'$') => Ok((Some(Addr::Last), &text[1..])),
        Some(b'/') => {
            let mut end = 1;
            while end < bytes.len() && bytes[end] != b'/' {
                if bytes[end] == b'\\' {
                    end += 1;
                }
                end += 1;
            }
            if end >= bytes.len() {
                return Err("unterminated address regex".to_string());
            }
            let re = Regex::new(&text[1..end], Flavor::Bre, false)
                .map_err(|e| e.to_string())?;
            Ok((Some(Addr::Re(re)), &text[end + 1..]))
        }
        Some(b) if b.is_ascii_digit() => {
            let mut end = 0;
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            let n: u64 = text[..end].parse().map_err(|_| "bad line number")?;
            Ok((Some(Addr::Line(n)), &text[end..]))
        }
        _ => Ok((None, text)),
    }
}

fn parse_subst(text: &str) -> Result<Cmd, String> {
    let mut chars = text.chars();
    if chars.next() != Some('s') {
        return Err("expected s command".to_string());
    }
    let delim = chars.next().ok_or("missing s delimiter")?;
    let rest: String = chars.collect();
    let mut parts: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut it = rest.chars();
    while let Some(c) = it.next() {
        if c == '\\' {
            if let Some(n) = it.next() {
                if n == delim {
                    cur.push(n);
                } else {
                    cur.push('\\');
                    cur.push(n);
                }
                continue;
            }
        }
        if c == delim {
            parts.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    parts.push(cur);
    if parts.len() < 3 {
        return Err(format!("bad substitution `{text}`"));
    }
    let re = Regex::new(&parts[0], Flavor::Bre, false).map_err(|e| e.to_string())?;
    let repl = parts[1].clone().into_bytes();
    let flags = &parts[2];
    let mut global = false;
    let mut print = false;
    for c in flags.chars() {
        match c {
            'g' => global = true,
            'p' => print = true,
            ' ' => {}
            other => return Err(format!("unsupported s flag `{other}`")),
        }
    }
    Ok(Cmd::Subst {
        re,
        repl,
        global,
        print,
    })
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    fn sed(args: &[&str], input: &[u8]) -> String {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (st, out, err) = run_on_bytes(&ctx, "sed", args, input).unwrap();
        assert!(st == 0, "sed failed: {}", String::from_utf8_lossy(&err));
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn substitute_first() {
        assert_eq!(sed(&["s/a/X/"], b"banana\n"), "bXnana\n");
    }

    #[test]
    fn substitute_global() {
        assert_eq!(sed(&["s/a/X/g"], b"banana\n"), "bXnXnX\n");
    }

    #[test]
    fn ampersand_inserts_match() {
        assert_eq!(sed(&["s/an/[&]/g"], b"banana\n"), "b[an][an]a\n");
    }

    #[test]
    fn alternate_delimiter() {
        assert_eq!(sed(&["s|/usr|/opt|"], b"/usr/bin\n"), "/opt/bin\n");
    }

    #[test]
    fn delete_by_regex_address() {
        assert_eq!(sed(&["/^#/d"], b"#comment\ncode\n"), "code\n");
    }

    #[test]
    fn print_with_n() {
        assert_eq!(sed(&["-n", "/b/p"], b"a\nb\nc\n"), "b\n");
    }

    #[test]
    fn line_number_address() {
        assert_eq!(sed(&["2d"], b"1\n2\n3\n"), "1\n3\n");
        assert_eq!(sed(&["-n", "2p"], b"1\n2\n3\n"), "2\n");
    }

    #[test]
    fn last_line_address() {
        assert_eq!(sed(&["$d"], b"a\nb\nc\n"), "a\nb\n");
    }

    #[test]
    fn range_address() {
        assert_eq!(sed(&["2,3d"], b"1\n2\n3\n4\n"), "1\n4\n");
    }

    #[test]
    fn quit_command() {
        assert_eq!(sed(&["2q"], b"1\n2\n3\n"), "1\n2\n");
    }

    #[test]
    fn multiple_commands_semicolon() {
        assert_eq!(sed(&["s/a/X/;s/b/Y/"], b"ab\n"), "XY\n");
    }

    #[test]
    fn regex_in_subst() {
        assert_eq!(sed(&["s/[0-9][0-9]*/N/g"], b"a12b345c\n"), "aNbNc\n");
    }

    #[test]
    fn bad_script_errors() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (st, _, _) = run_on_bytes(&ctx, "sed", &["y/a/b/"], b"").unwrap();
        assert_eq!(st, 2);
    }
}
