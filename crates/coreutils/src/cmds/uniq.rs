//! `uniq` — filter adjacent duplicate lines.

use crate::util::{chomp, for_each_input_line, split_flags};
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `uniq [-c] [-d] [-u] [file]`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let (flags, files) = split_flags(args);
    let mut count = false;
    let mut only_dup = false;
    let mut only_unique = false;
    for f in flags {
        for c in f.chars().skip(1) {
            match c {
                'c' => count = true,
                'd' => only_dup = true,
                'u' => only_unique = true,
                _ => {
                    crate::util::write_stderr(io, &format!("uniq: unknown option -{c}\n"))?;
                    return Ok(2);
                }
            }
        }
    }

    let mut prev: Option<Vec<u8>> = None;
    let mut run_len = 0usize;
    // Collect output via closure state; flush pending group on change.
    let mut pending: Vec<(Vec<u8>, usize)> = Vec::new();
    let status = for_each_input_line(&files, io, ctx, |out, line| {
        let body = chomp(line).to_vec();
        match &prev {
            Some(p) if *p == body => run_len += 1,
            Some(p) => {
                pending.push((p.clone(), run_len));
                emit(out, &mut pending, count, only_dup, only_unique)?;
                prev = Some(body);
                run_len = 1;
            }
            None => {
                prev = Some(body);
                run_len = 1;
            }
        }
        Ok(true)
    })?;
    if let Some(p) = prev {
        pending.push((p, run_len));
        emit(io.stdout, &mut pending, count, only_dup, only_unique)?;
    }
    Ok(status)
}

fn emit(
    out: &mut dyn jash_io::Sink,
    pending: &mut Vec<(Vec<u8>, usize)>,
    count: bool,
    only_dup: bool,
    only_unique: bool,
) -> io::Result<()> {
    for (line, n) in pending.drain(..) {
        if only_dup && n < 2 {
            continue;
        }
        if only_unique && n > 1 {
            continue;
        }
        let mut buf = Vec::with_capacity(line.len() + 12);
        if count {
            buf.extend_from_slice(format!("{n:>7} ").as_bytes());
        }
        buf.extend_from_slice(&line);
        buf.push(b'\n');
        out.write_chunk(Bytes::from(buf))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    fn uniq(args: &[&str], input: &[u8]) -> String {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        String::from_utf8(run_on_bytes(&ctx, "uniq", args, input).unwrap().1).unwrap()
    }

    #[test]
    fn collapses_adjacent() {
        assert_eq!(uniq(&[], b"a\na\nb\na\n"), "a\nb\na\n");
    }

    #[test]
    fn counts() {
        assert_eq!(uniq(&["-c"], b"a\na\nb\n"), "      2 a\n      1 b\n");
    }

    #[test]
    fn duplicates_only() {
        assert_eq!(uniq(&["-d"], b"a\na\nb\nc\nc\n"), "a\nc\n");
    }

    #[test]
    fn uniques_only() {
        assert_eq!(uniq(&["-u"], b"a\na\nb\nc\nc\n"), "b\n");
    }

    #[test]
    fn empty_input() {
        assert_eq!(uniq(&[], b""), "");
    }

    #[test]
    fn single_line() {
        assert_eq!(uniq(&["-c"], b"only\n"), "      1 only\n");
    }
}
