//! `true`, `false`, `yes`.

use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `true`.
pub fn run_true(_args: &[String], _io: &mut UtilIo<'_>, _ctx: &UtilCtx) -> io::Result<i32> {
    Ok(0)
}

/// Runs `false`.
pub fn run_false(_args: &[String], _io: &mut UtilIo<'_>, _ctx: &UtilCtx) -> io::Result<i32> {
    Ok(1)
}

/// Runs `yes [word]` — bounded here (64 Ki lines) because our pipes cannot
/// signal SIGPIPE to terminate a truly infinite writer in every context.
pub fn run_yes(args: &[String], io: &mut UtilIo<'_>, _ctx: &UtilCtx) -> io::Result<i32> {
    let word = if args.is_empty() {
        "y".to_string()
    } else {
        args.join(" ")
    };
    let line = format!("{word}\n");
    let block: String = line.repeat(1024);
    for _ in 0..64 {
        if io.stdout.write_chunk(Bytes::from(block.clone())).is_err() {
            return Ok(0);
        }
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    #[test]
    fn truth_values() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        assert_eq!(run_on_bytes(&ctx, "true", &[], b"").unwrap().0, 0);
        assert_eq!(run_on_bytes(&ctx, "false", &[], b"").unwrap().0, 1);
    }

    #[test]
    fn yes_emits_lines() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (_, out, _) = run_on_bytes(&ctx, "yes", &["ok"], b"").unwrap();
        assert!(out.starts_with(b"ok\nok\n"));
    }
}
