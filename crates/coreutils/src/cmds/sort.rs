//! `sort` — sort lines of text.
//!
//! Blocking by nature: it must see all input before emitting anything
//! (which is why its dataflow spec is `Blocking` with a merge aggregator —
//! partial sorts merge). Supports the flags the paper's pipelines use:
//! `-r`, `-n`, `-u`, plus `-k FIELD` (single field, space-separated) and
//! `-t SEP`.

use crate::util::{numeric_key, read_all_input, split_flags, write_stderr};
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::cmp::Ordering;
use std::io;

/// Parsed sort options, shared with the merge aggregator in `jash-exec`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SortOptions {
    /// `-r`: reverse.
    pub reverse: bool,
    /// `-n`: numeric comparison.
    pub numeric: bool,
    /// `-u`: unique.
    pub unique: bool,
    /// `-k N`: 1-based key field (0 = whole line).
    pub key_field: usize,
    /// `-t C`: field separator (None = runs of blanks).
    pub separator: Option<u8>,
}

impl SortOptions {
    /// Parses the flags of a `sort` invocation; `None` on unsupported
    /// flags.
    pub fn parse(args: &[String]) -> Option<(SortOptions, Vec<String>)> {
        let mut opts = SortOptions::default();
        let mut operands = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if a == "--" {
                operands.extend(args[i + 1..].iter().cloned());
                break;
            }
            if let Some(rest) = a.strip_prefix("-t") {
                let sep = if rest.is_empty() {
                    i += 1;
                    args.get(i)?.clone()
                } else {
                    rest.to_string()
                };
                opts.separator = sep.bytes().next();
            } else if let Some(rest) = a.strip_prefix("-k") {
                let spec = if rest.is_empty() {
                    i += 1;
                    args.get(i)?.clone()
                } else {
                    rest.to_string()
                };
                // Accept `N` or `N,N`; extract the field number.
                let field: usize = spec.split(',').next()?.split('.').next()?.parse().ok()?;
                opts.key_field = field;
            } else if a.starts_with('-') && a.len() > 1 {
                for c in a.chars().skip(1) {
                    match c {
                        'r' => opts.reverse = true,
                        'n' => opts.numeric = true,
                        'u' => opts.unique = true,
                        'b' => {} // Leading blanks are already skipped in numeric mode.
                        _ => return None,
                    }
                }
            } else {
                operands.push(a.clone());
            }
            i += 1;
        }
        Some((opts, operands))
    }

    /// Compares two lines (without trailing newline) under these options.
    pub fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        let ka = self.key(a);
        let kb = self.key(b);
        let ord = if self.numeric {
            numeric_key(ka)
                .partial_cmp(&numeric_key(kb))
                .unwrap_or(Ordering::Equal)
                .then_with(|| ka.cmp(kb))
        } else {
            ka.cmp(kb)
        };
        if self.reverse {
            ord.reverse()
        } else {
            ord
        }
    }

    fn key<'x>(&self, line: &'x [u8]) -> &'x [u8] {
        if self.key_field == 0 {
            return line;
        }
        let mut field = 1;
        let mut start = 0;
        let mut i = 0;
        while i <= line.len() {
            let at_sep = if i == line.len() {
                true
            } else {
                match self.separator {
                    Some(s) => line[i] == s,
                    None => line[i] == b' ' || line[i] == b'\t',
                }
            };
            if at_sep {
                if field == self.key_field {
                    return &line[start..i];
                }
                field += 1;
                // Runs of blanks collapse when no separator is given.
                if self.separator.is_none() {
                    while i + 1 < line.len() && (line[i + 1] == b' ' || line[i + 1] == b'\t') {
                        i += 1;
                    }
                }
                start = i + 1;
            }
            i += 1;
        }
        &[]
    }
}

/// Runs `sort [-rnub] [-k field] [-t sep] [file...]`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let Some((opts, operands)) = SortOptions::parse(args) else {
        let (flags, _) = split_flags(args);
        write_stderr(io, &format!("sort: unsupported flags {flags:?}\n"))?;
        return Ok(2);
    };
    let data = read_all_input(&operands, io, ctx)?;
    let mut lines: Vec<&[u8]> = jash_io::split_lines(&data);
    lines.sort_by(|a, b| opts.compare(a, b));
    let mut out = Vec::with_capacity(data.len() + lines.len());
    let mut prev: Option<&[u8]> = None;
    for line in lines {
        if opts.unique {
            if let Some(p) = prev {
                if opts.compare(p, line) == Ordering::Equal {
                    continue;
                }
            }
        }
        out.extend_from_slice(line);
        out.push(b'\n');
        prev = Some(line);
    }
    io.stdout.write_chunk(Bytes::from(out))?;
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_on_bytes, UtilCtx};

    fn ctx() -> UtilCtx {
        UtilCtx::new(jash_io::mem_fs())
    }

    fn sort(args: &[&str], input: &[u8]) -> String {
        String::from_utf8(run_on_bytes(&ctx(), "sort", args, input).unwrap().1).unwrap()
    }

    #[test]
    fn lexicographic() {
        assert_eq!(sort(&[], b"b\na\nc\n"), "a\nb\nc\n");
    }

    #[test]
    fn reverse() {
        assert_eq!(sort(&["-r"], b"b\na\nc\n"), "c\nb\na\n");
    }

    #[test]
    fn numeric() {
        assert_eq!(sort(&["-n"], b"10\n9\n-2\n"), "-2\n9\n10\n");
        // Lexicographic would give 10 < 9.
        assert_eq!(sort(&[], b"10\n9\n"), "10\n9\n");
    }

    #[test]
    fn reverse_numeric_like_temperature_pipeline() {
        assert_eq!(sort(&["-rn"], b"0042\n0100\n0007\n"), "0100\n0042\n0007\n");
    }

    #[test]
    fn unique() {
        assert_eq!(sort(&["-u"], b"b\na\nb\na\n"), "a\nb\n");
    }

    #[test]
    fn key_field() {
        let input = b"2 bb\n1 cc\n3 aa\n";
        assert_eq!(sort(&["-k", "2"], input), "3 aa\n2 bb\n1 cc\n");
        assert_eq!(sort(&["-k1", "-n"], input), "1 cc\n2 bb\n3 aa\n");
    }

    #[test]
    fn separator() {
        let input = b"x:2\ny:1\n";
        assert_eq!(sort(&["-t:", "-k2", "-n"], input), "y:1\nx:2\n");
    }

    #[test]
    fn files_and_stdin() {
        let c = ctx();
        jash_io::fs::write_file(c.fs.as_ref(), "/f", b"z\n").unwrap();
        let (_, out, _) = run_on_bytes(&c, "sort", &["/f", "-"], b"a\n").unwrap();
        assert_eq!(out, b"a\nz\n");
    }

    #[test]
    fn missing_final_newline_handled() {
        assert_eq!(sort(&[], b"b\na"), "a\nb\n");
    }

    #[test]
    fn unsupported_flag_errors() {
        let (st, _, _) = run_on_bytes(&ctx(), "sort", &["-Z"], b"").unwrap();
        assert_eq!(st, 2);
    }

    #[test]
    fn options_compare_is_total_on_ties() {
        let opts = SortOptions {
            numeric: true,
            ..Default::default()
        };
        // Equal numeric keys fall back to byte order for stability.
        assert_eq!(opts.compare(b"07", b"7"), Ordering::Less);
    }
}
