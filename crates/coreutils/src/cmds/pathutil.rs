//! `basename` and `dirname`.

use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `basename path [suffix]`.
pub fn basename(args: &[String], io: &mut UtilIo<'_>, _ctx: &UtilCtx) -> io::Result<i32> {
    let path = args.first().cloned().unwrap_or_default();
    let trimmed = path.trim_end_matches('/');
    let mut base = trimmed.rsplit('/').next().unwrap_or("").to_string();
    if base.is_empty() {
        base = "/".to_string();
    }
    if let Some(suffix) = args.get(1) {
        if base.len() > suffix.len() {
            if let Some(stripped) = base.strip_suffix(suffix.as_str()) {
                base = stripped.to_string();
            }
        }
    }
    io.stdout.write_chunk(Bytes::from(format!("{base}\n")))?;
    Ok(0)
}

/// Runs `dirname path`.
pub fn dirname(args: &[String], io: &mut UtilIo<'_>, _ctx: &UtilCtx) -> io::Result<i32> {
    let path = args.first().cloned().unwrap_or_default();
    let trimmed = path.trim_end_matches('/');
    let dir = match trimmed.rfind('/') {
        Some(0) => "/",
        Some(i) => &trimmed[..i],
        None => ".",
    };
    let dir = if dir.is_empty() { "/" } else { dir };
    io.stdout.write_chunk(Bytes::from(format!("{dir}\n")))?;
    Ok(0)
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    fn one(cmd: &str, args: &[&str]) -> String {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        String::from_utf8(run_on_bytes(&ctx, cmd, args, b"").unwrap().1).unwrap()
    }

    #[test]
    fn basenames() {
        assert_eq!(one("basename", &["/usr/bin/tool"]), "tool\n");
        assert_eq!(one("basename", &["/usr/bin/"]), "bin\n");
        assert_eq!(one("basename", &["plain"]), "plain\n");
        assert_eq!(one("basename", &["/"]), "/\n");
        assert_eq!(one("basename", &["x.tar.gz", ".gz"]), "x.tar\n");
    }

    #[test]
    fn dirnames() {
        assert_eq!(one("dirname", &["/usr/bin/tool"]), "/usr/bin\n");
        assert_eq!(one("dirname", &["/usr"]), "/\n");
        assert_eq!(one("dirname", &["plain"]), ".\n");
    }
}
