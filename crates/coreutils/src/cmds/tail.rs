//! `tail` — output the last lines (or bytes) of input.

use crate::util::{read_all_input, write_stderr};
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `tail [-n N | -c N] [file...]`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let mut lines: u64 = 10;
    let mut bytes_mode: Option<u64> = None;
    let mut files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(rest) = a.strip_prefix("-n") {
            let v = if rest.is_empty() {
                i += 1;
                args.get(i).cloned().unwrap_or_default()
            } else {
                rest.to_string()
            };
            let v = v.strip_prefix('+').unwrap_or(&v).to_string();
            match v.parse() {
                Ok(n) => lines = n,
                Err(_) => {
                    write_stderr(io, &format!("tail: invalid line count `{v}`\n"))?;
                    return Ok(2);
                }
            }
        } else if let Some(rest) = a.strip_prefix("-c") {
            let v = if rest.is_empty() {
                i += 1;
                args.get(i).cloned().unwrap_or_default()
            } else {
                rest.to_string()
            };
            match v.parse() {
                Ok(n) => bytes_mode = Some(n),
                Err(_) => {
                    write_stderr(io, &format!("tail: invalid byte count `{v}`\n"))?;
                    return Ok(2);
                }
            }
        } else if a.starts_with('-') && a.len() > 1 && a[1..].chars().all(|c| c.is_ascii_digit())
        {
            lines = a[1..].parse().unwrap_or(10);
        } else if a == "--" {
            files.extend(args[i + 1..].iter().cloned());
            break;
        } else {
            files.push(a.clone());
        }
        i += 1;
    }

    let data = read_all_input(&files, io, ctx)?;
    if let Some(n) = bytes_mode {
        let start = data.len().saturating_sub(n as usize);
        io.stdout.write_chunk(Bytes::from(data[start..].to_vec()))?;
        return Ok(0);
    }
    let all = jash_io::split_lines(&data);
    let start = all.len().saturating_sub(lines as usize);
    let mut out = Vec::new();
    for line in &all[start..] {
        out.extend_from_slice(line);
        out.push(b'\n');
    }
    // Preserve a missing final newline.
    if !data.is_empty() && !data.ends_with(b"\n") {
        out.pop();
    }
    io.stdout.write_chunk(Bytes::from(out))?;
    Ok(0)
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    fn tail(args: &[&str], input: &[u8]) -> String {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        String::from_utf8(run_on_bytes(&ctx, "tail", args, input).unwrap().1).unwrap()
    }

    #[test]
    fn last_n_lines() {
        assert_eq!(tail(&["-n", "2"], b"a\nb\nc\nd\n"), "c\nd\n");
        assert_eq!(tail(&["-2"], b"a\nb\nc\n"), "b\nc\n");
    }

    #[test]
    fn default_ten() {
        let input: String = (1..=20).map(|i| format!("{i}\n")).collect();
        let out = tail(&[], input.as_bytes());
        assert_eq!(out.lines().count(), 10);
        assert!(out.starts_with("11\n"));
    }

    #[test]
    fn byte_mode() {
        assert_eq!(tail(&["-c", "3"], b"abcdef"), "def");
    }

    #[test]
    fn no_trailing_newline_preserved() {
        assert_eq!(tail(&["-n", "1"], b"a\nbc"), "bc");
    }

    #[test]
    fn fewer_lines_than_requested() {
        assert_eq!(tail(&["-n", "9"], b"a\nb\n"), "a\nb\n");
    }
}
