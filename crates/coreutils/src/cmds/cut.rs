//! `cut` — select character columns or delimited fields.

use crate::util::{chomp, for_each_input_line, in_ranges, parse_ranges, write_stderr};
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

enum Mode {
    Chars(Vec<(usize, usize)>),
    Fields {
        ranges: Vec<(usize, usize)>,
        delim: u8,
        suppress_undelimited: bool,
    },
}

/// Runs `cut -c LIST | -b LIST | -f LIST [-d DELIM] [-s] [file...]`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let mut mode: Option<Mode> = None;
    let mut list: Option<String> = None;
    let mut field_mode = false;
    let mut delim = b'\t';
    let mut suppress = false;
    let mut files = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(rest) = a.strip_prefix("-c").or_else(|| a.strip_prefix("-b")) {
            list = Some(if rest.is_empty() {
                i += 1;
                args.get(i).cloned().unwrap_or_default()
            } else {
                rest.to_string()
            });
            field_mode = false;
        } else if let Some(rest) = a.strip_prefix("-f") {
            list = Some(if rest.is_empty() {
                i += 1;
                args.get(i).cloned().unwrap_or_default()
            } else {
                rest.to_string()
            });
            field_mode = true;
        } else if let Some(rest) = a.strip_prefix("-d") {
            let d = if rest.is_empty() {
                i += 1;
                args.get(i).cloned().unwrap_or_default()
            } else {
                rest.to_string()
            };
            delim = d.bytes().next().unwrap_or(b'\t');
        } else if a == "-s" {
            suppress = true;
        } else if a == "--" {
            files.extend(args[i + 1..].iter().cloned());
            break;
        } else if a.starts_with('-') && a.len() > 1 {
            write_stderr(io, &format!("cut: unknown option {a}\n"))?;
            return Ok(2);
        } else {
            files.push(a.clone());
        }
        i += 1;
    }

    if let Some(list) = list {
        match parse_ranges(&list) {
            Some(ranges) if field_mode => {
                mode = Some(Mode::Fields {
                    ranges,
                    delim,
                    suppress_undelimited: suppress,
                });
            }
            Some(ranges) => mode = Some(Mode::Chars(ranges)),
            None => {
                write_stderr(io, "cut: invalid list\n")?;
                return Ok(2);
            }
        }
    }
    let Some(mode) = mode else {
        write_stderr(io, "cut: you must specify a list of characters or fields\n")?;
        return Ok(2);
    };

    for_each_input_line(&files, io, ctx, |out, line| {
        let body = chomp(line);
        let mut buf = Vec::with_capacity(body.len() + 1);
        match &mode {
            Mode::Chars(ranges) => {
                // Character positions (treated as bytes; ASCII data).
                for (idx, &b) in body.iter().enumerate() {
                    if in_ranges(ranges, idx) {
                        buf.push(b);
                    }
                }
            }
            Mode::Fields {
                ranges,
                delim,
                suppress_undelimited,
            } => {
                if !body.contains(delim) {
                    if *suppress_undelimited {
                        return Ok(true);
                    }
                    buf.extend_from_slice(body);
                } else {
                    let mut first = true;
                    for (idx, field) in body.split(|&b| b == *delim).enumerate() {
                        if in_ranges(ranges, idx) {
                            if !first {
                                buf.push(*delim);
                            }
                            first = false;
                            buf.extend_from_slice(field);
                        }
                    }
                }
            }
        }
        buf.push(b'\n');
        out.write_chunk(Bytes::from(buf))?;
        Ok(true)
    })
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    fn cut(args: &[&str], input: &[u8]) -> String {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        String::from_utf8(run_on_bytes(&ctx, "cut", args, input).unwrap().1).unwrap()
    }

    #[test]
    fn char_ranges() {
        assert_eq!(cut(&["-c", "1-3"], b"abcdef\n"), "abc\n");
        assert_eq!(cut(&["-c", "2,4"], b"abcdef\n"), "bd\n");
        assert_eq!(cut(&["-c", "4-"], b"abcdef\n"), "def\n");
    }

    #[test]
    fn temperature_columns() {
        // The paper's `cut -c 89-92` over a fixed-width record.
        let mut line = vec![b'x'; 100];
        line[88..92].copy_from_slice(b"0042");
        line.push(b'\n');
        assert_eq!(cut(&["-c", "89-92"], &line), "0042\n");
    }

    #[test]
    fn short_lines_yield_partial() {
        assert_eq!(cut(&["-c", "1-10"], b"ab\n"), "ab\n");
    }

    #[test]
    fn fields_default_tab() {
        assert_eq!(cut(&["-f", "2"], b"a\tb\tc\n"), "b\n");
    }

    #[test]
    fn fields_custom_delim() {
        assert_eq!(cut(&["-d", ":", "-f", "1,3"], b"a:b:c\n"), "a:c\n");
        assert_eq!(cut(&["-d:", "-f2-"], b"a:b:c\n"), "b:c\n");
    }

    #[test]
    fn undelimited_lines() {
        assert_eq!(cut(&["-d:", "-f2"], b"nodelim\n"), "nodelim\n");
        assert_eq!(cut(&["-d:", "-f2", "-s"], b"nodelim\nyes:x\n"), "x\n");
    }

    #[test]
    fn missing_list_is_error() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (st, _, _) = run_on_bytes(&ctx, "cut", &[], b"").unwrap();
        assert_eq!(st, 2);
    }
}
