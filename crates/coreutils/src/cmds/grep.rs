//! `grep` — search lines by regular expression.

use crate::regex::{Flavor, Regex};
use crate::util::{chomp, for_each_input_line, write_stderr};
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use std::io;

/// Runs `grep [-vcinqEF] [-m N] [-e pattern] pattern [file...]`.
///
/// Exit status: 0 if any line matched, 1 if none, 2 on errors — scripts
/// rely on this (`if grep -q ...`).
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let mut invert = false;
    let mut count_only = false;
    let mut icase = false;
    let mut line_numbers = false;
    let mut quiet = false;
    let mut flavor = Flavor::Bre;
    let mut fixed = false;
    let mut max_count: Option<u64> = None;
    let mut pattern: Option<String> = None;
    let mut files = Vec::new();

    let mut i = 0;
    let mut no_more_flags = false;
    while i < args.len() {
        let a = &args[i];
        if no_more_flags || !a.starts_with('-') || a == "-" {
            if pattern.is_none() {
                pattern = Some(a.clone());
            } else {
                files.push(a.clone());
            }
            i += 1;
            continue;
        }
        if a == "--" {
            no_more_flags = true;
            i += 1;
            continue;
        }
        if a == "-e" {
            i += 1;
            pattern = Some(match args.get(i) {
                Some(p) => p.clone(),
                None => {
                    write_stderr(io, "grep: option -e requires an argument\n")?;
                    return Ok(2);
                }
            });
            i += 1;
            continue;
        }
        if a == "-m" {
            i += 1;
            max_count = args.get(i).and_then(|v| v.parse().ok());
            if max_count.is_none() {
                write_stderr(io, "grep: bad -m argument\n")?;
                return Ok(2);
            }
            i += 1;
            continue;
        }
        for c in a.chars().skip(1) {
            match c {
                'v' => invert = true,
                'c' => count_only = true,
                'i' => icase = true,
                'n' => line_numbers = true,
                'q' => quiet = true,
                'E' => flavor = Flavor::Ere,
                'F' => fixed = true,
                other => {
                    write_stderr(io, &format!("grep: unknown option -{other}\n"))?;
                    return Ok(2);
                }
            }
        }
        i += 1;
    }

    let Some(pattern) = pattern else {
        write_stderr(io, "grep: missing pattern\n")?;
        return Ok(2);
    };
    let re = if fixed {
        Regex::fixed(&pattern, icase)
    } else {
        match Regex::new(&pattern, flavor, icase) {
            Ok(r) => r,
            Err(e) => {
                write_stderr(io, &format!("grep: {e}\n"))?;
                return Ok(2);
            }
        }
    };

    let mut matched = 0u64;
    let mut lineno = 0u64;
    let status = for_each_input_line(&files, io, ctx, |out, line| {
        lineno += 1;
        let body = chomp(line);
        let hit = re.is_match(body) != invert;
        if hit {
            matched += 1;
            if quiet {
                return Ok(false);
            }
            if !count_only {
                let mut buf = Vec::with_capacity(line.len() + 12);
                if line_numbers {
                    buf.extend_from_slice(format!("{lineno}:").as_bytes());
                }
                buf.extend_from_slice(body);
                buf.push(b'\n');
                out.write_chunk(Bytes::from(buf))?;
            }
            if let Some(m) = max_count {
                if matched >= m {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    })?;
    if count_only && !quiet {
        io.stdout
            .write_chunk(Bytes::from(format!("{matched}\n")))?;
    }
    if status != 0 {
        return Ok(2);
    }
    Ok(if matched > 0 { 0 } else { 1 })
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    fn ctx() -> UtilCtx {
        UtilCtx::new(jash_io::mem_fs())
    }

    fn grep(args: &[&str], input: &[u8]) -> (i32, String) {
        let (st, out, _) = run_on_bytes(&ctx(), "grep", args, input).unwrap();
        (st, String::from_utf8(out).unwrap())
    }

    #[test]
    fn basic_match() {
        let (st, out) = grep(&["ell"], b"hello\nworld\nbell\n");
        assert_eq!(st, 0);
        assert_eq!(out, "hello\nbell\n");
    }

    #[test]
    fn no_match_exit_1() {
        let (st, out) = grep(&["zzz"], b"a\nb\n");
        assert_eq!(st, 1);
        assert!(out.is_empty());
    }

    #[test]
    fn invert() {
        let (_, out) = grep(&["-v", "999"], b"0042\n9991\n0100\n");
        assert_eq!(out, "0042\n0100\n");
    }

    #[test]
    fn count() {
        let (st, out) = grep(&["-c", "a"], b"abc\nxyz\nalso\n");
        assert_eq!(st, 0);
        assert_eq!(out, "2\n");
    }

    #[test]
    fn quiet_stops_early() {
        let (st, out) = grep(&["-q", "a"], b"a\nb\n");
        assert_eq!(st, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn line_numbers() {
        let (_, out) = grep(&["-n", "b"], b"a\nb\ncb\n");
        assert_eq!(out, "2:b\n3:cb\n");
    }

    #[test]
    fn case_insensitive() {
        let (_, out) = grep(&["-i", "hello"], b"HELLO\nbye\n");
        assert_eq!(out, "HELLO\n");
    }

    #[test]
    fn ere_alternation() {
        let (_, out) = grep(&["-E", "cat|dog"], b"cat\ncow\ndog\n");
        assert_eq!(out, "cat\ndog\n");
    }

    #[test]
    fn fixed_string() {
        let (_, out) = grep(&["-F", "a.c"], b"a.c\nabc\n");
        assert_eq!(out, "a.c\n");
    }

    #[test]
    fn max_count() {
        let (_, out) = grep(&["-m", "2", "a"], b"a1\na2\na3\n");
        assert_eq!(out, "a1\na2\n");
    }

    #[test]
    fn anchored() {
        let (_, out) = grep(&["^b"], b"abc\nbcd\n");
        assert_eq!(out, "bcd\n");
    }

    #[test]
    fn file_operands() {
        let c = ctx();
        jash_io::fs::write_file(c.fs.as_ref(), "/f", b"match-me\nskip\n").unwrap();
        let (st, out, _) = run_on_bytes(&c, "grep", &["match", "/f"], b"").unwrap();
        assert_eq!(st, 0);
        assert_eq!(out, b"match-me\n");
    }

    #[test]
    fn bad_pattern_exit_2() {
        let (st, _) = grep(&["[unclosed"], b"x\n");
        assert_eq!(st, 2);
    }
}
