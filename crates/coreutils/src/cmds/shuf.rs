//! `shuf` — shuffle input lines.
//!
//! Randomness is seeded deterministically by default so test and benchmark
//! runs are reproducible; pass `--seed N` to choose, or `--seed random`
//! for entropy.

use crate::util::{read_all_input, write_stderr};
use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::io;

/// Runs `shuf [-n N] [--seed S] [file...]`.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let mut seed: u64 = 0x6a61_7368; // "jash"
    let mut limit: Option<usize> = None;
    let mut files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--seed" {
            i += 1;
            match args.get(i).map(|s| s.as_str()) {
                Some("random") => seed = rand::random(),
                Some(v) => match v.parse() {
                    Ok(s) => seed = s,
                    Err(_) => {
                        write_stderr(io, "shuf: bad seed\n")?;
                        return Ok(2);
                    }
                },
                None => {
                    write_stderr(io, "shuf: --seed requires an argument\n")?;
                    return Ok(2);
                }
            }
        } else if let Some(rest) = a.strip_prefix("-n") {
            let v = if rest.is_empty() {
                i += 1;
                args.get(i).cloned().unwrap_or_default()
            } else {
                rest.to_string()
            };
            limit = v.parse().ok();
            if limit.is_none() {
                write_stderr(io, "shuf: invalid -n\n")?;
                return Ok(2);
            }
        } else {
            files.push(a.clone());
        }
        i += 1;
    }

    let data = read_all_input(&files, io, ctx)?;
    let mut lines: Vec<&[u8]> = jash_io::split_lines(&data);
    let mut rng = StdRng::seed_from_u64(seed);
    lines.shuffle(&mut rng);
    if let Some(n) = limit {
        lines.truncate(n);
    }
    let mut out = Vec::with_capacity(data.len() + lines.len());
    for l in lines {
        out.extend_from_slice(l);
        out.push(b'\n');
    }
    io.stdout.write_chunk(Bytes::from(out))?;
    Ok(0)
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    #[test]
    fn permutes_all_lines() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (_, out, _) = run_on_bytes(&ctx, "shuf", &[], b"a\nb\nc\nd\n").unwrap();
        let mut lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        lines.sort();
        assert_eq!(lines, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn deterministic_by_default() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let a = run_on_bytes(&ctx, "shuf", &[], b"1\n2\n3\n4\n5\n").unwrap().1;
        let b = run_on_bytes(&ctx, "shuf", &[], b"1\n2\n3\n4\n5\n").unwrap().1;
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_order() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let input = b"1\n2\n3\n4\n5\n6\n7\n8\n";
        let a = run_on_bytes(&ctx, "shuf", &["--seed", "1"], input).unwrap().1;
        let b = run_on_bytes(&ctx, "shuf", &["--seed", "2"], input).unwrap().1;
        assert_ne!(a, b);
    }

    #[test]
    fn n_limits_output() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (_, out, _) = run_on_bytes(&ctx, "shuf", &["-n", "2"], b"a\nb\nc\n").unwrap();
        assert_eq!(std::str::from_utf8(&out).unwrap().lines().count(), 2);
    }
}
