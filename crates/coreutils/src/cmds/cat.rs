//! `cat` — concatenate files to standard output.

use crate::util::for_each_input_chunk;
use crate::{UtilCtx, UtilIo};
use std::io;

/// Runs `cat [file...]`. `-` reads standard input. The only flag accepted
/// is `-u` (unbuffered), which is a no-op here as every write streams.
pub fn run(args: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<i32> {
    let files: Vec<String> = args.iter().filter(|a| *a != "-u").cloned().collect();
    for_each_input_chunk(&files, io, ctx, |out, chunk| out.write_chunk(chunk))
}

#[cfg(test)]
mod tests {
    use crate::{run_on_bytes, UtilCtx};

    fn ctx() -> UtilCtx {
        UtilCtx::new(jash_io::mem_fs())
    }

    #[test]
    fn cat_stdin() {
        let (st, out, _) = run_on_bytes(&ctx(), "cat", &[], b"hello\n").unwrap();
        assert_eq!(st, 0);
        assert_eq!(out, b"hello\n");
    }

    #[test]
    fn cat_files_in_order() {
        let c = ctx();
        jash_io::fs::write_file(c.fs.as_ref(), "/a", b"AAA\n").unwrap();
        jash_io::fs::write_file(c.fs.as_ref(), "/b", b"BBB\n").unwrap();
        let (st, out, _) = run_on_bytes(&c, "cat", &["/a", "/b"], b"").unwrap();
        assert_eq!(st, 0);
        assert_eq!(out, b"AAA\nBBB\n");
    }

    #[test]
    fn cat_dash_mixes_stdin() {
        let c = ctx();
        jash_io::fs::write_file(c.fs.as_ref(), "/a", b"file\n").unwrap();
        let (st, out, _) = run_on_bytes(&c, "cat", &["/a", "-"], b"stdin\n").unwrap();
        assert_eq!(st, 0);
        assert_eq!(out, b"file\nstdin\n");
    }

    #[test]
    fn cat_missing_file_is_nonzero_but_continues() {
        let c = ctx();
        jash_io::fs::write_file(c.fs.as_ref(), "/a", b"ok\n").unwrap();
        let (st, out, err) = run_on_bytes(&c, "cat", &["/missing", "/a"], b"").unwrap();
        assert_eq!(st, 1);
        assert_eq!(out, b"ok\n");
        assert!(!err.is_empty());
    }
}
