//! Thompson NFA construction and simulation.

use super::parse::Node;

/// A byte matcher on one transition.
#[derive(Debug, Clone)]
enum Matcher {
    Byte(u8),
    Any,
    Class { negated: bool, ranges: Vec<(u8, u8)> },
}

impl Matcher {
    fn matches(&self, b: u8, icase: bool) -> bool {
        let fold = |x: u8| if icase { x.to_ascii_lowercase() } else { x };
        match self {
            Matcher::Byte(m) => fold(*m) == fold(b),
            Matcher::Any => b != b'\n',
            Matcher::Class { negated, ranges } => {
                let hit = ranges.iter().any(|&(lo, hi)| {
                    (lo..=hi).contains(&b)
                        || (icase
                            && ((lo..=hi).contains(&b.to_ascii_lowercase())
                                || (lo..=hi).contains(&b.to_ascii_uppercase())))
                });
                hit != *negated
            }
        }
    }
}

#[derive(Debug, Clone, Default)]
struct State {
    trans: Vec<(Matcher, usize)>,
    eps: Vec<usize>,
}

/// A compiled NFA with a single start and a single accept state.
pub struct Nfa {
    states: Vec<State>,
    start: usize,
    accept: usize,
    icase: bool,
}

impl Nfa {
    /// Compiles a syntax tree.
    pub fn compile(node: &Node, icase: bool) -> Nfa {
        let mut nfa = Nfa {
            states: Vec::new(),
            start: 0,
            accept: 0,
            icase,
        };
        let start = nfa.new_state();
        let (frag_in, frag_out) = nfa.build(node);
        let accept = nfa.new_state();
        nfa.states[start].eps.push(frag_in);
        nfa.states[frag_out].eps.push(accept);
        nfa.start = start;
        nfa.accept = accept;
        nfa
    }

    fn new_state(&mut self) -> usize {
        self.states.push(State::default());
        self.states.len() - 1
    }

    /// Builds a fragment; returns (entry, exit) state indices.
    fn build(&mut self, node: &Node) -> (usize, usize) {
        match node {
            Node::Empty => {
                let s = self.new_state();
                (s, s)
            }
            Node::Char(c) => {
                let a = self.new_state();
                let b = self.new_state();
                self.states[a].trans.push((Matcher::Byte(*c), b));
                (a, b)
            }
            Node::Any => {
                let a = self.new_state();
                let b = self.new_state();
                self.states[a].trans.push((Matcher::Any, b));
                (a, b)
            }
            Node::Class { negated, ranges } => {
                let a = self.new_state();
                let b = self.new_state();
                self.states[a].trans.push((
                    Matcher::Class {
                        negated: *negated,
                        ranges: ranges.clone(),
                    },
                    b,
                ));
                (a, b)
            }
            Node::Concat(seq) => {
                let mut entry = None;
                let mut prev_out = None;
                for n in seq {
                    let (i, o) = self.build(n);
                    if let Some(po) = prev_out {
                        self.states[po as usize].eps.push(i);
                    } else {
                        entry = Some(i);
                    }
                    prev_out = Some(o as u32);
                }
                match (entry, prev_out) {
                    (Some(i), Some(o)) => (i, o as usize),
                    _ => {
                        let s = self.new_state();
                        (s, s)
                    }
                }
            }
            Node::Alt(branches) => {
                let a = self.new_state();
                let b = self.new_state();
                for br in branches {
                    let (i, o) = self.build(br);
                    self.states[a].eps.push(i);
                    self.states[o].eps.push(b);
                }
                (a, b)
            }
            Node::Star(inner) => {
                let a = self.new_state();
                let b = self.new_state();
                let (i, o) = self.build(inner);
                self.states[a].eps.push(i);
                self.states[a].eps.push(b);
                self.states[o].eps.push(i);
                self.states[o].eps.push(b);
                (a, b)
            }
            Node::Plus(inner) => {
                let (i, o) = self.build(inner);
                let b = self.new_state();
                self.states[o].eps.push(i);
                self.states[o].eps.push(b);
                (i, b)
            }
            Node::Opt(inner) => {
                let a = self.new_state();
                let b = self.new_state();
                let (i, o) = self.build(inner);
                self.states[a].eps.push(i);
                self.states[a].eps.push(b);
                self.states[o].eps.push(b);
                (a, b)
            }
            Node::Repeat(inner, m, n) => {
                // Expand bounded repetition structurally.
                let mut seq: Vec<Node> = Vec::new();
                for _ in 0..*m {
                    seq.push((**inner).clone());
                }
                if *n == usize::MAX {
                    seq.push(Node::Star(inner.clone()));
                } else {
                    for _ in *m..*n {
                        seq.push(Node::Opt(inner.clone()));
                    }
                }
                self.build(&Node::Concat(seq))
            }
        }
    }

    fn eps_closure(&self, set: &mut [bool], work: &mut Vec<usize>) {
        while let Some(s) = work.pop() {
            for &t in &self.states[s].eps {
                if !set[t] {
                    set[t] = true;
                    work.push(t);
                }
            }
        }
    }

    /// One-pass unanchored containment test: the start state stays live
    /// at every position (the `.*`-prefix trick), so the whole line is
    /// scanned once regardless of where a match begins.
    pub fn contains_match(&self, line: &[u8]) -> bool {
        let mut cur = vec![false; self.states.len()];
        cur[self.start] = true;
        let mut work = vec![self.start];
        self.eps_closure(&mut cur, &mut work);
        if cur[self.accept] {
            return true;
        }
        let mut next = vec![false; self.states.len()];
        for &b in line {
            next.iter_mut().for_each(|v| *v = false);
            let mut work = Vec::new();
            for (s, &active) in cur.iter().enumerate() {
                if !active {
                    continue;
                }
                for (m, t) in &self.states[s].trans {
                    if m.matches(b, self.icase) && !next[*t] {
                        next[*t] = true;
                        work.push(*t);
                    }
                }
            }
            // A match may begin at the next position.
            if !next[self.start] {
                next[self.start] = true;
                work.push(self.start);
            }
            self.eps_closure(&mut next, &mut work);
            std::mem::swap(&mut cur, &mut next);
            if cur[self.accept] {
                return true;
            }
        }
        false
    }

    /// Longest match length starting exactly at `begin`; `None` if no
    /// match starts there.
    pub fn longest_match(&self, line: &[u8], begin: usize) -> Option<usize> {
        let mut cur = vec![false; self.states.len()];
        cur[self.start] = true;
        let mut work = vec![self.start];
        self.eps_closure(&mut cur, &mut work);

        let mut best = if cur[self.accept] { Some(begin) } else { None };
        let mut next = vec![false; self.states.len()];
        for (i, &b) in line[begin..].iter().enumerate() {
            next.iter_mut().for_each(|v| *v = false);
            let mut work = Vec::new();
            for (s, &active) in cur.iter().enumerate() {
                if !active {
                    continue;
                }
                for (m, t) in &self.states[s].trans {
                    if m.matches(b, self.icase) && !next[*t] {
                        next[*t] = true;
                        work.push(*t);
                    }
                }
            }
            if work.is_empty() {
                return best;
            }
            self.eps_closure(&mut next, &mut work);
            std::mem::swap(&mut cur, &mut next);
            if cur[self.accept] {
                best = Some(begin + i + 1);
            }
        }
        best
    }

    /// Whether some match starting at `begin` consumes the entire line.
    pub fn matches_to_end(&self, line: &[u8], begin: usize) -> bool {
        self.longest_match(line, begin) == Some(line.len())
            || self.any_match_ends_at(line, begin, line.len())
    }

    fn any_match_ends_at(&self, line: &[u8], begin: usize, end: usize) -> bool {
        // The longest match is the only one we track; for end-anchored
        // matching, rerun and check whether the accept state is live when
        // the cursor reaches `end`.
        let mut cur = vec![false; self.states.len()];
        cur[self.start] = true;
        let mut work = vec![self.start];
        self.eps_closure(&mut cur, &mut work);
        for &b in &line[begin..end] {
            let mut next = vec![false; self.states.len()];
            let mut work = Vec::new();
            for (s, &active) in cur.iter().enumerate() {
                if !active {
                    continue;
                }
                for (m, t) in &self.states[s].trans {
                    if m.matches(b, self.icase) && !next[*t] {
                        next[*t] = true;
                        work.push(*t);
                    }
                }
            }
            if work.is_empty() {
                return false;
            }
            self.eps_closure(&mut next, &mut work);
            cur = next;
        }
        cur[self.accept]
    }

    /// Number of states (diagnostics).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::parse::parse_pattern;
    use crate::regex::Flavor;

    fn nfa(p: &str) -> Nfa {
        let (node, ..) = parse_pattern(p, Flavor::Ere).unwrap();
        Nfa::compile(&node, false)
    }

    #[test]
    fn longest_match_lengths() {
        let n = nfa("ab*");
        assert_eq!(n.longest_match(b"abbbx", 0), Some(4));
        assert_eq!(n.longest_match(b"x", 0), None);
        assert_eq!(n.longest_match(b"a", 0), Some(1));
    }

    #[test]
    fn empty_matches_at_position() {
        let n = nfa("x?");
        assert_eq!(n.longest_match(b"y", 0), Some(0));
    }

    #[test]
    fn repeat_expansion() {
        let n = nfa("a{2,3}");
        assert_eq!(n.longest_match(b"aaaa", 0), Some(3));
        assert_eq!(n.longest_match(b"a", 0), None);
    }

    #[test]
    fn state_count_linear() {
        let n = nfa("(a|b)*c{1,4}");
        assert!(n.state_count() < 64);
    }
}
