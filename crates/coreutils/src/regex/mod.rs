//! A from-scratch regular-expression engine for `grep` and `sed`.
//!
//! Supports POSIX BRE (the `grep` default) and ERE (`grep -E`): literals,
//! `.`, `*`, bracket classes with ranges and `[:classes:]`, `^`/`$`
//! anchors, and — in ERE (or via `\+` etc. in BRE) — `+`, `?`, `|`, and
//! grouping. Patterns compile to a Thompson NFA simulated with state sets,
//! so matching is linear in the line length with no exponential
//! backtracking (the property that lets `grep` stream gigabytes).
//!
//! Bytes are matched byte-wise (ASCII semantics); multi-byte UTF-8 text
//! passes through untouched because all metacharacters are ASCII.

mod nfa;
mod parse;

pub use nfa::Nfa;
pub use parse::{parse_pattern, Flavor, Node, RegexError};

/// A compiled regular expression.
pub struct Regex {
    nfa: Nfa,
    anchored_start: bool,
    anchored_end: bool,
    icase: bool,
}

impl Regex {
    /// Compiles `pattern` in the given flavor.
    pub fn new(pattern: &str, flavor: Flavor, icase: bool) -> Result<Regex, RegexError> {
        let (node, anchored_start, anchored_end) = parse_pattern(pattern, flavor)?;
        let nfa = Nfa::compile(&node, icase);
        Ok(Regex {
            nfa,
            anchored_start,
            anchored_end,
            icase,
        })
    }

    /// Compiles a fixed string (`grep -F`).
    pub fn fixed(text: &str, icase: bool) -> Regex {
        let node = Node::Concat(text.bytes().map(Node::Char).collect());
        let nfa = Nfa::compile(&node, icase);
        Regex {
            nfa,
            anchored_start: false,
            anchored_end: false,
            icase,
        }
    }

    /// Whether the line (without trailing newline) contains a match.
    ///
    /// Single pass over the line (no per-position restarts), which is
    /// what lets `grep` stream at disk speed.
    pub fn is_match(&self, line: &[u8]) -> bool {
        if self.anchored_start || self.anchored_end {
            return self.find_from(line, 0).is_some();
        }
        self.nfa.contains_match(line)
    }

    /// Finds the leftmost-longest match at or after `start`.
    ///
    /// Returns byte offsets `(begin, end)`.
    pub fn find_from(&self, line: &[u8], start: usize) -> Option<(usize, usize)> {
        let starts: Box<dyn Iterator<Item = usize>> = if self.anchored_start {
            if start == 0 {
                Box::new(std::iter::once(0))
            } else {
                return None;
            }
        } else {
            Box::new(start..=line.len())
        };
        for begin in starts {
            if let Some(end) = self.nfa.longest_match(line, begin) {
                if self.anchored_end && end != line.len() {
                    // Try to extend: longest_match already returned the
                    // longest, so an end-anchored match fails here unless
                    // some accepted length reaches the end.
                    if self.nfa.matches_to_end(line, begin) {
                        return Some((begin, line.len()));
                    }
                    continue;
                }
                return Some((begin, end));
            }
            if self.anchored_end && self.nfa.matches_to_end(line, begin) {
                return Some((begin, line.len()));
            }
        }
        None
    }

    /// Whether matching ignores ASCII case.
    pub fn ignores_case(&self) -> bool {
        self.icase
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bre(p: &str) -> Regex {
        Regex::new(p, Flavor::Bre, false).unwrap()
    }

    fn ere(p: &str) -> Regex {
        Regex::new(p, Flavor::Ere, false).unwrap()
    }

    #[test]
    fn literal_substring_search() {
        let r = bre("ell");
        assert!(r.is_match(b"hello"));
        assert!(!r.is_match(b"help"));
    }

    #[test]
    fn dot_and_star() {
        assert!(bre("a.c").is_match(b"xabcx"));
        assert!(!bre("a.c").is_match(b"ac"));
        assert!(bre("ab*c").is_match(b"ac"));
        assert!(bre("ab*c").is_match(b"abbbc"));
        assert!(bre(".*").is_match(b""));
    }

    #[test]
    fn anchors() {
        assert!(bre("^abc").is_match(b"abcdef"));
        assert!(!bre("^abc").is_match(b"xabc"));
        assert!(bre("def$").is_match(b"abcdef"));
        assert!(!bre("def$").is_match(b"defabc"));
        assert!(bre("^only$").is_match(b"only"));
        assert!(!bre("^only$").is_match(b"only more"));
        assert!(bre("^$").is_match(b""));
        assert!(!bre("^$").is_match(b"x"));
    }

    #[test]
    fn classes() {
        let r = bre("[0-9][0-9]*");
        assert!(r.is_match(b"abc 42 def"));
        assert!(!r.is_match(b"no digits"));
        assert!(bre("[^a-z]").is_match(b"A"));
        assert!(!bre("[^a-z]").is_match(b"abc"));
        assert!(bre("[[:digit:]]").is_match(b"7"));
        assert!(bre("[[:upper:][:digit:]]").is_match(b"Q"));
    }

    #[test]
    fn ere_operators() {
        assert!(ere("ab+c").is_match(b"abbc"));
        assert!(!ere("ab+c").is_match(b"ac"));
        assert!(ere("ab?c").is_match(b"ac"));
        assert!(ere("ab?c").is_match(b"abc"));
        assert!(ere("cat|dog").is_match(b"hotdog"));
        assert!(ere("(ab)+").is_match(b"ababab"));
        assert!(!ere("^(ab)+$").is_match(b"aba"));
    }

    #[test]
    fn bre_escaped_operators() {
        // In BRE, `\(` groups and `\+` repeats (common extension).
        // `\{0,\}` means zero-or-more, so the empty string matches.
        assert!(bre(r"\(ab\)\{0,\}").is_match(b""));
        assert!(bre(r"a\+").is_match(b"aa"));
        assert!(bre(r"x\|y").is_match(b"y"));
    }

    #[test]
    fn bre_plus_is_literal_unescaped() {
        assert!(bre("a+").is_match(b"a+"));
        assert!(!bre("a+").is_match(b"aa"));
    }

    #[test]
    fn case_insensitive() {
        let r = Regex::new("hello", Flavor::Bre, true).unwrap();
        assert!(r.is_match(b"say HELLO"));
        let r = Regex::new("[a-z]$", Flavor::Bre, true).unwrap();
        assert!(r.is_match(b"X"));
    }

    #[test]
    fn fixed_strings() {
        let r = Regex::fixed("a.c", false);
        assert!(r.is_match(b"xa.cx"));
        assert!(!r.is_match(b"abc"));
    }

    #[test]
    fn find_leftmost_longest() {
        let r = bre("ab*");
        assert_eq!(r.find_from(b"xxabbby", 0), Some((2, 6)));
        // Leftmost wins even when a longer match exists later.
        assert_eq!(r.find_from(b"a abbb", 0), Some((0, 1)));
        // Search can resume past a previous match.
        assert_eq!(r.find_from(b"a abbb", 1), Some((2, 6)));
    }

    #[test]
    fn empty_pattern_matches_everywhere() {
        let r = bre("");
        assert_eq!(r.find_from(b"abc", 0), Some((0, 0)));
    }

    #[test]
    fn invalid_patterns_error() {
        assert!(Regex::new("[abc", Flavor::Bre, false).is_err());
        assert!(Regex::new("(ab", Flavor::Ere, false).is_err());
        assert!(Regex::new("ab)", Flavor::Ere, false).is_err());
        assert!(Regex::new("*ab", Flavor::Ere, false).is_err());
    }

    #[test]
    fn the_temperature_filter() {
        // `grep -v 999` from the paper's §2.1 pipeline.
        let r = bre("999");
        assert!(r.is_match(b"9999"));
        assert!(!r.is_match(b"0042"));
    }

    #[test]
    fn no_exponential_blowup() {
        // (a|a)* style patterns kill backtrackers; NFA simulation is fine.
        let r = ere("(a|a)*b");
        let line = vec![b'a'; 2000];
        let t0 = std::time::Instant::now();
        assert!(!r.is_match(&line));
        assert!(t0.elapsed() < std::time::Duration::from_secs(2));
    }
}
