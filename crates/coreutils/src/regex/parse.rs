//! Pattern parsing for BRE and ERE.

use std::fmt;

/// Which POSIX regex dialect to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Basic regular expressions (`grep`, `sed` default).
    Bre,
    /// Extended regular expressions (`grep -E`).
    Ere,
}

/// Pattern syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError(pub String);

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid regular expression: {}", self.0)
    }
}

impl std::error::Error for RegexError {}

/// Regex syntax tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Matches the empty string.
    Empty,
    /// A literal byte.
    Char(u8),
    /// `.` — any byte except newline.
    Any,
    /// `[...]`.
    Class {
        /// `[^...]`.
        negated: bool,
        /// Accepted byte ranges, inclusive.
        ranges: Vec<(u8, u8)>,
    },
    /// Sequence.
    Concat(Vec<Node>),
    /// Alternation.
    Alt(Vec<Node>),
    /// Zero or more.
    Star(Box<Node>),
    /// One or more.
    Plus(Box<Node>),
    /// Zero or one.
    Opt(Box<Node>),
    /// Bounded repetition `{m,n}` (`n = usize::MAX` for open).
    Repeat(Box<Node>, usize, usize),
}

/// Parses `pattern`, returning the tree plus start/end anchor flags.
pub fn parse_pattern(pattern: &str, flavor: Flavor) -> Result<(Node, bool, bool), RegexError> {
    let bytes = pattern.as_bytes();
    let (anchored_start, rest) = match bytes.first() {
        Some(b'^') => (true, &bytes[1..]),
        _ => (false, bytes),
    };
    let (anchored_end, rest) = match rest.last() {
        // `$` is an anchor only at the very end (both dialects in practice).
        Some(b'$') if !ends_with_escape(rest) => (true, &rest[..rest.len() - 1]),
        _ => (false, rest),
    };
    let mut p = P {
        bytes: rest,
        pos: 0,
        flavor,
    };
    let node = p.alternation()?;
    if p.pos != p.bytes.len() {
        return Err(RegexError(format!(
            "unexpected `{}`",
            p.bytes[p.pos] as char
        )));
    }
    Ok((node, anchored_start, anchored_end))
}

fn ends_with_escape(bytes: &[u8]) -> bool {
    // `...\$` keeps the dollar literal; count trailing backslashes.
    let mut n = 0;
    for &b in bytes[..bytes.len().saturating_sub(1)].iter().rev() {
        if b == b'\\' {
            n += 1;
        } else {
            break;
        }
    }
    n % 2 == 1
}

struct P<'a> {
    bytes: &'a [u8],
    pos: usize,
    flavor: Flavor,
}

impl<'a> P<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    /// `alt ::= concat ('|' concat)*` — `|` spelled `\|` in BRE.
    fn alternation(&mut self) -> Result<Node, RegexError> {
        let mut branches = vec![self.concat()?];
        while self.eat_op(b'|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Node::Alt(branches)
        })
    }

    /// Consumes the operator `op`, spelled bare in ERE and `\op` in BRE.
    fn eat_op(&mut self, op: u8) -> bool {
        match self.flavor {
            Flavor::Ere => {
                if self.peek() == Some(op) {
                    self.pos += 1;
                    true
                } else {
                    false
                }
            }
            Flavor::Bre => {
                if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&op) {
                    self.pos += 2;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn at_group_close(&self) -> bool {
        match self.flavor {
            Flavor::Ere => self.peek() == Some(b')'),
            Flavor::Bre => {
                self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b')')
            }
        }
    }

    fn at_alt(&self) -> bool {
        match self.flavor {
            Flavor::Ere => self.peek() == Some(b'|'),
            Flavor::Bre => {
                self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'|')
            }
        }
    }

    fn concat(&mut self) -> Result<Node, RegexError> {
        let mut seq = Vec::new();
        while self.peek().is_some() && !self.at_group_close() && !self.at_alt() {
            seq.push(self.repeated()?);
        }
        Ok(match seq.len() {
            0 => Node::Empty,
            1 => seq.pop().expect("one node"),
            _ => Node::Concat(seq),
        })
    }

    fn repeated(&mut self) -> Result<Node, RegexError> {
        let atom = self.atom()?;
        let mut node = atom;
        loop {
            if self.peek() == Some(b'*') {
                self.pos += 1;
                node = Node::Star(Box::new(node));
            } else if self.eat_postfix(b'+') {
                node = Node::Plus(Box::new(node));
            } else if self.eat_postfix(b'?') {
                node = Node::Opt(Box::new(node));
            } else if let Some((m, n)) = self.try_interval()? {
                node = Node::Repeat(Box::new(node), m, n);
            } else {
                return Ok(node);
            }
        }
    }

    /// `+`/`?` are bare in ERE; `\+`/`\?` in BRE (a common extension).
    fn eat_postfix(&mut self, op: u8) -> bool {
        self.eat_op(op) && !matches!(self.flavor, Flavor::Ere if false)
    }

    /// `{m,n}` in ERE, `\{m,n\}` in BRE.
    fn try_interval(&mut self) -> Result<Option<(usize, usize)>, RegexError> {
        let save = self.pos;
        let open = match self.flavor {
            Flavor::Ere => self.peek() == Some(b'{') && {
                self.pos += 1;
                true
            },
            Flavor::Bre => self.eat_op(b'{'),
        };
        if !open {
            return Ok(None);
        }
        let read_num = |p: &mut Self| -> Option<usize> {
            let start = p.pos;
            while p.peek().is_some_and(|b| b.is_ascii_digit()) {
                p.pos += 1;
            }
            if p.pos == start {
                return None;
            }
            std::str::from_utf8(&p.bytes[start..p.pos])
                .ok()?
                .parse()
                .ok()
        };
        let Some(m) = read_num(self) else {
            self.pos = save;
            return Ok(None);
        };
        let n = if self.peek() == Some(b',') {
            self.pos += 1;
            match read_num(self) {
                Some(n) => n,
                None => usize::MAX,
            }
        } else {
            m
        };
        let closed = match self.flavor {
            Flavor::Ere => {
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    true
                } else {
                    false
                }
            }
            Flavor::Bre => self.eat_op(b'}'),
        };
        if !closed {
            self.pos = save;
            return Ok(None);
        }
        if n != usize::MAX && n < m || m > 255 {
            return Err(RegexError("bad repetition bounds".to_string()));
        }
        Ok(Some((m, n)))
    }

    fn atom(&mut self) -> Result<Node, RegexError> {
        // Group open?
        let group_open = match self.flavor {
            Flavor::Ere => {
                if self.peek() == Some(b'(') {
                    self.pos += 1;
                    true
                } else {
                    false
                }
            }
            Flavor::Bre => self.eat_op(b'('),
        };
        if group_open {
            let inner = self.alternation()?;
            if !match self.flavor {
                Flavor::Ere => {
                    if self.peek() == Some(b')') {
                        self.pos += 1;
                        true
                    } else {
                        false
                    }
                }
                Flavor::Bre => self.eat_op(b')'),
            } {
                return Err(RegexError("unclosed group".to_string()));
            }
            return Ok(inner);
        }

        match self.bump() {
            None => Err(RegexError("unexpected end of pattern".to_string())),
            Some(b'.') => Ok(Node::Any),
            Some(b'[') => self.bracket(),
            Some(b'\\') => match self.bump() {
                None => Err(RegexError("trailing backslash".to_string())),
                Some(b'n') => Ok(Node::Char(b'\n')),
                Some(b't') => Ok(Node::Char(b'\t')),
                Some(c) => Ok(Node::Char(c)),
            },
            Some(b'*') => Err(RegexError("repetition with nothing to repeat".to_string())),
            Some(c @ (b'+' | b'?' | b'{' | b')')) if self.flavor == Flavor::Ere => {
                if c == b')' {
                    Err(RegexError("unmatched `)`".to_string()))
                } else {
                    Err(RegexError(format!(
                        "repetition `{}` with nothing to repeat",
                        c as char
                    )))
                }
            }
            Some(c) => Ok(Node::Char(c)),
        }
    }

    fn bracket(&mut self) -> Result<Node, RegexError> {
        let negated = if self.peek() == Some(b'^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut ranges: Vec<(u8, u8)> = Vec::new();
        let mut first = true;
        loop {
            match self.peek() {
                None => return Err(RegexError("unclosed bracket expression".to_string())),
                Some(b']') if !first => {
                    self.pos += 1;
                    break;
                }
                Some(b'[') if self.bytes.get(self.pos + 1) == Some(&b':') => {
                    // [:class:]
                    let end = self.bytes[self.pos + 2..]
                        .windows(2)
                        .position(|w| w == b":]")
                        .ok_or_else(|| RegexError("unclosed [: :]".to_string()))?;
                    let name = &self.bytes[self.pos + 2..self.pos + 2 + end];
                    ranges.extend(named_class(name)?);
                    self.pos += 2 + end + 2;
                    first = false;
                }
                Some(lo) => {
                    self.pos += 1;
                    first = false;
                    if self.peek() == Some(b'-')
                        && self.bytes.get(self.pos + 1).is_some_and(|&b| b != b']')
                    {
                        self.pos += 1;
                        let hi = self.bump().expect("checked");
                        if hi < lo {
                            return Err(RegexError("invalid range".to_string()));
                        }
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
            }
        }
        Ok(Node::Class { negated, ranges })
    }
}

fn named_class(name: &[u8]) -> Result<Vec<(u8, u8)>, RegexError> {
    Ok(match name {
        b"alpha" => vec![(b'A', b'Z'), (b'a', b'z')],
        b"digit" => vec![(b'0', b'9')],
        b"alnum" => vec![(b'A', b'Z'), (b'a', b'z'), (b'0', b'9')],
        b"upper" => vec![(b'A', b'Z')],
        b"lower" => vec![(b'a', b'z')],
        b"space" => vec![(b' ', b' '), (b'\t', b'\r')],
        b"blank" => vec![(b' ', b' '), (b'\t', b'\t')],
        b"punct" => vec![(b'!', b'/'), (b':', b'@'), (b'[', b'`'), (b'{', b'~')],
        b"xdigit" => vec![(b'0', b'9'), (b'A', b'F'), (b'a', b'f')],
        b"print" => vec![(b' ', b'~')],
        b"graph" => vec![(b'!', b'~')],
        b"cntrl" => vec![(0, 31), (127, 127)],
        other => {
            return Err(RegexError(format!(
                "unknown character class [:{}:]",
                String::from_utf8_lossy(other)
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let (node, s, e) = parse_pattern("abc", Flavor::Bre).unwrap();
        assert!(!s && !e);
        assert_eq!(
            node,
            Node::Concat(vec![Node::Char(b'a'), Node::Char(b'b'), Node::Char(b'c')])
        );
    }

    #[test]
    fn parse_anchors() {
        let (_, s, e) = parse_pattern("^x$", Flavor::Bre).unwrap();
        assert!(s && e);
        let (node, _, e) = parse_pattern(r"x\$", Flavor::Bre).unwrap();
        assert!(!e);
        assert_eq!(node, Node::Concat(vec![Node::Char(b'x'), Node::Char(b'$')]));
    }

    #[test]
    fn parse_star_and_interval() {
        let (node, ..) = parse_pattern("a*", Flavor::Bre).unwrap();
        assert_eq!(node, Node::Star(Box::new(Node::Char(b'a'))));
        let (node, ..) = parse_pattern("a{2,4}", Flavor::Ere).unwrap();
        assert_eq!(node, Node::Repeat(Box::new(Node::Char(b'a')), 2, 4));
        let (node, ..) = parse_pattern(r"a\{2\}", Flavor::Bre).unwrap();
        assert_eq!(node, Node::Repeat(Box::new(Node::Char(b'a')), 2, 2));
    }

    #[test]
    fn ere_braces_literal_in_bre() {
        // In BRE an unescaped `{` is literal.
        let (node, ..) = parse_pattern("a{2}", Flavor::Bre).unwrap();
        assert!(matches!(node, Node::Concat(_)));
    }

    #[test]
    fn bracket_parsing() {
        let (node, ..) = parse_pattern("[a-c5]", Flavor::Bre).unwrap();
        assert_eq!(
            node,
            Node::Class {
                negated: false,
                ranges: vec![(b'a', b'c'), (b'5', b'5')]
            }
        );
        let (node, ..) = parse_pattern("[]]", Flavor::Bre).unwrap();
        assert_eq!(
            node,
            Node::Class {
                negated: false,
                ranges: vec![(b']', b']')]
            }
        );
    }

    #[test]
    fn errors() {
        assert!(parse_pattern("[", Flavor::Bre).is_err());
        assert!(parse_pattern("(a", Flavor::Ere).is_err());
        assert!(parse_pattern("*x", Flavor::Bre).is_err());
        assert!(parse_pattern("[[:bogus:]]", Flavor::Bre).is_err());
        assert!(parse_pattern("a{4,2}", Flavor::Ere).is_err());
    }
}
