//! In-process streaming implementations of the Unix utilities the paper's
//! pipelines compose.
//!
//! PaSh/POSH/Jash treat commands as black boxes described by
//! *specifications* (see `jash-spec`); what the reproduction needs from the
//! utilities themselves is (a) faithful semantics for the pipelines under
//! study and (b) realistic streaming behavior — bounded memory, CPU cost
//! proportional to bytes, order-preserving line processing. Implementing
//! them in-process over `jash-io` streams keeps the executor portable and
//! lets the simulated disk meter every byte.
//!
//! Each utility is a function `fn(args, &mut UtilIo, &UtilCtx) -> io::Result<i32>`
//! registered in [`lookup`]. File arguments resolve against `UtilCtx::cwd`
//! on `UtilCtx::fs`; the conventional `-` means standard input.

pub mod cmds;
pub mod kernel;
pub mod regex;
pub mod util;

use jash_io::{ByteStream, FsHandle, Sink};
use std::io;

/// Execution context for one utility invocation.
pub struct UtilCtx {
    /// Filesystem for path arguments.
    pub fs: FsHandle,
    /// Directory relative paths resolve against.
    pub cwd: String,
}

impl UtilCtx {
    /// Creates a context rooted at `/`.
    pub fn new(fs: FsHandle) -> Self {
        UtilCtx {
            fs,
            cwd: "/".to_string(),
        }
    }

    /// Resolves a path argument.
    pub fn resolve(&self, path: &str) -> String {
        jash_io::fs::normalize(&self.cwd, path)
    }
}

/// The stdio triple handed to a utility.
pub struct UtilIo<'a> {
    /// Standard input.
    pub stdin: &'a mut dyn ByteStream,
    /// Standard output.
    pub stdout: &'a mut dyn Sink,
    /// Standard error (diagnostics only; never closed by utilities).
    pub stderr: &'a mut dyn Sink,
}

/// The type every utility implements.
pub type UtilityFn = fn(&[String], &mut UtilIo<'_>, &UtilCtx) -> io::Result<i32>;

/// Looks up a utility implementation by command name.
pub fn lookup(name: &str) -> Option<UtilityFn> {
    Some(match name {
        "cat" => cmds::cat::run,
        "tr" => cmds::tr::run,
        "sort" => cmds::sort::run,
        "uniq" => cmds::uniq::run,
        "grep" => cmds::grep::run,
        "cut" => cmds::cut::run,
        "head" => cmds::head::run,
        "tail" => cmds::tail::run,
        "wc" => cmds::wc::run,
        "comm" => cmds::comm::run,
        "sed" => cmds::sed::run,
        "seq" => cmds::seq::run,
        "tee" => cmds::tee::run,
        "rev" => cmds::rev::run,
        "paste" => cmds::paste::run,
        "join" => cmds::join::run,
        "shuf" => cmds::shuf::run,
        "fold" => cmds::fold::run,
        "nl" => cmds::nl::run,
        "tac" => cmds::tac::run,
        "echo" => cmds::echo::run,
        "printf" => cmds::printf::run,
        "true" => cmds::trivial::run_true,
        "false" => cmds::trivial::run_false,
        "yes" => cmds::trivial::run_yes,
        "basename" => cmds::pathutil::basename,
        "dirname" => cmds::pathutil::dirname,
        "ls" => cmds::ls::run,
        "mkfifo" => cmds::trivial::run_true,
        "rm" => cmds::rm::run,
        "cp" => cmds::cp::run,
        "mv" => cmds::mv::run,
        _ => return None,
    })
}

/// Whether `name` is a known utility.
pub fn is_utility(name: &str) -> bool {
    lookup(name).is_some()
}

/// Runs a utility by name.
pub fn run_utility(
    name: &str,
    args: &[String],
    io: &mut UtilIo<'_>,
    ctx: &UtilCtx,
) -> io::Result<i32> {
    match lookup(name) {
        Some(f) => f(args, io, ctx),
        None => {
            util::write_stderr(io, &format!("{name}: command not found\n"))?;
            Ok(127)
        }
    }
}

/// Convenience for tests and examples: runs a utility over in-memory data
/// and returns `(status, stdout, stderr)`.
pub fn run_on_bytes(
    ctx: &UtilCtx,
    name: &str,
    args: &[&str],
    input: &[u8],
) -> io::Result<(i32, Vec<u8>, Vec<u8>)> {
    let mut stdin = jash_io::MemStream::from_bytes(input.to_vec());
    let mut stdout = jash_io::VecSink::new();
    let mut stderr = jash_io::VecSink::new();
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let status = {
        let mut io = UtilIo {
            stdin: &mut stdin,
            stdout: &mut stdout,
            stderr: &mut stderr,
        };
        run_utility(name, &args, &mut io, ctx)?
    };
    Ok((status, stdout.data, stderr.data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_known_and_unknown() {
        assert!(is_utility("sort"));
        assert!(is_utility("tr"));
        assert!(!is_utility("no-such-thing"));
    }

    #[test]
    fn unknown_command_is_127() {
        let ctx = UtilCtx::new(jash_io::mem_fs());
        let (st, _, err) = run_on_bytes(&ctx, "frobnicate", &[], b"").unwrap();
        assert_eq!(st, 127);
        assert!(String::from_utf8_lossy(&err).contains("not found"));
    }
}
