//! Shared helpers for utility implementations.

use crate::{UtilCtx, UtilIo};
use bytes::Bytes;
use jash_io::fs::FileStream;
use jash_io::{ByteStream, LineBuffer, Sink};
use std::io;

/// Writes a diagnostic to stderr.
pub fn write_stderr(io: &mut UtilIo<'_>, msg: &str) -> io::Result<()> {
    io.stderr.write_chunk(Bytes::copy_from_slice(msg.as_bytes()))
}

/// Writes text to stdout.
pub fn write_stdout(io: &mut UtilIo<'_>, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    io.stdout.write_chunk(Bytes::copy_from_slice(data))
}

/// The input source for a utility: the file operands, or stdin.
pub enum Input<'a> {
    /// Read from the provided stdin stream.
    Stdin(&'a mut dyn ByteStream),
    /// Read the named files in order (with `-` mapping to stdin, which may
    /// be consumed at most once).
    Files(Vec<String>),
}

/// Iterates every input chunk from `files` (or stdin when empty),
/// resolving paths against the context.
pub fn for_each_input_chunk(
    files: &[String],
    io: &mut UtilIo<'_>,
    ctx: &UtilCtx,
    mut f: impl FnMut(&mut dyn Sink, Bytes) -> io::Result<()>,
) -> io::Result<i32> {
    if files.is_empty() {
        while let Some(chunk) = io.stdin.next_chunk()? {
            f(io.stdout, chunk)?;
        }
        return Ok(0);
    }
    let mut status = 0;
    for file in files {
        if file == "-" {
            while let Some(chunk) = io.stdin.next_chunk()? {
                f(io.stdout, chunk)?;
            }
            continue;
        }
        match FileStream::open(ctx.fs.as_ref(), &ctx.resolve(file)) {
            Ok(mut s) => {
                while let Some(chunk) = s.next_chunk()? {
                    f(io.stdout, chunk)?;
                }
            }
            Err(e) => {
                write_stderr(io, &format!("{file}: {e}\n"))?;
                status = 1;
            }
        }
    }
    Ok(status)
}

/// Calls `f` for every input line (newline included except possibly on the
/// final line). Reads the file operands, or stdin when none are given.
/// Returns nonzero if any file failed to open.
pub fn for_each_input_line(
    files: &[String],
    io: &mut UtilIo<'_>,
    ctx: &UtilCtx,
    mut f: impl FnMut(&mut dyn Sink, &[u8]) -> io::Result<bool>,
) -> io::Result<i32> {
    let mut lb = LineBuffer::new();
    let mut status = 0;
    let mut done = false;

    let mut feed = |lb: &mut LineBuffer,
                    stdout: &mut dyn Sink,
                    chunk: Bytes,
                    done: &mut bool|
     -> io::Result<()> {
        if *done {
            return Ok(());
        }
        lb.push(&chunk);
        while let Some(line) = lb.next_line() {
            if !f(stdout, &line)? {
                *done = true;
                return Ok(());
            }
        }
        lb.mark_scanned();
        Ok(())
    };

    if files.is_empty() {
        while let Some(chunk) = io.stdin.next_chunk()? {
            feed(&mut lb, io.stdout, chunk, &mut done)?;
            if done {
                break;
            }
        }
    } else {
        'outer: for file in files {
            if file == "-" {
                while let Some(chunk) = io.stdin.next_chunk()? {
                    feed(&mut lb, io.stdout, chunk, &mut done)?;
                    if done {
                        break 'outer;
                    }
                }
                continue;
            }
            match FileStream::open(ctx.fs.as_ref(), &ctx.resolve(file)) {
                Ok(mut s) => {
                    while let Some(chunk) = s.next_chunk()? {
                        feed(&mut lb, io.stdout, chunk, &mut done)?;
                        if done {
                            break 'outer;
                        }
                    }
                }
                Err(e) => {
                    write_stderr(io, &format!("{file}: {e}\n"))?;
                    status = 1;
                }
            }
        }
    }
    if !done {
        if let Some(rest) = lb.take_rest() {
            f(io.stdout, &rest)?;
        }
    }
    Ok(status)
}

/// Reads all input (files or stdin) into one buffer. Used by utilities
/// that are inherently blocking (`sort`, `tac`, `shuf`).
pub fn read_all_input(files: &[String], io: &mut UtilIo<'_>, ctx: &UtilCtx) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    if files.is_empty() {
        while let Some(chunk) = io.stdin.next_chunk()? {
            out.extend_from_slice(&chunk);
        }
        return Ok(out);
    }
    for file in files {
        if file == "-" {
            while let Some(chunk) = io.stdin.next_chunk()? {
                out.extend_from_slice(&chunk);
            }
        } else {
            let mut h = ctx.fs.open_read(&ctx.resolve(file))?;
            while let Some(chunk) = h.read_chunk(jash_io::DEFAULT_CHUNK)? {
                out.extend_from_slice(&chunk);
            }
        }
    }
    Ok(out)
}

/// Strips one trailing newline, if present.
pub fn chomp(line: &[u8]) -> &[u8] {
    match line.last() {
        Some(b'\n') => &line[..line.len() - 1],
        _ => line,
    }
}

/// Splits `args` into `(flags..., operands...)` where flag parsing stops at
/// the first non-flag or `--`.
pub fn split_flags(args: &[String]) -> (Vec<&str>, Vec<String>) {
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--" {
            i += 1;
            break;
        }
        if a.starts_with('-') && a.len() > 1 {
            flags.push(a.as_str());
            i += 1;
        } else {
            break;
        }
    }
    (flags, args[i..].to_vec())
}

/// GNU-style numeric comparison for `sort -n`: leading blanks, optional
/// sign, digits, optional fraction. Non-numbers compare as 0.
pub fn numeric_key(line: &[u8]) -> f64 {
    let s = String::from_utf8_lossy(line);
    let t = s.trim_start();
    let mut end = 0;
    let bytes = t.as_bytes();
    if end < bytes.len() && (bytes[end] == b'-' || bytes[end] == b'+') {
        end += 1;
    }
    let mut seen_dot = false;
    while end < bytes.len()
        && (bytes[end].is_ascii_digit() || (bytes[end] == b'.' && !seen_dot))
    {
        if bytes[end] == b'.' {
            seen_dot = true;
        }
        end += 1;
    }
    t[..end].parse::<f64>().unwrap_or(0.0)
}

/// Parses a ranged list like `1,3-5,7-` (used by `cut`).
/// Returns half-open `(start, end)` pairs, 0-based; `usize::MAX` = open end.
pub fn parse_ranges(list: &str) -> Option<Vec<(usize, usize)>> {
    let mut out = Vec::new();
    for part in list.split(',') {
        if part.is_empty() {
            return None;
        }
        if let Some((a, b)) = part.split_once('-') {
            let start = if a.is_empty() {
                1
            } else {
                a.parse::<usize>().ok()?
            };
            let end = if b.is_empty() {
                usize::MAX
            } else {
                b.parse::<usize>().ok()?
            };
            if start == 0 || (end != usize::MAX && end < start) {
                return None;
            }
            out.push((start - 1, end));
        } else {
            let n = part.parse::<usize>().ok()?;
            if n == 0 {
                return None;
            }
            out.push((n - 1, n));
        }
    }
    Some(out)
}

/// Whether the (0-based) index is inside any range.
pub fn in_ranges(ranges: &[(usize, usize)], idx: usize) -> bool {
    ranges.iter().any(|&(s, e)| idx >= s && idx < e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chomp_strips_newline() {
        assert_eq!(chomp(b"abc\n"), b"abc");
        assert_eq!(chomp(b"abc"), b"abc");
        assert_eq!(chomp(b"\n"), b"");
    }

    #[test]
    fn split_flags_stops_at_operand() {
        let args: Vec<String> = ["-a", "-b", "file", "-c"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (flags, ops) = split_flags(&args);
        assert_eq!(flags, vec!["-a", "-b"]);
        assert_eq!(ops, vec!["file", "-c"]);
    }

    #[test]
    fn split_flags_double_dash() {
        let args: Vec<String> = ["-x", "--", "-notaflag"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (flags, ops) = split_flags(&args);
        assert_eq!(flags, vec!["-x"]);
        assert_eq!(ops, vec!["-notaflag"]);
    }

    #[test]
    fn numeric_keys() {
        assert_eq!(numeric_key(b"42"), 42.0);
        assert_eq!(numeric_key(b"  -3.5xyz"), -3.5);
        assert_eq!(numeric_key(b"abc"), 0.0);
        assert_eq!(numeric_key(b"+7"), 7.0);
    }

    #[test]
    fn ranges_parse() {
        assert_eq!(parse_ranges("1").unwrap(), vec![(0, 1)]);
        assert_eq!(parse_ranges("2-4").unwrap(), vec![(1, 4)]);
        assert_eq!(parse_ranges("3-").unwrap(), vec![(2, usize::MAX)]);
        assert_eq!(parse_ranges("-2").unwrap(), vec![(0, 2)]);
        assert_eq!(
            parse_ranges("1,3-5").unwrap(),
            vec![(0, 1), (2, 5)]
        );
        assert!(parse_ranges("0").is_none());
        assert!(parse_ranges("5-3").is_none());
        assert!(parse_ranges("x").is_none());
    }

    #[test]
    fn range_membership() {
        let r = parse_ranges("1,3-5").unwrap();
        assert!(in_ranges(&r, 0));
        assert!(!in_ranges(&r, 1));
        assert!(in_ranges(&r, 2));
        assert!(in_ranges(&r, 4));
        assert!(!in_ranges(&r, 5));
    }
}
