//! Fused-kernel building blocks: single-pass composable implementations
//! of the stateless/per-line coreutils subset.
//!
//! A [`Kernel`] collapses a chain like `tr | grep | cut | head` into one
//! object that makes a single pass over each input chunk: every stage is
//! a small transducer ([`OpImpl`]) that appends its output to a scratch
//! buffer which becomes the next stage's input. No channels, no
//! per-stage threads, no per-line allocation on the hot path — per-line
//! stages frame their input by scanning the chunk in place, carrying
//! only a partial trailing line across chunk boundaries.
//!
//! Each op replicates the corresponding utility in `cmds/` byte for
//! byte; the conformance tests below fuzz every op against
//! [`crate::run_on_bytes`] so the two cannot drift silently. Builders
//! return `None` for any invocation whose semantics the kernel cannot
//! reproduce exactly (unsupported flags, file operands, buffering
//! commands) — the fusion pass treats those stages as barriers.

use crate::cmds::sed::{kernel_sed, KernelSed};
use crate::cmds::tr::expand_set;
use crate::regex::{Flavor, Regex};
use crate::util::{in_ranges, parse_ranges, split_flags};

/// How a fused stage consumes its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelShape {
    /// Operates on framed lines (`grep`, `cut`, `sed`, `head`, ...).
    PerLine,
    /// Operates on raw byte chunks (`tr`, `cat`).
    PerChunk,
}

/// Whether `name args` admits a kernel op, and of which shape.
///
/// This is the single source of truth the spec layer's fusibility
/// classification delegates to: a command is fusible exactly when a
/// kernel op can be built for its concrete argument vector.
pub fn op_shape(name: &str, args: &[String]) -> Option<KernelShape> {
    build_stage(name, args).map(|s| s.shape())
}

/// A per-line transducer. `body` excludes the trailing newline;
/// `had_nl` says whether the source line had one (only the final line
/// of a stream may lack it). Returns `false` to stop consuming input
/// (`head`, `sed q`).
trait LineOp {
    fn line(&mut self, body: &[u8], had_nl: bool, out: &mut Vec<u8>) -> bool;
    fn status(&self) -> i32 {
        0
    }
}

/// A per-chunk transducer (never stops early, never fails).
trait ChunkOp {
    fn chunk(&mut self, data: &[u8], out: &mut Vec<u8>);
}

enum OpImpl {
    Chunk(Box<dyn ChunkOp + Send>),
    Line {
        op: Box<dyn LineOp + Send>,
        /// Partial trailing line carried across chunk boundaries.
        carry: Vec<u8>,
    },
}

/// One stage of a kernel: an op plus its stop flag.
pub struct Stage {
    op: OpImpl,
    stopped: bool,
}

impl Stage {
    fn shape(&self) -> KernelShape {
        match self.op {
            OpImpl::Chunk(_) => KernelShape::PerChunk,
            OpImpl::Line { .. } => KernelShape::PerLine,
        }
    }

    /// Feeds one chunk; returns `false` once the stage wants no more
    /// input. Output produced before the stop is still appended.
    fn feed(&mut self, data: &[u8], out: &mut Vec<u8>) -> bool {
        if self.stopped {
            return false;
        }
        match &mut self.op {
            OpImpl::Chunk(op) => {
                op.chunk(data, out);
                true
            }
            OpImpl::Line { op, carry } => {
                let mut rest = data;
                if !carry.is_empty() {
                    match rest.iter().position(|&b| b == b'\n') {
                        Some(pos) => {
                            carry.extend_from_slice(&rest[..pos]);
                            let line = std::mem::take(carry);
                            if !op.line(&line, true, out) {
                                self.stopped = true;
                                return false;
                            }
                            rest = &rest[pos + 1..];
                        }
                        None => {
                            carry.extend_from_slice(rest);
                            return true;
                        }
                    }
                }
                for piece in rest.split_inclusive(|&b| b == b'\n') {
                    if piece.last() == Some(&b'\n') {
                        if !op.line(&piece[..piece.len() - 1], true, out) {
                            self.stopped = true;
                            return false;
                        }
                    } else {
                        carry.extend_from_slice(piece);
                    }
                }
                true
            }
        }
    }

    /// End of input: flushes the carried partial line (unless stopped,
    /// matching `for_each_input_line`, which skips the tail after an
    /// early stop).
    fn finish(&mut self, out: &mut Vec<u8>) {
        if self.stopped {
            return;
        }
        if let OpImpl::Line { op, carry } = &mut self.op {
            if !carry.is_empty() {
                let line = std::mem::take(carry);
                op.line(&line, false, out);
            }
        }
    }

    fn status(&self) -> i32 {
        match &self.op {
            OpImpl::Chunk(_) => 0,
            OpImpl::Line { op, .. } => op.status(),
        }
    }
}

/// A compiled chain of stages executing in one pass per chunk.
pub struct Kernel {
    stages: Vec<Stage>,
    buf_a: Vec<u8>,
    buf_b: Vec<u8>,
    lines: u64,
    stopped: bool,
}

impl Kernel {
    /// Compiles `stages` (name, args pairs in pipeline order). Fails
    /// with the offending stage's name if any stage is unsupported —
    /// callers treat that as an execution failure and fall back to the
    /// unfused pipeline.
    pub fn build<S: AsRef<str>>(stages: &[(S, Vec<String>)]) -> Result<Kernel, String> {
        if stages.is_empty() {
            return Err("fused kernel: empty stage list".to_string());
        }
        let mut built = Vec::with_capacity(stages.len());
        for (name, args) in stages {
            let name = name.as_ref();
            match build_stage(name, args) {
                Some(s) => built.push(s),
                None => return Err(format!("fused kernel: unsupported stage `{name}`")),
            }
        }
        Ok(Kernel {
            stages: built,
            buf_a: Vec::new(),
            buf_b: Vec::new(),
            lines: 0,
            stopped: false,
        })
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the kernel has no stages (never true for a built kernel).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Complete input lines consumed so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Whether the kernel has stopped consuming input.
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// Runs one input chunk through every stage, appending the final
    /// stage's output to `out`. Returns `false` once the kernel wants
    /// no more input (some stage stopped — the single-threaded analogue
    /// of a downstream `head` closing the pipe).
    pub fn feed(&mut self, chunk: &[u8], out: &mut Vec<u8>) -> bool {
        if self.stopped {
            return false;
        }
        self.lines += chunk.iter().filter(|&&b| b == b'\n').count() as u64;
        let n = self.stages.len();
        if n == 1 {
            if !self.stages[0].feed(chunk, out) {
                self.stopped = true;
            }
            return !self.stopped;
        }
        let mut a = std::mem::take(&mut self.buf_a);
        let mut b = std::mem::take(&mut self.buf_b);
        a.clear();
        let mut alive = self.stages[0].feed(chunk, &mut a);
        for i in 1..n {
            if i == n - 1 {
                if !self.stages[i].feed(&a, out) {
                    alive = false;
                }
            } else {
                b.clear();
                if !self.stages[i].feed(&a, &mut b) {
                    alive = false;
                }
                std::mem::swap(&mut a, &mut b);
            }
        }
        self.buf_a = a;
        self.buf_b = b;
        if !alive {
            self.stopped = true;
        }
        !self.stopped
    }

    /// End of input: cascades each stage's final flush (partial trailing
    /// lines) through the stages downstream of it.
    pub fn finish(&mut self, out: &mut Vec<u8>) {
        let n = self.stages.len();
        for i in 0..n {
            let mut cur = Vec::new();
            self.stages[i].finish(&mut cur);
            for j in (i + 1)..n {
                if cur.is_empty() {
                    break;
                }
                let mut next = Vec::new();
                self.stages[j].feed(&cur, &mut next);
                cur = next;
            }
            out.extend_from_slice(&cur);
        }
    }

    /// Exit status: any stage ≥ 2 wins, else the last stage's status
    /// (mirroring how the region status treats an unfused pipeline —
    /// only the final stage's 0-vs-1 distinction is observable).
    pub fn status(&self) -> i32 {
        for s in &self.stages {
            if s.status() >= 2 {
                return s.status();
            }
        }
        self.stages.last().map(Stage::status).unwrap_or(0)
    }
}

// ---------------------------------------------------------------------
// Ops.

struct CatOp;

impl ChunkOp for CatOp {
    fn chunk(&mut self, data: &[u8], out: &mut Vec<u8>) {
        out.extend_from_slice(data);
    }
}

struct TrOp {
    member: [bool; 256],
    xlate: [u8; 256],
    squeeze_set: [bool; 256],
    delete: bool,
    squeeze: bool,
    translating: bool,
    last_out: Option<u8>,
}

impl ChunkOp for TrOp {
    fn chunk(&mut self, data: &[u8], out: &mut Vec<u8>) {
        for &b in data {
            let mut ob = b;
            if self.delete && self.member[b as usize] {
                continue;
            }
            if self.translating && self.member[b as usize] {
                ob = self.xlate[b as usize];
            }
            if self.squeeze && self.squeeze_set[ob as usize] && self.last_out == Some(ob) {
                continue;
            }
            self.last_out = Some(ob);
            out.push(ob);
        }
    }
}

struct GrepOp {
    re: Regex,
    invert: bool,
    line_numbers: bool,
    lineno: u64,
    matched: u64,
}

impl LineOp for GrepOp {
    fn line(&mut self, body: &[u8], _had_nl: bool, out: &mut Vec<u8>) -> bool {
        self.lineno += 1;
        if self.re.is_match(body) != self.invert {
            self.matched += 1;
            if self.line_numbers {
                out.extend_from_slice(format!("{}:", self.lineno).as_bytes());
            }
            out.extend_from_slice(body);
            out.push(b'\n');
        }
        true
    }

    fn status(&self) -> i32 {
        if self.matched > 0 {
            0
        } else {
            1
        }
    }
}

enum CutMode {
    Chars(Vec<(usize, usize)>),
    Fields {
        ranges: Vec<(usize, usize)>,
        delim: u8,
        suppress_undelimited: bool,
    },
}

struct CutOp {
    mode: CutMode,
}

impl LineOp for CutOp {
    fn line(&mut self, body: &[u8], _had_nl: bool, out: &mut Vec<u8>) -> bool {
        match &self.mode {
            CutMode::Chars(ranges) => {
                for (idx, &b) in body.iter().enumerate() {
                    if in_ranges(ranges, idx) {
                        out.push(b);
                    }
                }
            }
            CutMode::Fields {
                ranges,
                delim,
                suppress_undelimited,
            } => {
                if !body.contains(delim) {
                    if *suppress_undelimited {
                        return true;
                    }
                    out.extend_from_slice(body);
                } else {
                    let mut first = true;
                    for (idx, field) in body.split(|&b| b == *delim).enumerate() {
                        if in_ranges(ranges, idx) {
                            if !first {
                                out.push(*delim);
                            }
                            first = false;
                            out.extend_from_slice(field);
                        }
                    }
                }
            }
        }
        out.push(b'\n');
        true
    }
}

struct SedOp {
    inner: KernelSed,
}

impl LineOp for SedOp {
    fn line(&mut self, body: &[u8], _had_nl: bool, out: &mut Vec<u8>) -> bool {
        self.inner.line(body, out)
    }
}

struct HeadOp {
    limit: u64,
    seen: u64,
}

impl LineOp for HeadOp {
    fn line(&mut self, body: &[u8], _had_nl: bool, out: &mut Vec<u8>) -> bool {
        self.seen += 1;
        out.extend_from_slice(body);
        out.push(b'\n');
        self.seen < self.limit
    }
}

struct RevOp;

impl LineOp for RevOp {
    fn line(&mut self, body: &[u8], had_nl: bool, out: &mut Vec<u8>) -> bool {
        let rev: String = String::from_utf8_lossy(body).chars().rev().collect();
        out.extend_from_slice(rev.as_bytes());
        if had_nl {
            out.push(b'\n');
        }
        true
    }
}

struct FoldOp {
    width: usize,
}

impl LineOp for FoldOp {
    fn line(&mut self, body: &[u8], _had_nl: bool, out: &mut Vec<u8>) -> bool {
        for (i, b) in body.iter().enumerate() {
            if i > 0 && i % self.width == 0 {
                out.push(b'\n');
            }
            out.push(*b);
        }
        out.push(b'\n');
        true
    }
}

struct UniqOp {
    prev: Option<Vec<u8>>,
}

impl LineOp for UniqOp {
    fn line(&mut self, body: &[u8], _had_nl: bool, out: &mut Vec<u8>) -> bool {
        if self.prev.as_deref() != Some(body) {
            out.extend_from_slice(body);
            out.push(b'\n');
            self.prev = Some(body.to_vec());
        }
        true
    }
}

// ---------------------------------------------------------------------
// Builders. Each mirrors its utility's argument parsing and returns
// `None` wherever the real command would error, read files, or use a
// feature the kernel does not reproduce.

fn build_stage(name: &str, args: &[String]) -> Option<Stage> {
    let op = match name {
        "cat" => build_cat(args),
        "tr" => build_tr(args),
        "grep" => build_grep(args),
        "cut" => build_cut(args),
        "sed" => kernel_sed(args).map(|inner| line_op(Box::new(SedOp { inner }))),
        "head" => build_head(args),
        "rev" => build_rev(args),
        "fold" => build_fold(args),
        "uniq" => build_uniq(args),
        _ => None,
    }?;
    let stopped = matches!(&op, OpImpl::Line { .. }) && initial_stop(name, args);
    Some(Stage { op, stopped })
}

/// `head -n 0` emits nothing and exits immediately; the stage starts
/// stopped so the kernel never consumes input on its behalf.
fn initial_stop(name: &str, args: &[String]) -> bool {
    name == "head" && parse_head_lines(args) == Some(0)
}

fn line_op(op: Box<dyn LineOp + Send>) -> OpImpl {
    OpImpl::Line {
        op,
        carry: Vec::new(),
    }
}

fn build_cat(args: &[String]) -> Option<OpImpl> {
    if !args.is_empty() {
        return None;
    }
    Some(OpImpl::Chunk(Box::new(CatOp)))
}

fn build_tr(args: &[String]) -> Option<OpImpl> {
    let (flags, operands) = split_flags(args);
    let mut complement = false;
    let mut delete = false;
    let mut squeeze = false;
    for f in flags {
        for c in f.chars().skip(1) {
            match c {
                'c' | 'C' => complement = true,
                'd' => delete = true,
                's' => squeeze = true,
                _ => return None,
            }
        }
    }
    let set1 = expand_set(operands.first()?);
    let set2 = operands.get(1).map(|s| expand_set(s));

    let mut member = [false; 256];
    for &b in &set1 {
        member[b as usize] = true;
    }
    if complement {
        for m in member.iter_mut() {
            *m = !*m;
        }
    }

    let mut xlate: [u8; 256] = std::array::from_fn(|i| i as u8);
    if let (Some(s2), false) = (&set2, delete) {
        let last = *s2.last()?;
        if complement {
            for (i, m) in member.iter().enumerate() {
                if *m {
                    xlate[i] = last;
                }
            }
        } else {
            for (i, &from) in set1.iter().enumerate() {
                xlate[from as usize] = s2.get(i).copied().unwrap_or(last);
            }
        }
    }

    let squeeze_set: [bool; 256] = {
        let mut t = [false; 256];
        if squeeze {
            match (&set2, delete) {
                (Some(s2), false) => {
                    for &b in s2 {
                        t[b as usize] = true;
                    }
                }
                _ => t = member,
            }
        }
        t
    };

    Some(OpImpl::Chunk(Box::new(TrOp {
        member,
        xlate,
        squeeze_set,
        delete,
        squeeze,
        translating: set2.is_some() && !delete,
        last_out: None,
    })))
}

fn build_grep(args: &[String]) -> Option<OpImpl> {
    let mut invert = false;
    let mut icase = false;
    let mut line_numbers = false;
    let mut flavor = Flavor::Bre;
    let mut fixed = false;
    let mut pattern: Option<String> = None;

    let mut i = 0;
    let mut no_more_flags = false;
    while i < args.len() {
        let a = &args[i];
        if no_more_flags || !a.starts_with('-') || a == "-" {
            if pattern.is_none() {
                pattern = Some(a.clone());
            } else {
                return None; // File operand.
            }
            i += 1;
            continue;
        }
        if a == "--" {
            no_more_flags = true;
            i += 1;
            continue;
        }
        if a == "-e" {
            i += 1;
            pattern = Some(args.get(i)?.clone());
            i += 1;
            continue;
        }
        for c in a.chars().skip(1) {
            match c {
                'v' => invert = true,
                'i' => icase = true,
                'n' => line_numbers = true,
                'E' => flavor = Flavor::Ere,
                'F' => fixed = true,
                // -c/-q/-m change output or stop semantics the kernel
                // does not model; anything else is an error anyway.
                _ => return None,
            }
        }
        i += 1;
    }

    let pattern = pattern?;
    let re = if fixed {
        Regex::fixed(&pattern, icase)
    } else {
        Regex::new(&pattern, flavor, icase).ok()?
    };
    Some(line_op(Box::new(GrepOp {
        re,
        invert,
        line_numbers,
        lineno: 0,
        matched: 0,
    })))
}

fn build_cut(args: &[String]) -> Option<OpImpl> {
    let mut list: Option<String> = None;
    let mut field_mode = false;
    let mut delim = b'\t';
    let mut suppress = false;

    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(rest) = a.strip_prefix("-c").or_else(|| a.strip_prefix("-b")) {
            list = Some(if rest.is_empty() {
                i += 1;
                args.get(i).cloned().unwrap_or_default()
            } else {
                rest.to_string()
            });
            field_mode = false;
        } else if let Some(rest) = a.strip_prefix("-f") {
            list = Some(if rest.is_empty() {
                i += 1;
                args.get(i).cloned().unwrap_or_default()
            } else {
                rest.to_string()
            });
            field_mode = true;
        } else if let Some(rest) = a.strip_prefix("-d") {
            let d = if rest.is_empty() {
                i += 1;
                args.get(i).cloned().unwrap_or_default()
            } else {
                rest.to_string()
            };
            delim = d.bytes().next().unwrap_or(b'\t');
        } else if a == "-s" {
            suppress = true;
        } else {
            // `--`, file operands, unknown flags: not kernel territory.
            return None;
        }
        i += 1;
    }

    let ranges = parse_ranges(&list?)?;
    let mode = if field_mode {
        CutMode::Fields {
            ranges,
            delim,
            suppress_undelimited: suppress,
        }
    } else {
        CutMode::Chars(ranges)
    };
    Some(line_op(Box::new(CutOp { mode })))
}

fn parse_head_lines(args: &[String]) -> Option<u64> {
    let mut lines: u64 = 10;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(rest) = a.strip_prefix("-n") {
            let v = if rest.is_empty() {
                i += 1;
                args.get(i).cloned().unwrap_or_default()
            } else {
                rest.to_string()
            };
            lines = v.parse().ok()?;
        } else if a.starts_with("-c") {
            return None; // Byte mode streams chunks, not lines.
        } else if a.starts_with('-') && a.len() > 1 && a[1..].chars().all(|c| c.is_ascii_digit()) {
            lines = a[1..].parse().unwrap_or(10);
        } else {
            return None; // `--` or file operands.
        }
        i += 1;
    }
    Some(lines)
}

fn build_head(args: &[String]) -> Option<OpImpl> {
    let limit = parse_head_lines(args)?;
    Some(line_op(Box::new(HeadOp { limit, seen: 0 })))
}

fn build_rev(args: &[String]) -> Option<OpImpl> {
    if !args.is_empty() {
        return None; // All operands are files.
    }
    Some(line_op(Box::new(RevOp)))
}

fn build_fold(args: &[String]) -> Option<OpImpl> {
    let mut width = 80usize;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(rest) = a.strip_prefix("-w") {
            let v = if rest.is_empty() {
                i += 1;
                args.get(i).cloned().unwrap_or_default()
            } else {
                rest.to_string()
            };
            match v.parse() {
                Ok(w) if w > 0 => width = w,
                _ => return None,
            }
        } else {
            return None; // File operand.
        }
        i += 1;
    }
    Some(line_op(Box::new(FoldOp { width })))
}

fn build_uniq(args: &[String]) -> Option<OpImpl> {
    // Plain `uniq` only: -c/-d/-u change grouping output; operands are
    // files.
    if !args.is_empty() {
        return None;
    }
    Some(line_op(Box::new(UniqOp { prev: None })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_on_bytes, UtilCtx};

    fn ctx() -> UtilCtx {
        UtilCtx::new(jash_io::mem_fs())
    }

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    /// Runs a kernel over `input` split into `chunk` - byte pieces.
    fn run_kernel(stages: &[(&str, Vec<String>)], input: &[u8], chunk: usize) -> (Vec<u8>, i32) {
        let mut k = Kernel::build(stages).unwrap();
        let mut out = Vec::new();
        for piece in input.chunks(chunk.max(1)) {
            if !k.feed(piece, &mut out) {
                break;
            }
        }
        k.finish(&mut out);
        (out, k.status())
    }

    /// The oracle: the same chain run through the real utilities.
    fn run_pipeline(stages: &[(&str, Vec<String>)], input: &[u8]) -> (Vec<u8>, i32) {
        let c = ctx();
        let mut data = input.to_vec();
        let mut status = 0;
        for (name, args) in stages {
            let args: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
            let (st, out, _) = run_on_bytes(&c, name, &args, &data).unwrap();
            data = out;
            status = st;
        }
        (data, status)
    }

    fn conform(stages: &[(&str, Vec<String>)], input: &[u8]) {
        let (want, want_st) = run_pipeline(stages, input);
        for chunk in [1, 3, 7, 64, 1 << 20] {
            let (got, got_st) = run_kernel(stages, input, chunk);
            assert_eq!(
                got,
                want,
                "chunk={chunk} stages={:?}",
                stages.iter().map(|s| s.0).collect::<Vec<_>>()
            );
            assert_eq!(got_st, want_st, "status, chunk={chunk}");
        }
    }

    const CORPUS: &[u8] = b"Hello, World!\nthe quick brown fox\nJUMPS over\n\
        the lazy dog 42 times\naaa\naaa\nbbb\nmixed UPPER lower 123\n\
        a:b:c:d\nx:y\nnodelim\ntrailing no newline";

    #[test]
    fn op_shapes() {
        assert_eq!(op_shape("tr", &strs(&["A-Z", "a-z"])), Some(KernelShape::PerChunk));
        assert_eq!(op_shape("cat", &[]), Some(KernelShape::PerChunk));
        assert_eq!(op_shape("grep", &strs(&["x"])), Some(KernelShape::PerLine));
        assert_eq!(op_shape("cut", &strs(&["-c", "1-3"])), Some(KernelShape::PerLine));
        assert_eq!(op_shape("head", &strs(&["-n2"])), Some(KernelShape::PerLine));
        assert_eq!(op_shape("sed", &strs(&["s/a/b/"])), Some(KernelShape::PerLine));
        assert_eq!(op_shape("uniq", &[]), Some(KernelShape::PerLine));
        // Unsupported invocations are rejected, not misexecuted.
        assert_eq!(op_shape("grep", &strs(&["-c", "x"])), None);
        assert_eq!(op_shape("grep", &strs(&["x", "/file"])), None);
        assert_eq!(op_shape("head", &strs(&["-c", "5"])), None);
        assert_eq!(op_shape("uniq", &strs(&["-c"])), None);
        assert_eq!(op_shape("sed", &strs(&["$d"])), None);
        assert_eq!(op_shape("sort", &[]), None);
        assert_eq!(op_shape("tr", &strs(&["-x", "a", "b"])), None);
        assert_eq!(op_shape("cat", &strs(&["/f"])), None);
    }

    #[test]
    fn single_ops_conform() {
        let cases: Vec<(&str, Vec<String>)> = vec![
            ("cat", strs(&[])),
            ("tr", strs(&["A-Z", "a-z"])),
            ("tr", strs(&["-d", "aeiou"])),
            ("tr", strs(&["-cs", "A-Za-z", "\n"])),
            ("tr", strs(&["-s", "a"])),
            ("grep", strs(&["the"])),
            ("grep", strs(&["-v", "a"])),
            ("grep", strs(&["-in", "hello"])),
            ("grep", strs(&["-E", "fox|dog"])),
            ("grep", strs(&["-F", "a:b"])),
            ("cut", strs(&["-c", "1-5"])),
            ("cut", strs(&["-d:", "-f1,3"])),
            ("cut", strs(&["-d:", "-f2", "-s"])),
            ("sed", strs(&["s/a/X/g"])),
            ("sed", strs(&["/o/d"])),
            ("sed", strs(&["-n", "/the/p"])),
            ("sed", strs(&["2,3d"])),
            ("sed", strs(&["3q"])),
            ("head", strs(&["-n3"])),
            ("head", strs(&["-n", "0"])),
            ("head", strs(&["-n", "100"])),
            ("rev", strs(&[])),
            ("fold", strs(&["-w5"])),
            ("uniq", strs(&[])),
        ];
        for (name, args) in cases {
            conform(&[(name, args)], CORPUS);
        }
    }

    #[test]
    fn chains_conform() {
        let chains: Vec<Vec<(&str, Vec<String>)>> = vec![
            vec![
                ("tr", strs(&["A-Z", "a-z"])),
                ("grep", strs(&["the"])),
                ("cut", strs(&["-c", "1-8"])),
                ("head", strs(&["-n2"])),
            ],
            vec![
                ("tr", strs(&["-cs", "A-Za-z", "\n"])),
                ("uniq", strs(&[])),
                ("rev", strs(&[])),
            ],
            vec![
                ("sed", strs(&["s/:/ /g"])),
                ("fold", strs(&["-w4"])),
                ("grep", strs(&["-v", "x"])),
            ],
            vec![("head", strs(&["-n5"])), ("tr", strs(&["a-z", "A-Z"]))],
            vec![("grep", strs(&["zzz-no-match"])), ("cat", strs(&[]))],
            vec![("cat", strs(&[])), ("sed", strs(&["2q"])), ("rev", strs(&[]))],
        ];
        for chain in chains {
            conform(&chain, CORPUS);
        }
    }

    #[test]
    fn grep_status_propagates_like_a_pipeline() {
        // grep last in chain: its 0/1 is the kernel status.
        let (_, st) = run_kernel(&[("grep", strs(&["nope"]))], CORPUS, 64);
        assert_eq!(st, 1);
        let (_, st) = run_kernel(&[("grep", strs(&["the"]))], CORPUS, 64);
        assert_eq!(st, 0);
        // grep mid-chain: the final stage's status wins, like bash.
        let (_, st) = run_kernel(
            &[("grep", strs(&["nope"])), ("cat", strs(&[]))],
            CORPUS,
            64,
        );
        assert_eq!(st, 0);
    }

    #[test]
    fn early_stop_stops_consuming() {
        let mut k = Kernel::build(&[("head", strs(&["-n1"]))]).unwrap();
        let mut out = Vec::new();
        assert!(!k.feed(b"a\nb\nc\n", &mut out));
        assert!(k.stopped());
        k.finish(&mut out);
        assert_eq!(out, b"a\n");
    }

    #[test]
    fn carry_spans_many_chunks() {
        // A single long line delivered one byte at a time.
        let line = vec![b'x'; 1000];
        let mut input = line.clone();
        input.push(b'\n');
        conform(&[("cut", strs(&["-c", "998-"]))], &input);
    }

    #[test]
    fn squeeze_state_survives_chunk_boundaries() {
        // `tr -s` must squeeze runs that straddle chunk edges.
        conform(&[("tr", strs(&["-s", "a"]))], b"aaaaaaaabaaaa\naaaa");
    }

    #[test]
    fn lines_counter_counts_input_lines() {
        let mut k = Kernel::build(&[("cat", Vec::new())]).unwrap();
        let mut out = Vec::new();
        k.feed(b"a\nb\nc", &mut out);
        k.finish(&mut out);
        assert_eq!(k.lines(), 2);
    }

    #[test]
    fn build_rejects_unknown_stage() {
        let err = match Kernel::build(&[("sort", Vec::new())]) {
            Ok(_) => panic!("sort must not build"),
            Err(e) => e,
        };
        assert!(err.contains("sort"));
    }
}
