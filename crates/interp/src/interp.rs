//! The evaluator: POSIX shell semantics over the virtual substrate.
//!
//! This is the "user's original shell" half of the Jash architecture — the
//! interpreter that handles every dynamic feature (expansion, control
//! flow, functions, redirections) and that optimized regions fall back to.
//! Running it over `jash-io`/`jash-coreutils` keeps it byte-comparable
//! with the optimized executor: the equivalence tests in `tests/` hold
//! both against each other.

use crate::builtins;
use crate::errors::{Flow, InterpError, Result};
use crate::io::{InputBinding, OutputBinding, ShellIo};
use bytes::Bytes;
use jash_ast::{
    AndOrOp, CaseClause, Command, CommandKind, Pipeline, Program, Redirect, RedirectOp,
};
use jash_coreutils::{UtilCtx, UtilIo};
use jash_expand::{
    expand_word_field, expand_word_single, expand_words, ShellState, SubstRunner,
};
use parking_lot::Mutex;
use std::sync::Arc;

/// The tree-walking interpreter.
///
/// Stateless apart from bookkeeping (function-call depth, `local`
/// frames); the shell's mutable context lives in [`ShellState`].
#[derive(Default)]
pub struct Interpreter {
    /// Frames of saved variables for `local`, one per active function
    /// call.
    pub(crate) local_frames: Vec<Vec<(String, Option<jash_expand::Var>)>>,
    /// Depth of condition contexts, where `set -e` is suspended.
    condition_depth: u32,
    /// Stderr binding substitutions inside command substitutions fall
    /// back to (public so embedding shells like `jash-core` can share it).
    pub base_stderr: Option<OutputBinding>,
}

/// A JIT callout threaded through the tree walk.
///
/// This is the expansion boundary of the paper's dynamic architecture:
/// the interpreter owns control flow (loops, conditionals, functions) and
/// offers every pipeline it is about to run — *after* the surrounding
/// control flow has produced the live [`ShellState`] (loop variables,
/// assignments, `$(...)` results) but *before* any word in the pipeline
/// is expanded — to an engine that may compile and run it as a dataflow
/// region instead.
///
/// Contract: if [`PipelineJit::on_pipeline`] returns `Some`, the engine
/// ran the pipeline and the interpreter uses that result (applying `!`
/// negation itself). If it returns `None`, the interpreter runs the
/// pipeline and then calls [`PipelineJit::pipeline_interpreted`] exactly
/// once with the outcome, so the engine can close any accounting it
/// opened when it declined.
pub trait PipelineJit {
    /// Offered a pipeline at its expansion boundary. `Some(result)`
    /// means the engine handled it (status is pre-negation); `None`
    /// hands it back to the interpreter.
    fn on_pipeline(
        &mut self,
        state: &mut ShellState,
        pl: &Pipeline,
        io: &ShellIo,
    ) -> Option<Result<i32>>;

    /// Called exactly once after the interpreter ran a pipeline the
    /// engine declined, with the interpretation's result.
    fn pipeline_interpreted(&mut self, result: &Result<i32>);

    /// A `for`/`while` loop body is about to start iterating.
    fn loop_enter(&mut self) {}

    /// Iteration `iter` (1-based) of the innermost loop is starting.
    fn loop_iter(&mut self, _iter: u64) {}

    /// The innermost loop finished (normally or via `break`/error).
    fn loop_exit(&mut self) {}
}

/// Outcome of running a whole script.
#[derive(Debug)]
pub struct RunResult {
    /// Exit status.
    pub status: i32,
    /// Captured stdout.
    pub stdout: Vec<u8>,
    /// Captured stderr.
    pub stderr: Vec<u8>,
}

impl Interpreter {
    /// Creates an interpreter.
    pub fn new() -> Self {
        Interpreter::default()
    }

    /// Parses and runs `src` with captured stdio.
    pub fn run_script(&mut self, state: &mut ShellState, src: &str) -> Result<RunResult> {
        let prog = jash_parser::parse(src)?;
        self.run_program_captured(state, &prog)
    }

    /// Runs a parsed program with captured stdio.
    pub fn run_program_captured(
        &mut self,
        state: &mut ShellState,
        prog: &Program,
    ) -> Result<RunResult> {
        let (io, out, err) = ShellIo::captured();
        self.base_stderr = Some(io.stderr.clone());
        let status = match self.run_program(state, prog, &io) {
            Ok(s) => s,
            Err(InterpError::Flow(Flow::Exit(s))) => s,
            Err(e) => {
                err.lock()
                    .extend_from_slice(format!("jash: {e}\n").as_bytes());
                match e {
                    InterpError::Expand(_) => 1,
                    InterpError::Parse(_) => 2,
                    _ => 1,
                }
            }
        };
        state.last_status = status;
        let stdout = std::mem::take(&mut *out.lock());
        let stderr = std::mem::take(&mut *err.lock());
        Ok(RunResult {
            status,
            stdout,
            stderr,
        })
    }

    /// Runs a program in the given io context.
    pub fn run_program(
        &mut self,
        state: &mut ShellState,
        prog: &Program,
        io: &ShellIo,
    ) -> Result<i32> {
        self.run_program_jit(state, prog, io, None)
    }

    /// [`Interpreter::run_program`] with a JIT callout: every pipeline
    /// the walk reaches — including those under `if`/`while`/`for`/brace
    /// groups and `&&`/`||` chains — is offered to `jit` at its
    /// expansion boundary before being interpreted. Background items and
    /// command substitutions stay hookless (they run in subshells whose
    /// effects are discarded or captured wholesale).
    pub fn run_program_jit(
        &mut self,
        state: &mut ShellState,
        prog: &Program,
        io: &ShellIo,
        mut jit: Option<&mut (dyn PipelineJit + '_)>,
    ) -> Result<i32> {
        let mut status = state.last_status;
        for item in &prog.items {
            if item.background {
                // No job control: background items run in a subshell whose
                // effects are discarded; the parent proceeds with status 0.
                let mut sub = state.subshell();
                let _ = self.run_and_or(&mut sub, &item.and_or, io, None);
                status = 0;
                state.last_status = 0;
                continue;
            }
            status = self.run_and_or(state, &item.and_or, io, jit.as_deref_mut())?;
            state.last_status = status;
            if status != 0 && state.errexit && self.condition_depth == 0 {
                return Err(InterpError::Flow(Flow::Exit(status)));
            }
        }
        Ok(status)
    }

    fn run_and_or(
        &mut self,
        state: &mut ShellState,
        ao: &jash_ast::AndOrList,
        io: &ShellIo,
        mut jit: Option<&mut (dyn PipelineJit + '_)>,
    ) -> Result<i32> {
        // All but the final pipeline are condition contexts for `set -e`.
        let has_rest = !ao.rest.is_empty();
        if has_rest {
            self.condition_depth += 1;
        }
        let status = self.run_pipeline(state, &ao.first, io, jit.as_deref_mut());
        if has_rest {
            self.condition_depth -= 1;
        }
        let mut status = status?;
        for (i, (op, pl)) in ao.rest.iter().enumerate() {
            let run = match op {
                AndOrOp::And => status == 0,
                AndOrOp::Or => status != 0,
            };
            if !run {
                continue;
            }
            let last = i + 1 == ao.rest.len();
            if !last {
                self.condition_depth += 1;
            }
            let r = self.run_pipeline(state, pl, io, jit.as_deref_mut());
            if !last {
                self.condition_depth -= 1;
            }
            status = r?;
            state.last_status = status;
        }
        Ok(status)
    }

    fn run_pipeline(
        &mut self,
        state: &mut ShellState,
        pl: &Pipeline,
        io: &ShellIo,
        mut jit: Option<&mut (dyn PipelineJit + '_)>,
    ) -> Result<i32> {
        // The expansion boundary: the engine sees the pipeline with the
        // live state before a single word is expanded.
        let offered = match jit.as_deref_mut() {
            Some(j) => match j.on_pipeline(state, pl, io) {
                Some(result) => {
                    let status = result?;
                    return Ok(if pl.negated {
                        i32::from(status == 0)
                    } else {
                        status
                    });
                }
                None => true,
            },
            None => false,
        };
        let result = if pl.commands.len() == 1 {
            self.run_command_jit(state, &pl.commands[0], io, jit.as_deref_mut())
        } else {
            self.run_multi_pipeline(state, pl, io)
        };
        if offered {
            if let Some(j) = jit {
                j.pipeline_interpreted(&result);
            }
        }
        let status = result?;
        Ok(if pl.negated {
            i32::from(status == 0)
        } else {
            status
        })
    }

    /// A ≥2-stage pipeline. Stages that are all plain utility invocations
    /// run threaded through real pipes (what bash does with processes);
    /// anything fancier falls back to buffered stage-at-a-time execution
    /// in subshells.
    fn run_multi_pipeline(
        &mut self,
        state: &mut ShellState,
        pl: &Pipeline,
        io: &ShellIo,
    ) -> Result<i32> {
        if let Some(stages) = self.plan_threaded_stages(state, pl, io)? {
            return run_threaded_stages(state, stages);
        }

        // Buffered fallback: each stage runs to completion in a subshell,
        // its output feeding the next stage's memory stdin.
        let mut prev_in = io.stdin.clone();
        let mut status = 0;
        let n = pl.commands.len();
        for (i, cmd) in pl.commands.iter().enumerate() {
            let last = i + 1 == n;
            let capture = Arc::new(Mutex::new(Vec::new()));
            // Compound stages (loops with `read`) need a persistent stdin
            // cursor; a plain Memory binding would restart at every open.
            let stdin = if matches!(cmd.kind, CommandKind::Simple(_)) {
                prev_in.clone()
            } else {
                builtins::persistent_input(&prev_in, &state.fs)?
            };
            let stage_io = ShellIo {
                stdin,
                stdout: if last {
                    io.stdout.clone()
                } else {
                    OutputBinding::Shared(Arc::clone(&capture))
                },
                stderr: io.stderr.clone(),
            };
            let mut sub = state.subshell();
            status = match self.run_command(&mut sub, cmd, &stage_io) {
                Ok(s) => s,
                Err(InterpError::Flow(Flow::Exit(s))) => s,
                Err(e) => return Err(e),
            };
            state.last_status = status;
            prev_in = InputBinding::Memory(Arc::new(std::mem::take(&mut *capture.lock())));
        }
        Ok(status)
    }

    /// Tries to pre-expand a pipeline into plain utility stages.
    fn plan_threaded_stages(
        &mut self,
        state: &mut ShellState,
        pl: &Pipeline,
        io: &ShellIo,
    ) -> Result<Option<Vec<ThreadedStage>>> {
        // Only pipelines of simple, assignment-free commands qualify.
        for cmd in &pl.commands {
            match &cmd.kind {
                CommandKind::Simple(sc)
                    if sc.assignments.is_empty() && !sc.words.is_empty() => {}
                _ => return Ok(None),
            }
        }
        let mut stages = Vec::new();
        for cmd in &pl.commands {
            let CommandKind::Simple(sc) = &cmd.kind else {
                unreachable!("checked above");
            };
            let argv = expand_words(state, self, &sc.words)?;
            let Some(name) = argv.first().cloned() else {
                return Ok(None);
            };
            if !jash_coreutils::is_utility(&name)
                || state.get_function(&name).is_some()
                || builtins::is_builtin(&name)
            {
                return Ok(None);
            }
            let stage_io = self.apply_redirects(
                state,
                &ShellIo {
                    stdin: io.stdin.clone(),
                    stdout: io.stdout.clone(),
                    stderr: io.stderr.clone(),
                },
                &cmd.redirects,
                false,
            )?;
            stages.push(ThreadedStage {
                name,
                args: argv[1..].to_vec(),
                io: stage_io,
                explicit_stdin: cmd
                    .redirects
                    .iter()
                    .any(|r| r.effective_fd() == 0),
                explicit_stdout: cmd
                    .redirects
                    .iter()
                    .any(|r| r.effective_fd() == 1),
            });
        }
        Ok(Some(stages))
    }

    /// Runs one command (with its redirects).
    pub fn run_command(
        &mut self,
        state: &mut ShellState,
        cmd: &Command,
        io: &ShellIo,
    ) -> Result<i32> {
        self.run_command_jit(state, cmd, io, None)
    }

    /// [`Interpreter::run_command`] with the JIT callout threaded into
    /// compound bodies (and loop-iteration markers for `for`/`while`).
    pub fn run_command_jit(
        &mut self,
        state: &mut ShellState,
        cmd: &Command,
        io: &ShellIo,
        mut jit: Option<&mut (dyn PipelineJit + '_)>,
    ) -> Result<i32> {
        let compound = !matches!(cmd.kind, CommandKind::Simple(_));
        let io = if cmd.redirects.is_empty() {
            io.clone()
        } else {
            self.apply_redirects(state, io, &cmd.redirects, compound)?
        };
        match &cmd.kind {
            CommandKind::Simple(_) => self.run_simple(state, cmd, &io),
            CommandKind::BraceGroup(body) => self.run_program_jit(state, body, &io, jit),
            CommandKind::Subshell(body) => {
                let mut sub = state.subshell();
                let status = match self.run_program_jit(&mut sub, body, &io, jit) {
                    Ok(s) => s,
                    Err(InterpError::Flow(Flow::Exit(s))) => s,
                    Err(e) => return Err(e),
                };
                state.last_status = status;
                Ok(status)
            }
            CommandKind::If(c) => {
                self.condition_depth += 1;
                let cond = self.run_program_jit(state, &c.cond, &io, jit.as_deref_mut());
                self.condition_depth -= 1;
                if cond? == 0 {
                    return self.run_program_jit(state, &c.then_body, &io, jit);
                }
                for (econd, ebody) in &c.elifs {
                    self.condition_depth += 1;
                    let ec = self.run_program_jit(state, econd, &io, jit.as_deref_mut());
                    self.condition_depth -= 1;
                    if ec? == 0 {
                        return self.run_program_jit(state, ebody, &io, jit);
                    }
                }
                match &c.else_body {
                    Some(e) => self.run_program_jit(state, e, &io, jit),
                    None => Ok(0),
                }
            }
            CommandKind::While(c) => {
                let mut status = 0;
                state.loop_depth += 1;
                if let Some(j) = jit.as_deref_mut() {
                    j.loop_enter();
                }
                let mut iter: u64 = 0;
                let result = loop {
                    self.condition_depth += 1;
                    let cond = self.run_program_jit(state, &c.cond, &io, jit.as_deref_mut());
                    self.condition_depth -= 1;
                    let cond = match cond {
                        Ok(s) => s,
                        Err(e) => break Err(e),
                    };
                    let proceed = (cond == 0) != c.until;
                    if !proceed {
                        break Ok(status);
                    }
                    iter += 1;
                    if let Some(j) = jit.as_deref_mut() {
                        j.loop_iter(iter);
                    }
                    match self.run_program_jit(state, &c.body, &io, jit.as_deref_mut()) {
                        Ok(s) => status = s,
                        Err(InterpError::Flow(Flow::Break(n))) => {
                            if n > 1 {
                                break Err(InterpError::Flow(Flow::Break(n - 1)));
                            }
                            break Ok(status);
                        }
                        Err(InterpError::Flow(Flow::Continue(n))) => {
                            if n > 1 {
                                break Err(InterpError::Flow(Flow::Continue(n - 1)));
                            }
                        }
                        Err(e) => break Err(e),
                    }
                };
                if let Some(j) = jit.as_deref_mut() {
                    j.loop_exit();
                }
                state.loop_depth -= 1;
                result
            }
            CommandKind::For(c) => {
                let items = match &c.words {
                    Some(words) => expand_words(state, self, words)?,
                    None => state.positional.clone(),
                };
                let mut status = 0;
                state.loop_depth += 1;
                if let Some(j) = jit.as_deref_mut() {
                    j.loop_enter();
                }
                let mut result = Ok(());
                'outer: for (i, item) in items.into_iter().enumerate() {
                    state.set_var(&c.var, item);
                    if let Some(j) = jit.as_deref_mut() {
                        j.loop_iter(i as u64 + 1);
                    }
                    match self.run_program_jit(state, &c.body, &io, jit.as_deref_mut()) {
                        Ok(s) => status = s,
                        Err(InterpError::Flow(Flow::Break(n))) => {
                            if n > 1 {
                                result = Err(InterpError::Flow(Flow::Break(n - 1)));
                            }
                            break 'outer;
                        }
                        Err(InterpError::Flow(Flow::Continue(n))) => {
                            if n > 1 {
                                result = Err(InterpError::Flow(Flow::Continue(n - 1)));
                                break 'outer;
                            }
                        }
                        Err(e) => {
                            result = Err(e);
                            break 'outer;
                        }
                    }
                }
                if let Some(j) = jit.as_deref_mut() {
                    j.loop_exit();
                }
                state.loop_depth -= 1;
                result.map(|()| status)
            }
            CommandKind::Case(c) => self.run_case(state, c, &io, jit),
            CommandKind::FunctionDef { name, body } => {
                state.set_function(name, (**body).clone());
                Ok(0)
            }
        }
    }

    fn run_case(
        &mut self,
        state: &mut ShellState,
        c: &CaseClause,
        io: &ShellIo,
        jit: Option<&mut (dyn PipelineJit + '_)>,
    ) -> Result<i32> {
        let subject = expand_word_single(state, self, &c.word)?;
        for arm in &c.arms {
            for pattern in &arm.patterns {
                let field = expand_word_field(state, self, pattern)?;
                if field.to_pattern().matches(&subject) {
                    return self.run_program_jit(state, &arm.body, io, jit);
                }
            }
        }
        Ok(0)
    }

    fn run_simple(
        &mut self,
        state: &mut ShellState,
        cmd: &Command,
        io: &ShellIo,
    ) -> Result<i32> {
        let CommandKind::Simple(sc) = &cmd.kind else {
            unreachable!("caller dispatched");
        };
        let argv = expand_words(state, self, &sc.words)?;

        if argv.is_empty() {
            // Pure assignments mutate the current shell.
            for a in &sc.assignments {
                let v = expand_word_single(state, self, &a.value)?;
                state.set_var(&a.name, v);
            }
            return Ok(0);
        }

        // Command-scoped assignments: set, run, restore.
        let saved: Vec<(String, Option<String>)> = sc
            .assignments
            .iter()
            .map(|a| (a.name.clone(), state.get_var(&a.name).map(str::to_string)))
            .collect();
        for a in &sc.assignments {
            let v = expand_word_single(state, self, &a.value)?;
            state.set_var(&a.name, v);
        }
        let result = self.dispatch(state, &argv, io);
        for (name, old) in saved {
            match old {
                Some(v) => state.set_var(&name, v),
                None => state.unset_var(&name),
            }
        }
        result
    }

    /// Name resolution: special builtins → functions → builtins →
    /// utilities.
    pub(crate) fn dispatch(
        &mut self,
        state: &mut ShellState,
        argv: &[String],
        io: &ShellIo,
    ) -> Result<i32> {
        let name = argv[0].as_str();
        if builtins::is_special_builtin(name) {
            return builtins::run_builtin(self, state, argv, io)
                .expect("special builtin exists");
        }
        if let Some(body) = state.get_function(name).cloned() {
            return self.call_function(state, &body, argv, io);
        }
        if let Some(result) = builtins::run_builtin(self, state, argv, io) {
            return result;
        }
        if jash_coreutils::is_utility(name) {
            return run_utility_stage(state, name, &argv[1..], io);
        }
        let mut err = io.stderr.open(&state.fs)?;
        err.write_chunk(Bytes::from(format!("jash: {name}: command not found\n")))?;
        state.last_status = 127;
        Ok(127)
    }

    fn call_function(
        &mut self,
        state: &mut ShellState,
        body: &Command,
        argv: &[String],
        io: &ShellIo,
    ) -> Result<i32> {
        let saved_positional =
            std::mem::replace(&mut state.positional, argv[1..].to_vec());
        self.local_frames.push(Vec::new());
        let result = match self.run_command(state, body, io) {
            Ok(s) => Ok(s),
            Err(InterpError::Flow(Flow::Return(s))) => Ok(s),
            Err(e) => Err(e),
        };
        // Restore `local`s.
        if let Some(frame) = self.local_frames.pop() {
            for (name, old) in frame.into_iter().rev() {
                match old {
                    Some(var) => {
                        state.set_var(&name, var.value);
                        if var.exported {
                            state.export_var(&name);
                        }
                    }
                    None => state.unset_var(&name),
                }
            }
        }
        state.positional = saved_positional;
        result
    }

    /// Expands redirect targets and rebinds stdio.
    ///
    /// For compound commands, `<` sources become persistent streams so
    /// constructs like `while read l; do …; done < file` consume
    /// incrementally.
    pub(crate) fn apply_redirects(
        &mut self,
        state: &mut ShellState,
        io: &ShellIo,
        redirects: &[Redirect],
        persistent_stdin: bool,
    ) -> Result<ShellIo> {
        let mut io = io.clone();
        for r in redirects {
            let fd = r.effective_fd();
            match r.op {
                RedirectOp::Read | RedirectOp::ReadWrite => {
                    let target = expand_word_single(state, self, &r.target)?;
                    let path = state.resolve_path(&target);
                    if !state.fs.exists(&path) {
                        return Err(InterpError::Io(std::io::Error::new(
                            std::io::ErrorKind::NotFound,
                            format!("{target}: no such file or directory"),
                        )));
                    }
                    io.stdin = if persistent_stdin {
                        crate::builtins::persistent_input(&InputBinding::File(path), &state.fs)?
                    } else {
                        InputBinding::File(path)
                    };
                }
                RedirectOp::Write | RedirectOp::Clobber | RedirectOp::Append => {
                    let target = expand_word_single(state, self, &r.target)?;
                    let path = state.resolve_path(&target);
                    let binding = if target == "/dev/null" {
                        OutputBinding::Null
                    } else {
                        OutputBinding::File {
                            path,
                            append: matches!(r.op, RedirectOp::Append),
                        }
                    };
                    match fd {
                        1 => io.stdout = binding,
                        2 => io.stderr = binding,
                        _ => {}
                    }
                }
                RedirectOp::HereDoc { .. } => {
                    let body = if r.heredoc_quoted {
                        r.target.static_text().unwrap_or_default()
                    } else {
                        expand_word_single(state, self, &r.target)?
                    };
                    io.stdin = InputBinding::Memory(Arc::new(body.into_bytes()));
                }
                RedirectOp::DupRead => {
                    let target = expand_word_single(state, self, &r.target)?;
                    if target == "-" {
                        io.stdin = InputBinding::Empty;
                    }
                    // `n<&m` duplication for n,m∉{0} is not modeled.
                }
                RedirectOp::DupWrite => {
                    let target = expand_word_single(state, self, &r.target)?;
                    match (fd, target.as_str()) {
                        (_, "-") => match fd {
                            1 => io.stdout = OutputBinding::Null,
                            2 => io.stderr = OutputBinding::Null,
                            _ => {}
                        },
                        (2, "1") => io.stderr = io.stdout.clone(),
                        (1, "2") => io.stdout = io.stderr.clone(),
                        _ => {}
                    }
                }
            }
        }
        Ok(io)
    }
}

impl SubstRunner for Interpreter {
    fn run_capture(
        &mut self,
        state: &mut ShellState,
        prog: &Program,
    ) -> std::result::Result<String, jash_expand::ExpandError> {
        // Command substitution runs in a subshell: state changes do not
        // propagate, but `$?` does.
        let mut sub = state.subshell();
        let (io, out, _err) = ShellIo::captured();
        let io = ShellIo {
            stderr: self
                .base_stderr
                .clone()
                .unwrap_or(io.stderr.clone()),
            ..io
        };
        let status = match self.run_program(&mut sub, prog, &io) {
            Ok(s) => s,
            Err(InterpError::Flow(Flow::Exit(s))) => s,
            Err(e) => {
                return Err(jash_expand::ExpandError::Subst(e.to_string()));
            }
        };
        state.last_status = status;
        let data = std::mem::take(&mut *out.lock());
        Ok(String::from_utf8_lossy(&data).into_owned())
    }
}

/// Wraps a stream in a CPU meter when simulation is active.
fn meter_cpu(
    stream: Box<dyn jash_io::ByteStream>,
    cpu: &Option<Arc<jash_io::CpuModel>>,
    command: &str,
) -> Box<dyn jash_io::ByteStream> {
    match cpu {
        Some(model) => Box::new(jash_io::CpuMeteredStream::new(
            stream,
            Arc::clone(model),
            jash_io::cpu_rate(command),
        )),
        None => stream,
    }
}

/// A fully planned pipeline stage ready to run on its own thread.
pub(crate) struct ThreadedStage {
    name: String,
    args: Vec<String>,
    io: ShellIo,
    explicit_stdin: bool,
    explicit_stdout: bool,
}

fn run_threaded_stages(state: &mut ShellState, mut stages: Vec<ThreadedStage>) -> Result<i32> {
    // Wire pipes between adjacent stages that did not redirect.
    for i in 0..stages.len().saturating_sub(1) {
        let (w, r) = jash_io::pipe(jash_io::pipe::DEFAULT_PIPE_DEPTH);
        if !stages[i].explicit_stdout {
            stages[i].io.stdout = OutputBinding::Pipe(Arc::new(Mutex::new(Some(w))));
        }
        if !stages[i + 1].explicit_stdin {
            stages[i + 1].io.stdin = InputBinding::Pipe(Arc::new(Mutex::new(Some(r))));
        } else {
            drop(r);
        }
    }
    // First stage keeps the surrounding stdin; middle stages must not
    // accidentally read it.
    let fs = Arc::clone(&state.fs);
    let cwd = state.cwd.clone();
    let cpu = state.cpu.clone();
    let statuses: Vec<Result<i32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = stages
            .into_iter()
            .map(|stage| {
                let fs = Arc::clone(&fs);
                let cwd = cwd.clone();
                let cpu = cpu.clone();
                scope.spawn(move || -> Result<i32> {
                    let mut stdin = meter_cpu(stage.io.stdin.open(&fs)?, &cpu, &stage.name);
                    let (stdout_inner, mut stderr) =
                        OutputBinding::open_pair(&stage.io.stdout, &stage.io.stderr, &fs)?;
                    let mut stdout: Box<dyn jash_io::Sink> =
                        Box::new(jash_io::CoalescingSink::new(stdout_inner));
                    let ctx = UtilCtx {
                        fs: Arc::clone(&fs),
                        cwd,
                    };
                    let status = {
                        let mut util_io = UtilIo {
                            stdin: stdin.as_mut(),
                            stdout: stdout.as_mut(),
                            stderr: stderr.as_mut(),
                        };
                        jash_coreutils::run_utility(
                            &stage.name,
                            &stage.args,
                            &mut util_io,
                            &ctx,
                        )
                    };
                    // A flush hitting a closed pipe is the same benign
                    // shutdown as a write hitting one: the downstream
                    // stage (e.g. `head`) finished early. Real shells
                    // exit 0 here, so must we.
                    match stdout.finish() {
                        Ok(()) => {}
                        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
                        Err(e) => return Err(InterpError::Io(e)),
                    }
                    match status {
                        Ok(s) => Ok(s),
                        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(0),
                        Err(e) => Err(InterpError::Io(e)),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(Ok(125)))
            .collect()
    });
    let mut last = 0;
    for s in statuses {
        last = s?;
    }
    state.last_status = last;
    Ok(last)
}

/// Runs a single utility with the interpreter's io bindings.
pub(crate) fn run_utility_stage(
    state: &mut ShellState,
    name: &str,
    args: &[String],
    io: &ShellIo,
) -> Result<i32> {
    let fs = Arc::clone(&state.fs);
    let mut stdin = meter_cpu(io.stdin.open(&fs)?, &state.cpu, name);
    let (stdout_inner, mut stderr) = OutputBinding::open_pair(&io.stdout, &io.stderr, &fs)?;
    let mut stdout: Box<dyn jash_io::Sink> = Box::new(jash_io::CoalescingSink::new(stdout_inner));
    let ctx = UtilCtx {
        fs: Arc::clone(&fs),
        cwd: state.cwd.clone(),
    };
    let status = {
        let mut util_io = UtilIo {
            stdin: stdin.as_mut(),
            stdout: stdout.as_mut(),
            stderr: stderr.as_mut(),
        };
        jash_coreutils::run_utility(name, args, &mut util_io, &ctx)
    };
    match stdout.finish() {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
        Err(e) => return Err(InterpError::Io(e)),
    }
    let status = match status {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => 0,
        Err(e) => return Err(InterpError::Io(e)),
    };
    state.last_status = status;
    Ok(status)
}
