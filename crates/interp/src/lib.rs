//! A sequential POSIX shell interpreter over the virtual substrate — the
//! **bash baseline** of the reproduction, and the dynamic half of the
//! Jash architecture ("interpretation is provided by the user's original
//! shell and deals with dynamic features such as parameter expansion",
//! paper §3.2).
//!
//! Supports: simple and compound commands, pipelines (threaded through
//! real pipes when all stages are plain utilities), `&&`/`||`/`!`,
//! redirections including here-documents and `2>&1`, functions with
//! `local` and `return`, `for`/`while`/`until`/`case`/`if`,
//! `break`/`continue`, command substitution, all POSIX word expansion,
//! `set -e`/`-u`, and a practical builtin set (`cd`, `read`, `test`/`[`,
//! `export`, `eval`, `.`, `xargs`, …).
//!
//! # Examples
//!
//! ```
//! use jash_interp::Interpreter;
//! use jash_expand::ShellState;
//!
//! let fs = jash_io::mem_fs();
//! jash_io::fs::write_file(fs.as_ref(), "/data.txt", b"beta\nalpha\n").unwrap();
//! let mut state = ShellState::new(fs);
//! let mut interp = Interpreter::new();
//! let result = interp.run_script(&mut state, "sort /data.txt | head -n1").unwrap();
//! assert_eq!(result.stdout, b"alpha\n");
//! ```

pub mod builtins;
pub mod errors;
pub mod interp;
pub mod io;
pub mod test_expr;

pub use errors::{Flow, InterpError, Result};
pub use interp::{Interpreter, PipelineJit, RunResult};
pub use io::{InputBinding, LineStream, OutputBinding, ShellIo};

use jash_expand::ShellState;

/// One-call convenience: run `src` on a fresh state over `fs`.
pub fn run(fs: jash_io::FsHandle, src: &str) -> Result<RunResult> {
    let mut state = ShellState::new(fs);
    Interpreter::new().run_script(&mut state, src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jash_io::FsHandle;

    fn fs_with(files: &[(&str, &str)]) -> FsHandle {
        let fs = jash_io::mem_fs();
        for (p, c) in files {
            jash_io::fs::write_file(fs.as_ref(), p, c.as_bytes()).unwrap();
        }
        fs
    }

    fn sh(src: &str) -> RunResult {
        run(jash_io::mem_fs(), src).unwrap()
    }

    fn out(src: &str) -> String {
        let r = sh(src);
        assert_eq!(
            r.status,
            0,
            "script `{src}` failed: {}",
            String::from_utf8_lossy(&r.stderr)
        );
        String::from_utf8(r.stdout).unwrap()
    }

    #[test]
    fn echo_and_quoting() {
        assert_eq!(out("echo hello world"), "hello world\n");
        assert_eq!(out("echo 'a  b'  c"), "a  b c\n");
        assert_eq!(out(r#"echo "x${USER_UNSET}-y""#), "x-y\n");
    }

    #[test]
    fn variables_and_expansion() {
        assert_eq!(out("x=41; echo $((x+1))"), "42\n");
        assert_eq!(out("x='a b'; echo $x"), "a b\n");
        assert_eq!(out("x='a b'; echo \"$x\""), "a b\n");
        assert_eq!(out("echo ${UNSET:-default}"), "default\n");
    }

    #[test]
    fn command_substitution() {
        assert_eq!(out("echo $(echo nested)"), "nested\n");
        assert_eq!(out("x=$(echo a; echo b); echo \"$x\""), "a\nb\n");
        assert_eq!(out("echo `echo ticks`"), "ticks\n");
    }

    #[test]
    fn command_substitution_is_a_subshell() {
        assert_eq!(out("x=outer; _dummy=$(x=inner; echo $x); echo $x"), "outer\n");
    }

    #[test]
    fn exit_status_and_dollar_q() {
        let r = sh("false");
        assert_eq!(r.status, 1);
        assert_eq!(out("false; echo $?"), "1\n");
        assert_eq!(out("true; echo $?"), "0\n");
    }

    #[test]
    fn and_or_chains() {
        assert_eq!(out("true && echo yes || echo no"), "yes\n");
        assert_eq!(out("false && echo yes || echo no"), "no\n");
        assert_eq!(out("! false && echo negated"), "negated\n");
    }

    #[test]
    fn pipelines_threaded() {
        let fs = fs_with(&[("/f", "banana\napple\ncherry\n")]);
        let r = run(fs, "cat /f | sort | head -n2").unwrap();
        assert_eq!(r.stdout, b"apple\nbanana\n");
    }

    #[test]
    fn pipeline_status_is_last_stage() {
        let r = sh("echo x | grep absent");
        assert_eq!(r.status, 1);
        let r = sh("false | true");
        assert_eq!(r.status, 0);
    }

    #[test]
    fn pipeline_with_builtin_falls_back_buffered() {
        assert_eq!(
            out("printf 'b\\na\\n' | sort | while read l; do echo got:$l; done"),
            "got:a\ngot:b\n"
        );
    }

    #[test]
    fn redirections() {
        let fs = fs_with(&[]);
        let r = run(std::sync::Arc::clone(&fs), "echo data > /out; cat /out").unwrap();
        assert_eq!(r.stdout, b"data\n");
        let r = run(std::sync::Arc::clone(&fs), "echo more >> /out; cat /out").unwrap();
        assert_eq!(r.stdout, b"data\nmore\n");
    }

    #[test]
    fn stdin_redirect() {
        let fs = fs_with(&[("/in", "first\nsecond\n")]);
        let r = run(fs, "head -n1 < /in").unwrap();
        assert_eq!(r.stdout, b"first\n");
    }

    #[test]
    fn missing_input_redirect_fails() {
        let r = sh("cat < /nope");
        assert_ne!(r.status, 0);
        assert!(!r.stderr.is_empty());
    }

    #[test]
    fn stderr_redirect_and_dup() {
        let fs = fs_with(&[]);
        let r = run(
            std::sync::Arc::clone(&fs),
            "frobnicate 2>/err; cat /err",
        )
        .unwrap();
        assert!(String::from_utf8_lossy(&r.stdout).contains("not found"));
        let r = run(fs, "frobnicate > /both 2>&1; cat /both").unwrap();
        assert!(String::from_utf8_lossy(&r.stdout).contains("not found"));
    }

    #[test]
    fn heredocs() {
        assert_eq!(out("cat <<EOF\nline one\nEOF"), "line one\n");
        assert_eq!(out("x=sub; cat <<EOF\ngot $x\nEOF"), "got sub\n");
        assert_eq!(out("x=sub; cat <<'EOF'\ngot $x\nEOF"), "got $x\n");
    }

    #[test]
    fn if_statements() {
        assert_eq!(out("if true; then echo t; else echo f; fi"), "t\n");
        assert_eq!(out("if false; then echo t; else echo f; fi"), "f\n");
        assert_eq!(
            out("if false; then echo a; elif true; then echo b; fi"),
            "b\n"
        );
        assert_eq!(out("if false; then echo a; fi; echo after"), "after\n");
    }

    #[test]
    fn for_loops() {
        assert_eq!(out("for i in 1 2 3; do echo $i; done"), "1\n2\n3\n");
        assert_eq!(out("for f in a.c b.c; do echo ${f%.c}; done"), "a\nb\n");
    }

    #[test]
    fn while_and_until_loops() {
        assert_eq!(
            out("i=0; while [ $i -lt 3 ]; do echo $i; i=$((i+1)); done"),
            "0\n1\n2\n"
        );
        assert_eq!(
            out("i=0; until [ $i -ge 2 ]; do echo $i; i=$((i+1)); done"),
            "0\n1\n"
        );
    }

    #[test]
    fn break_and_continue() {
        assert_eq!(
            out("for i in 1 2 3 4; do if [ $i = 3 ]; then break; fi; echo $i; done"),
            "1\n2\n"
        );
        assert_eq!(
            out("for i in 1 2 3; do if [ $i = 2 ]; then continue; fi; echo $i; done"),
            "1\n3\n"
        );
        assert_eq!(
            out("for i in a b; do for j in x y; do break 2; done; echo inner; done; echo done"),
            "done\n"
        );
    }

    #[test]
    fn case_statements() {
        assert_eq!(
            out("case hello in h*) echo starts-h;; *) echo other;; esac"),
            "starts-h\n"
        );
        assert_eq!(out("case 'a b' in 'a b') echo exact;; esac"), "exact\n");
        assert_eq!(out("case x in a|x|b) echo alt;; esac"), "alt\n");
        assert_eq!(out("case nomatch in a) echo a;; esac; echo $?"), "0\n");
    }

    #[test]
    fn functions() {
        assert_eq!(
            out("greet() { echo hello $1; }; greet world"),
            "hello world\n"
        );
        assert_eq!(out("f() { return 3; }; f; echo $?"), "3\n");
        assert_eq!(out("f() { echo $#:$1:$2; }; f a b; echo $#"), "2:a:b\n0\n");
    }

    #[test]
    fn function_locals() {
        assert_eq!(
            out("x=global; f() { local x=local; echo $x; }; f; echo $x"),
            "local\nglobal\n"
        );
    }

    #[test]
    fn subshell_isolation() {
        assert_eq!(out("x=outer; (x=inner; echo $x); echo $x"), "inner\nouter\n");
        assert_eq!(out("(exit 5); echo $?"), "5\n");
        assert_eq!(out("(cd /; :); pwd"), "/\n");
    }

    #[test]
    fn brace_group_shares_state() {
        assert_eq!(out("{ x=set; }; echo $x"), "set\n");
    }

    #[test]
    fn positional_parameters() {
        assert_eq!(out("set -- one two three; echo $1 $3 $#"), "one three 3\n");
        assert_eq!(out("set -- a b c; shift; echo $1 $#"), "b 2\n");
        assert_eq!(
            out("set -- 'x y' z; for a in \"$@\"; do echo [$a]; done"),
            "[x y]\n[z]\n"
        );
    }

    #[test]
    fn exit_builtin() {
        let r = sh("echo before; exit 7; echo after");
        assert_eq!(r.status, 7);
        assert_eq!(r.stdout, b"before\n");
    }

    #[test]
    fn set_e_aborts() {
        let r = sh("set -e; false; echo unreachable");
        assert_eq!(r.status, 1);
        assert!(r.stdout.is_empty());
        // Conditions are exempt.
        let r = sh("set -e; if false; then :; fi; echo ok");
        assert_eq!(r.stdout, b"ok\n");
        let r = sh("set -e; false || true; echo ok");
        assert_eq!(r.stdout, b"ok\n");
    }

    #[test]
    fn set_u_errors() {
        let r = sh("set -u; echo $UNDEFINED_VAR");
        assert_ne!(r.status, 0);
    }

    #[test]
    fn cd_and_pwd() {
        let fs = fs_with(&[("/proj/src/main.c", "x")]);
        let r = run(fs, "cd /proj/src; pwd; echo $PWD").unwrap();
        assert_eq!(r.stdout, b"/proj/src\n/proj/src\n");
        let r = sh("cd /missing");
        assert_eq!(r.status, 1);
    }

    #[test]
    fn relative_paths_follow_cwd() {
        let fs = fs_with(&[("/d/file", "content\n")]);
        let r = run(fs, "cd /d; cat file").unwrap();
        assert_eq!(r.stdout, b"content\n");
    }

    #[test]
    fn export_and_env() {
        assert_eq!(out("export X=1; echo $X"), "1\n");
        assert_eq!(out("X=from-prefix echo ok"), "ok\n");
        assert_eq!(out("X=1; X=2 :; echo $X"), "1\n");
    }

    #[test]
    fn read_builtin() {
        assert_eq!(
            out("echo 'a b c' | { read x y; echo [$x][$y]; }"),
            "[a][b c]\n"
        );
        let fs = fs_with(&[("/in", "l1\nl2\nl3\n")]);
        let r = run(fs, "{ read a; read b; echo $b$a; } < /in").unwrap();
        assert_eq!(r.stdout, b"l2l1\n");
    }

    #[test]
    fn while_read_loop() {
        let fs = fs_with(&[("/in", "x\ny\nz\n")]);
        let r = run(fs, "while read l; do echo got:$l; done < /in").unwrap();
        assert_eq!(r.stdout, b"got:x\ngot:y\ngot:z\n");
    }

    #[test]
    fn test_and_brackets() {
        assert_eq!(out("[ 1 -lt 2 ] && echo yes"), "yes\n");
        assert_eq!(out("test abc = abc && echo eq"), "eq\n");
        let fs = fs_with(&[("/f", "x")]);
        let r = run(fs, "[ -f /f ] && echo file").unwrap();
        assert_eq!(r.stdout, b"file\n");
    }

    #[test]
    fn eval_builtin() {
        assert_eq!(out("c='echo evaled'; eval $c"), "evaled\n");
        assert_eq!(out("eval 'x=5'; echo $x"), "5\n");
    }

    #[test]
    fn dot_sourcing() {
        let fs = fs_with(&[("/lib.sh", "sourced_var=yes\nsourced_fn() { echo fn; }\n")]);
        let r = run(fs, ". /lib.sh; echo $sourced_var; sourced_fn").unwrap();
        assert_eq!(r.stdout, b"yes\nfn\n");
    }

    #[test]
    fn xargs_builtin() {
        assert_eq!(out("echo 'a b c' | xargs echo got"), "got a b c\n");
        assert_eq!(out("printf '1 2 3 4' | xargs -n 2 echo p"), "p 1 2\np 3 4\n");
    }

    #[test]
    fn globbing_in_commands() {
        let fs = fs_with(&[("/d/a.txt", "1\n"), ("/d/b.txt", "2\n"), ("/d/c.md", "3\n")]);
        let r = run(fs, "cd /d; cat *.txt").unwrap();
        assert_eq!(r.stdout, b"1\n2\n");
    }

    #[test]
    fn command_not_found_is_127() {
        let r = sh("definitely-not-a-command");
        assert_eq!(r.status, 127);
    }

    #[test]
    fn background_runs_isolated() {
        assert_eq!(out("x=1 & echo $?"), "0\n");
    }

    #[test]
    fn tilde_in_command_line() {
        assert_eq!(out("echo ~"), "/home/user\n");
    }

    #[test]
    fn command_v_and_type() {
        assert_eq!(out("command -v sort"), "sort\n");
        let r = sh("command -v no-such-cmd");
        assert_eq!(r.status, 1);
        assert!(out("type cd").contains("builtin"));
    }

    #[test]
    fn the_spell_script_runs_sequentially() {
        let doc = "The quick BROWN fox\nJumps Over the LAZY dog\n";
        let dict = "brown\ndog\nfox\njumps\nlazy\nover\nquick\nthe\n";
        let fs = fs_with(&[("/a.txt", doc), ("/usr/dict", dict)]);
        let script = r#"
DICT=/usr/dict
FILES="/a.txt"
cat $FILES | tr A-Z a-z | tr -cs A-Za-z '\n' | sort -u | comm -13 $DICT -
"#;
        let r = run(fs, script).unwrap();
        assert_eq!(r.status, 0);
        assert_eq!(r.stdout, b"");
    }

    #[test]
    fn the_temperature_pipeline_runs() {
        let mut rec = String::new();
        for t in [100, 450, 9990, 275] {
            let mut line = "x".repeat(88);
            line.push_str(&format!("{t:04}"));
            line.push_str("trail\n");
            rec.push_str(&line);
        }
        let fs = fs_with(&[("/noaa", &rec)]);
        let r = run(
            fs,
            "cut -c 89-92 < /noaa | grep -v 999 | sort -rn | head -n1",
        )
        .unwrap();
        assert_eq!(r.stdout, b"0450\n");
    }

    #[test]
    fn nested_functions_and_recursion() {
        assert_eq!(
            out(
                "fact() { if [ $1 -le 1 ]; then echo 1; else \
                 prev=$(fact $(($1 - 1))); echo $(($1 * prev)); fi; }; fact 5"
            ),
            "120\n"
        );
    }

    #[test]
    fn unknown_pipeline_stage_is_error_status() {
        let r = sh("echo x | definitely-not-here | cat");
        // Last stage (cat) decides: it succeeds with empty input.
        assert_eq!(r.status, 0);
        assert!(String::from_utf8_lossy(&r.stderr).contains("not found"));
    }

    #[test]
    fn dev_null_redirect() {
        assert_eq!(out("echo noisy > /dev/null; echo quiet"), "quiet\n");
    }
}
