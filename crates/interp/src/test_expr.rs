//! The `test` / `[` expression language.

use jash_expand::ShellState;

/// Evaluates a `test` argument vector. Returns the exit status
/// (0 = true, 1 = false, 2 = usage error).
pub fn eval_test(state: &ShellState, args: &[String]) -> i32 {
    let mut p = TestParser { state, args, pos: 0 };
    match p.or_expr() {
        Some(v) if p.pos == args.len() => {
            if v {
                0
            } else {
                1
            }
        }
        _ => {
            // POSIX special cases by argument count.
            match args.len() {
                0 => 1,
                1 => {
                    if args[0].is_empty() {
                        1
                    } else {
                        0
                    }
                }
                _ => 2,
            }
        }
    }
}

struct TestParser<'a> {
    state: &'a ShellState,
    args: &'a [String],
    pos: usize,
}

impl<'a> TestParser<'a> {
    fn peek(&self) -> Option<&str> {
        self.args.get(self.pos).map(|s| s.as_str())
    }

    fn bump(&mut self) -> Option<&'a str> {
        let v = self.args.get(self.pos).map(|s| s.as_str());
        if v.is_some() {
            self.pos += 1;
        }
        v
    }

    fn or_expr(&mut self) -> Option<bool> {
        let mut v = self.and_expr()?;
        while self.peek() == Some("-o") {
            self.pos += 1;
            let rhs = self.and_expr()?;
            v = v || rhs;
        }
        Some(v)
    }

    fn and_expr(&mut self) -> Option<bool> {
        let mut v = self.unary_expr()?;
        while self.peek() == Some("-a") {
            self.pos += 1;
            let rhs = self.unary_expr()?;
            v = v && rhs;
        }
        Some(v)
    }

    fn unary_expr(&mut self) -> Option<bool> {
        match self.peek() {
            Some("!") => {
                self.pos += 1;
                Some(!self.unary_expr()?)
            }
            Some("(") => {
                self.pos += 1;
                let v = self.or_expr()?;
                if self.bump() != Some(")") {
                    return None;
                }
                Some(v)
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Option<bool> {
        let first = self.bump()?;
        // Unary operators.
        if first.starts_with('-') && first.len() == 2 && self.peek().is_some() {
            // Binary op could also start with '-': look ahead.
            let is_unary = matches!(
                first,
                "-e" | "-f" | "-d" | "-s" | "-r" | "-w" | "-x" | "-z" | "-n" | "-t"
            );
            if is_unary {
                let operand = self.bump()?;
                return Some(self.unary_op(first, operand));
            }
        }
        // Binary operators.
        if let Some(op) = self.peek() {
            let is_binary = matches!(
                op,
                "=" | "!=" | "-eq" | "-ne" | "-lt" | "-le" | "-gt" | "-ge"
            );
            if is_binary {
                let op = self.bump()?;
                let rhs = self.bump()?;
                return self.binary_op(first, op, rhs);
            }
        }
        // Bare string: true iff nonempty.
        Some(!first.is_empty())
    }

    fn unary_op(&self, op: &str, operand: &str) -> bool {
        let path = self.state.resolve_path(operand);
        match op {
            "-e" => self.state.fs.exists(&path),
            "-f" => self
                .state
                .fs
                .metadata(&path)
                .map(|m| !m.is_dir)
                .unwrap_or(false),
            "-d" => self
                .state
                .fs
                .metadata(&path)
                .map(|m| m.is_dir)
                .unwrap_or(false),
            "-s" => self
                .state
                .fs
                .metadata(&path)
                .map(|m| m.size > 0)
                .unwrap_or(false),
            // Permission bits are not modeled; existence approximates.
            "-r" | "-w" | "-x" => self.state.fs.exists(&path),
            "-z" => operand.is_empty(),
            "-n" => !operand.is_empty(),
            "-t" => false,
            _ => false,
        }
    }

    fn binary_op(&self, lhs: &str, op: &str, rhs: &str) -> Option<bool> {
        match op {
            "=" => Some(lhs == rhs),
            "!=" => Some(lhs != rhs),
            _ => {
                let a: i64 = lhs.trim().parse().ok()?;
                let b: i64 = rhs.trim().parse().ok()?;
                Some(match op {
                    "-eq" => a == b,
                    "-ne" => a != b,
                    "-lt" => a < b,
                    "-le" => a <= b,
                    "-gt" => a > b,
                    "-ge" => a >= b,
                    _ => return None,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ShellState {
        let fs = jash_io::MemFs::new();
        fs.install("/file.txt", b"content".to_vec());
        fs.install("/dir/inner", b"".to_vec());
        fs.install("/empty", b"".to_vec());
        ShellState::new(std::sync::Arc::new(fs))
    }

    fn t(args: &[&str]) -> i32 {
        let s = state();
        let v: Vec<String> = args.iter().map(|a| a.to_string()).collect();
        eval_test(&s, &v)
    }

    #[test]
    fn string_tests() {
        assert_eq!(t(&["-z", ""]), 0);
        assert_eq!(t(&["-z", "x"]), 1);
        assert_eq!(t(&["-n", "x"]), 0);
        assert_eq!(t(&["abc", "=", "abc"]), 0);
        assert_eq!(t(&["abc", "!=", "abc"]), 1);
    }

    #[test]
    fn numeric_tests() {
        assert_eq!(t(&["3", "-lt", "5"]), 0);
        assert_eq!(t(&["5", "-le", "5"]), 0);
        assert_eq!(t(&["5", "-gt", "5"]), 1);
        assert_eq!(t(&["-1", "-ne", "1"]), 0);
    }

    #[test]
    fn file_tests() {
        assert_eq!(t(&["-e", "/file.txt"]), 0);
        assert_eq!(t(&["-f", "/file.txt"]), 0);
        assert_eq!(t(&["-d", "/file.txt"]), 1);
        assert_eq!(t(&["-d", "/dir"]), 0);
        assert_eq!(t(&["-s", "/file.txt"]), 0);
        assert_eq!(t(&["-s", "/empty"]), 1);
        assert_eq!(t(&["-e", "/missing"]), 1);
    }

    #[test]
    fn connectives_and_negation() {
        assert_eq!(t(&["!", "-e", "/missing"]), 0);
        assert_eq!(t(&["x", "-a", "y"]), 0);
        assert_eq!(t(&["x", "-a", ""]), 1);
        assert_eq!(t(&["", "-o", "y"]), 0);
        assert_eq!(t(&["(", "x", ")"]), 0);
    }

    #[test]
    fn bare_and_empty() {
        assert_eq!(t(&[]), 1);
        assert_eq!(t(&[""]), 1);
        assert_eq!(t(&["nonempty"]), 0);
    }

    #[test]
    fn bad_usage_is_2() {
        assert_eq!(t(&["1", "-eq", "not-a-number"]), 2);
    }
}
