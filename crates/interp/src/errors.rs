//! Interpreter errors and non-local control flow.

use jash_expand::ExpandError;
use std::fmt;

/// Non-local control transfers (`break`, `continue`, `return`, `exit`).
///
/// These travel the `Err` channel until the construct that handles them
/// (loops, function calls, the top level) catches them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// `break [n]`.
    Break(u32),
    /// `continue [n]`.
    Continue(u32),
    /// `return [status]`.
    Return(i32),
    /// `exit [status]` (or `set -e` firing).
    Exit(i32),
}

/// Anything that can abort evaluation.
#[derive(Debug)]
pub enum InterpError {
    /// Word expansion failed (`${x:?}`, bad arithmetic, `set -u` …).
    Expand(ExpandError),
    /// Underlying IO failed.
    Io(std::io::Error),
    /// Script syntax error (from `eval` / `.`-sourced text).
    Parse(jash_parser::ParseError),
    /// Non-local control flow (not really an error).
    Flow(Flow),
    /// Anything else fatal.
    Fatal(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Expand(e) => write!(f, "{e}"),
            InterpError::Io(e) => write!(f, "{e}"),
            InterpError::Parse(e) => write!(f, "{e}"),
            InterpError::Flow(flow) => write!(f, "uncaught control flow: {flow:?}"),
            InterpError::Fatal(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<ExpandError> for InterpError {
    fn from(e: ExpandError) -> Self {
        InterpError::Expand(e)
    }
}

impl From<std::io::Error> for InterpError {
    fn from(e: std::io::Error) -> Self {
        InterpError::Io(e)
    }
}

impl From<jash_parser::ParseError> for InterpError {
    fn from(e: jash_parser::ParseError) -> Self {
        InterpError::Parse(e)
    }
}

/// Interpreter result alias.
pub type Result<T> = std::result::Result<T, InterpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_displays() {
        let e = InterpError::Flow(Flow::Break(2));
        assert!(e.to_string().contains("Break"));
    }

    #[test]
    fn conversions() {
        let e: InterpError = ExpandError::DivideByZero.into();
        assert!(matches!(e, InterpError::Expand(_)));
        let e: InterpError = std::io::Error::other("x").into();
        assert!(matches!(e, InterpError::Io(_)));
    }
}
