//! Shell builtins.
//!
//! Special builtins (POSIX 2.14) affect the current shell environment and
//! cannot be shadowed by functions; regular builtins resolve after
//! functions. `xargs` is implemented here rather than in `jash-coreutils`
//! because it must call back into command execution.

use crate::errors::{Flow, InterpError, Result};
use crate::interp::Interpreter;
use crate::io::{InputBinding, LineStream, ShellIo};
use crate::test_expr::eval_test;
use bytes::Bytes;
use jash_expand::ShellState;
use jash_io::FsHandle;
use parking_lot::Mutex;
use std::sync::Arc;

/// POSIX special builtins we implement.
pub fn is_special_builtin(name: &str) -> bool {
    matches!(
        name,
        ":" | "." | "break" | "continue" | "eval" | "exit" | "export" | "return" | "set"
            | "shift" | "unset"
    )
}

/// All builtins (special or regular).
pub fn is_builtin(name: &str) -> bool {
    is_special_builtin(name)
        || matches!(
            name,
            "cd" | "pwd" | "read" | "test" | "[" | "local" | "wait" | "umask" | "xargs"
                | "command" | "type"
        )
}

/// Runs a builtin; `None` when `argv[0]` is not one.
pub fn run_builtin(
    interp: &mut Interpreter,
    state: &mut ShellState,
    argv: &[String],
    io: &ShellIo,
) -> Option<Result<i32>> {
    let name = argv[0].as_str();
    let args = &argv[1..];
    if !is_builtin(name) {
        return None;
    }
    Some(run_builtin_inner(interp, state, name, args, io))
}

fn run_builtin_inner(
    interp: &mut Interpreter,
    state: &mut ShellState,
    name: &str,
    args: &[String],
    io: &ShellIo,
) -> Result<i32> {
    match name {
        ":" => Ok(0),
        "true" => Ok(0),
        "false" => Ok(1),
        "exit" => {
            let status = args
                .first()
                .and_then(|a| a.parse().ok())
                .unwrap_or(state.last_status);
            Err(InterpError::Flow(Flow::Exit(status)))
        }
        "return" => {
            let status = args
                .first()
                .and_then(|a| a.parse().ok())
                .unwrap_or(state.last_status);
            Err(InterpError::Flow(Flow::Return(status)))
        }
        "break" | "continue" => {
            if state.loop_depth == 0 {
                return write_err(state, io, &format!("{name}: only meaningful in a loop\n"))
                    .map(|()| 1);
            }
            let n: u32 = args.first().and_then(|a| a.parse().ok()).unwrap_or(1);
            let n = n.max(1);
            Err(InterpError::Flow(if name == "break" {
                Flow::Break(n)
            } else {
                Flow::Continue(n)
            }))
        }
        "cd" => {
            let target = match args.first() {
                Some(t) => t.clone(),
                None => state.get_var("HOME").unwrap_or("/").to_string(),
            };
            let path = state.resolve_path(&target);
            match state.fs.metadata(&path) {
                Ok(m) if m.is_dir => {
                    state.cwd = path.clone();
                    state.set_var("PWD", path);
                    Ok(0)
                }
                Ok(_) => write_err(state, io, &format!("cd: {target}: not a directory\n"))
                    .map(|()| 1),
                Err(_) => write_err(
                    state,
                    io,
                    &format!("cd: {target}: no such file or directory\n"),
                )
                .map(|()| 1),
            }
        }
        "pwd" => {
            write_out(state, io, &format!("{}\n", state.cwd))?;
            Ok(0)
        }
        "export" => {
            for a in args {
                match a.split_once('=') {
                    Some((n, v)) => {
                        state.set_var(n, v);
                        state.export_var(n);
                    }
                    None => state.export_var(a),
                }
            }
            Ok(0)
        }
        "unset" => {
            let mut functions = false;
            for a in args {
                if a == "-f" {
                    functions = true;
                } else if a == "-v" {
                    functions = false;
                } else if functions {
                    state.unset_function(a);
                } else {
                    state.unset_var(a);
                }
            }
            Ok(0)
        }
        "set" => {
            let mut positional: Option<Vec<String>> = None;
            let mut i = 0;
            while i < args.len() {
                match args[i].as_str() {
                    "-e" => state.errexit = true,
                    "+e" => state.errexit = false,
                    "-u" => state.nounset = true,
                    "+u" => state.nounset = false,
                    "--" => {
                        positional = Some(args[i + 1..].to_vec());
                        break;
                    }
                    a if !a.starts_with('-') && !a.starts_with('+') => {
                        positional = Some(args[i..].to_vec());
                        break;
                    }
                    other => {
                        return write_err(
                            state,
                            io,
                            &format!("set: unsupported option {other}\n"),
                        )
                        .map(|()| 2);
                    }
                }
                i += 1;
            }
            if let Some(p) = positional {
                state.positional = p;
            }
            Ok(0)
        }
        "shift" => {
            let n: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(1);
            if n > state.positional.len() {
                return write_err(state, io, "shift: shift count out of range\n").map(|()| 1);
            }
            state.positional.drain(..n);
            Ok(0)
        }
        "read" => run_read(state, args, io),
        "test" => Ok(eval_test(state, args)),
        "[" => {
            if args.last().map(|s| s.as_str()) != Some("]") {
                return write_err(state, io, "[: missing `]`\n").map(|()| 2);
            }
            Ok(eval_test(state, &args[..args.len() - 1]))
        }
        "local" => {
            let Some(frame_idx) = interp.local_frames.len().checked_sub(1) else {
                return write_err(state, io, "local: can only be used in a function\n")
                    .map(|()| 1);
            };
            for a in args {
                let (n, v) = match a.split_once('=') {
                    Some((n, v)) => (n.to_string(), Some(v.to_string())),
                    None => (a.clone(), None),
                };
                let old = state.get_var(&n).map(|value| jash_expand::Var {
                    value: value.to_string(),
                    exported: false,
                    readonly: false,
                });
                interp.local_frames[frame_idx].push((n.clone(), old));
                state.set_var(&n, v.unwrap_or_default());
            }
            Ok(0)
        }
        "eval" => {
            let src = args.join(" ");
            if src.trim().is_empty() {
                return Ok(0);
            }
            let prog = jash_parser::parse(&src)?;
            interp.run_program(state, &prog, io)
        }
        "." => {
            let Some(path) = args.first() else {
                return write_err(state, io, ".: missing file operand\n").map(|()| 2);
            };
            let full = state.resolve_path(path);
            let src = jash_io::fs::read_to_string(state.fs.as_ref(), &full)
                .map_err(InterpError::Io)?;
            let prog = jash_parser::parse(&src)?;
            interp.run_program(state, &prog, io)
        }
        "wait" | "umask" => Ok(0),
        "command" => {
            if args.is_empty() {
                return Ok(0);
            }
            // `command -v name`: resolution query.
            if args[0] == "-v" {
                let Some(target) = args.get(1) else { return Ok(1) };
                let known = is_builtin(target)
                    || state.get_function(target).is_some()
                    || jash_coreutils::is_utility(target);
                if known {
                    write_out(state, io, &format!("{target}\n"))?;
                    return Ok(0);
                }
                return Ok(1);
            }
            interp.dispatch(state, args, io)
        }
        "type" => {
            let Some(target) = args.first() else { return Ok(1) };
            let kind = if is_builtin(target) {
                "builtin"
            } else if state.get_function(target).is_some() {
                "function"
            } else if jash_coreutils::is_utility(target) {
                "utility"
            } else {
                write_out(state, io, &format!("{target}: not found\n"))?;
                return Ok(1);
            };
            write_out(state, io, &format!("{target} is a {kind}\n"))?;
            Ok(0)
        }
        "xargs" => run_xargs(interp, state, args, io),
        _ => unreachable!("is_builtin checked"),
    }
}

fn write_out(state: &ShellState, io: &ShellIo, msg: &str) -> Result<()> {
    let mut out = io.stdout.open(&state.fs)?;
    out.write_chunk(Bytes::copy_from_slice(msg.as_bytes()))?;
    out.finish()?;
    Ok(())
}

fn write_err(state: &ShellState, io: &ShellIo, msg: &str) -> Result<()> {
    let mut err = io.stderr.open(&state.fs)?;
    err.write_chunk(Bytes::copy_from_slice(msg.as_bytes()))?;
    Ok(())
}

/// Converts a binding into a persistent stream binding (idempotent).
pub fn persistent_input(binding: &InputBinding, fs: &FsHandle) -> Result<InputBinding> {
    match binding {
        InputBinding::Stream(_) => Ok(binding.clone()),
        other => {
            let stream = other.open(fs)?;
            Ok(InputBinding::Stream(Arc::new(Mutex::new(LineStream::new(
                stream,
            )))))
        }
    }
}

fn run_read(state: &mut ShellState, args: &[String], io: &ShellIo) -> Result<i32> {
    let vars: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();
    if vars.is_empty() {
        return write_err(state, io, "read: missing variable name\n").map(|()| 2);
    }
    let line = match &io.stdin {
        InputBinding::Stream(shared) => shared.lock().read_line()?,
        other => {
            // One-shot: open, take the first line, drop the rest.
            let stream = other.open(&state.fs)?;
            let mut ls = LineStream::new(stream);
            ls.read_line()?
        }
    };
    let Some(line) = line else {
        // EOF: variables get emptied, status 1.
        for v in vars {
            state.set_var(v, "");
        }
        return Ok(1);
    };
    let text = String::from_utf8_lossy(&line).into_owned();
    let ifs = state.ifs();
    let mut fields: Vec<&str> = if ifs.is_empty() {
        vec![text.as_str()]
    } else {
        text.split(|c| ifs.contains(c))
            .filter(|s| !s.is_empty())
            .collect()
    };
    for (i, v) in vars.iter().enumerate() {
        let last = i + 1 == vars.len();
        let value = if last {
            fields.split_off(0).join(" ")
        } else if fields.is_empty() {
            String::new()
        } else {
            fields.remove(0).to_string()
        };
        state.set_var(v, value);
    }
    Ok(0)
}

fn run_xargs(
    interp: &mut Interpreter,
    state: &mut ShellState,
    args: &[String],
    io: &ShellIo,
) -> Result<i32> {
    let mut batch: Option<usize> = None;
    let mut rest = args;
    if rest.first().map(|s| s.as_str()) == Some("-n") {
        batch = rest.get(1).and_then(|v| v.parse().ok());
        if batch.is_none() {
            return write_err(state, io, "xargs: invalid -n\n").map(|()| 2);
        }
        rest = &rest[2..];
    }
    let command: Vec<String> = if rest.is_empty() {
        vec!["echo".to_string()]
    } else {
        rest.to_vec()
    };

    // Gather all stdin items (whitespace-separated words).
    let data = match &io.stdin {
        InputBinding::Stream(shared) => shared.lock().read_rest()?,
        other => {
            let mut s = other.open(&state.fs)?;
            jash_io::stream::read_all(s.as_mut())?
        }
    };
    let text = String::from_utf8_lossy(&data);
    let items: Vec<String> = text.split_whitespace().map(str::to_string).collect();
    if items.is_empty() {
        return Ok(0);
    }
    let batch = batch.unwrap_or(items.len());
    let inner_io = ShellIo {
        stdin: InputBinding::Empty,
        stdout: io.stdout.clone(),
        stderr: io.stderr.clone(),
    };
    let mut status = 0;
    for chunk in items.chunks(batch.max(1)) {
        let mut argv = command.clone();
        argv.extend(chunk.iter().cloned());
        let s = interp.dispatch(state, &argv, &inner_io)?;
        if s != 0 {
            status = 123;
        }
    }
    Ok(status)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_classification() {
        assert!(is_special_builtin("exit"));
        assert!(is_special_builtin("export"));
        assert!(!is_special_builtin("cd"));
        assert!(is_builtin("cd"));
        assert!(is_builtin("["));
        assert!(!is_builtin("grep"));
    }
}
