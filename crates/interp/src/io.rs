//! Rebindable standard-IO descriptors for the interpreter.
//!
//! Redirects and pipelines work by *rebinding* rather than by mutating
//! global fds: a [`ShellIo`] value holds cheaply-cloneable bindings for
//! fds 0/1/2, and command execution materializes them into concrete
//! streams/sinks at the last moment. Bindings are thread-safe so pipeline
//! stages can run concurrently.

use bytes::Bytes;
use jash_io::{ByteStream, FsHandle, MemStream, PipeReader, PipeWriter, Sink};
use parking_lot::Mutex;
use std::io;
use std::sync::Arc;

/// Where a command's stdin comes from.
#[derive(Clone)]
pub enum InputBinding {
    /// No input (immediate EOF).
    Empty,
    /// A file on the virtual filesystem (absolute path).
    File(String),
    /// In-memory bytes (here-documents, buffered pipeline stages).
    Memory(Arc<Vec<u8>>),
    /// The read end of a pipe; consumed by the first opener.
    Pipe(Arc<Mutex<Option<PipeReader>>>),
    /// A persistent shared cursor: successive consumers continue where
    /// the previous one stopped (`{ read a; read b; } < f`).
    Stream(Arc<Mutex<LineStream>>),
}

impl InputBinding {
    /// Materializes the binding into a stream.
    pub fn open(&self, fs: &FsHandle) -> io::Result<Box<dyn ByteStream>> {
        Ok(match self {
            InputBinding::Empty => Box::new(MemStream::empty()),
            InputBinding::File(path) => {
                Box::new(jash_io::fs::FileStream::open(fs.as_ref(), path)?)
            }
            InputBinding::Memory(data) => {
                Box::new(MemStream::from_bytes(Bytes::from(data.as_ref().clone())))
            }
            InputBinding::Pipe(slot) => match slot.lock().take() {
                Some(r) => Box::new(r),
                None => Box::new(MemStream::empty()),
            },
            InputBinding::Stream(shared) => Box::new(SharedCursorStream(Arc::clone(shared))),
        })
    }
}

/// A stream with an incremental line cursor.
pub struct LineStream {
    stream: Box<dyn ByteStream>,
    lb: jash_io::LineBuffer,
    eof: bool,
}

impl LineStream {
    /// Wraps a raw stream.
    pub fn new(stream: Box<dyn ByteStream>) -> Self {
        LineStream {
            stream,
            lb: jash_io::LineBuffer::new(),
            eof: false,
        }
    }

    /// Reads the next line (without the newline); `None` at EOF.
    pub fn read_line(&mut self) -> io::Result<Option<Vec<u8>>> {
        loop {
            if let Some(line) = self.lb.next_line() {
                let mut v = line.to_vec();
                if v.ends_with(b"\n") {
                    v.pop();
                }
                return Ok(Some(v));
            }
            if self.eof {
                return Ok(self.lb.take_rest().map(|b| b.to_vec()));
            }
            match self.stream.next_chunk()? {
                Some(chunk) => self.lb.push(&chunk),
                None => self.eof = true,
            }
        }
    }

    /// Drains everything left.
    pub fn read_rest(&mut self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        if let Some(rest) = self.lb.take_rest() {
            out.extend_from_slice(&rest);
        }
        while let Some(chunk) = self.stream.next_chunk()? {
            out.extend_from_slice(&chunk);
        }
        self.eof = true;
        Ok(out)
    }
}

struct SharedCursorStream(Arc<Mutex<LineStream>>);

impl ByteStream for SharedCursorStream {
    fn next_chunk(&mut self) -> io::Result<Option<Bytes>> {
        let data = self.0.lock().read_rest()?;
        if data.is_empty() {
            Ok(None)
        } else {
            Ok(Some(Bytes::from(data)))
        }
    }
}

/// Where a command's stdout/stderr goes.
#[derive(Clone)]
pub enum OutputBinding {
    /// Append into a shared in-memory buffer (captures).
    Shared(Arc<Mutex<Vec<u8>>>),
    /// A file on the virtual filesystem.
    File {
        /// Absolute path.
        path: String,
        /// `>>` instead of `>`.
        append: bool,
    },
    /// Discard.
    Null,
    /// The write end of a pipe; consumed by the first opener.
    Pipe(Arc<Mutex<Option<PipeWriter>>>),
}

impl OutputBinding {
    /// Two bindings denote the same destination (for `2>&1` dedup).
    pub fn same_target(&self, other: &OutputBinding) -> bool {
        match (self, other) {
            (OutputBinding::Shared(a), OutputBinding::Shared(b)) => Arc::ptr_eq(a, b),
            (
                OutputBinding::File { path: a, .. },
                OutputBinding::File { path: b, .. },
            ) => a == b,
            (OutputBinding::Null, OutputBinding::Null) => true,
            (OutputBinding::Pipe(a), OutputBinding::Pipe(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Materializes the binding into a sink.
    pub fn open(&self, fs: &FsHandle) -> io::Result<Box<dyn Sink>> {
        Ok(match self {
            OutputBinding::Shared(buf) => Box::new(SharedSink(Arc::clone(buf))),
            OutputBinding::File { path, append } => {
                Box::new(jash_io::fs::FileSink::create(fs.as_ref(), path, *append)?)
            }
            OutputBinding::Null => Box::new(NullSink),
            OutputBinding::Pipe(slot) => match slot.lock().take() {
                Some(w) => Box::new(w),
                None => Box::new(NullSink),
            },
        })
    }

    /// Opens stdout and stderr together, sharing the underlying sink when
    /// they point at the same file (so `>f 2>&1` does not truncate twice).
    pub fn open_pair(
        out: &OutputBinding,
        err: &OutputBinding,
        fs: &FsHandle,
    ) -> io::Result<(Box<dyn Sink>, Box<dyn Sink>)> {
        if out.same_target(err) {
            if let OutputBinding::File { .. } = out {
                let inner: Arc<Mutex<Box<dyn Sink>>> = Arc::new(Mutex::new(out.open(fs)?));
                return Ok((
                    Box::new(FanInSink(Arc::clone(&inner))),
                    Box::new(FanInSink(inner)),
                ));
            }
        }
        Ok((out.open(fs)?, err.open(fs)?))
    }
}

/// The three standard descriptors.
#[derive(Clone)]
pub struct ShellIo {
    /// fd 0.
    pub stdin: InputBinding,
    /// fd 1.
    pub stdout: OutputBinding,
    /// fd 2.
    pub stderr: OutputBinding,
}

/// A shared capture buffer (stdout or stderr of a captured session).
pub type SharedBuf = Arc<Mutex<Vec<u8>>>;

impl ShellIo {
    /// Captured stdio: fresh buffers for stdout/stderr, empty stdin.
    /// Returns the io and the two buffers.
    pub fn captured() -> (Self, SharedBuf, SharedBuf) {
        let out = Arc::new(Mutex::new(Vec::new()));
        let err = Arc::new(Mutex::new(Vec::new()));
        (
            ShellIo {
                stdin: InputBinding::Empty,
                stdout: OutputBinding::Shared(Arc::clone(&out)),
                stderr: OutputBinding::Shared(Arc::clone(&err)),
            },
            out,
            err,
        )
    }
}

struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl Sink for SharedSink {
    fn write_chunk(&mut self, chunk: Bytes) -> io::Result<()> {
        self.0.lock().extend_from_slice(&chunk);
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

struct NullSink;

impl Sink for NullSink {
    fn write_chunk(&mut self, _chunk: Bytes) -> io::Result<()> {
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

struct FanInSink(Arc<Mutex<Box<dyn Sink>>>);

impl Sink for FanInSink {
    fn write_chunk(&mut self, chunk: Bytes) -> io::Result<()> {
        self.0.lock().write_chunk(chunk)
    }

    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_input_roundtrip() {
        let fs = jash_io::mem_fs();
        let b = InputBinding::Memory(Arc::new(b"data".to_vec()));
        let mut s = b.open(&fs).unwrap();
        assert_eq!(jash_io::stream::read_all(s.as_mut()).unwrap(), b"data");
    }

    #[test]
    fn shared_output_collects() {
        let fs = jash_io::mem_fs();
        let (io, out, _) = ShellIo::captured();
        let mut sink = io.stdout.open(&fs).unwrap();
        sink.write_chunk(Bytes::from_static(b"hello")).unwrap();
        assert_eq!(&*out.lock(), b"hello");
    }

    #[test]
    fn file_pair_shares_handle() {
        let fs = jash_io::mem_fs();
        let out = OutputBinding::File {
            path: "/log".into(),
            append: false,
        };
        let err = out.clone();
        let (mut o, mut e) = OutputBinding::open_pair(&out, &err, &fs).unwrap();
        o.write_chunk(Bytes::from_static(b"from-out\n")).unwrap();
        e.write_chunk(Bytes::from_static(b"from-err\n")).unwrap();
        drop((o, e));
        assert_eq!(
            jash_io::fs::read_to_vec(fs.as_ref(), "/log").unwrap(),
            b"from-out\nfrom-err\n"
        );
    }

    #[test]
    fn pipe_binding_consumed_once() {
        let fs = jash_io::mem_fs();
        let (w, r) = jash_io::pipe(2);
        let b = InputBinding::Pipe(Arc::new(Mutex::new(Some(r))));
        drop(w);
        let mut s1 = b.open(&fs).unwrap();
        assert!(s1.next_chunk().unwrap().is_none());
        // A second open yields empty rather than panicking.
        let mut s2 = b.open(&fs).unwrap();
        assert!(s2.next_chunk().unwrap().is_none());
    }
}
