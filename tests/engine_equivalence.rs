//! The reproduction's soundness claim, end to end: for every script in a
//! corpus, the three engines (plain interpretation, PaSh-style AOT, Jash
//! JIT — the latter two with forced-aggressive planning so rewrites
//! actually fire) produce byte-identical stdout and equal exit status.

use jash::core::{Engine, Jash};
use jash::cost::{MachineProfile, PlannerOptions};
use jash::expand::ShellState;
use jash::io::FsHandle;
use std::sync::Arc;

fn machine() -> MachineProfile {
    MachineProfile {
        cores: 8,
        disk: jash::io::DiskProfile::ramdisk(),
        mem_mb: 8 * 1024,
    }
}

fn staged_fs() -> FsHandle {
    let fs = jash::io::mem_fs();
    let mixed: String = (0..3000)
        .map(|i| format!("Word{} mIxEd {} shell pipeline {}\n", i % 71, (i * 37) % 900, i))
        .collect();
    let nums: String = (0..2000).map(|i| format!("{}\n", (i * 7919) % 500)).collect();
    let dict = "alpha\nbeta\ngamma\nmixed\npipeline\nshell\nword\n";
    jash::io::fs::write_file(fs.as_ref(), "/data/mixed.txt", mixed.as_bytes()).unwrap();
    jash::io::fs::write_file(fs.as_ref(), "/data/nums.txt", nums.as_bytes()).unwrap();
    jash::io::fs::write_file(fs.as_ref(), "/data/dict.txt", dict.as_bytes()).unwrap();
    fs
}

fn run(engine: Engine, src: &str, aggressive: bool) -> (i32, Vec<u8>) {
    let fs = staged_fs();
    let mut state = ShellState::new(fs);
    let mut shell = Jash::new(engine, machine());
    if aggressive {
        shell.planner = PlannerOptions {
            min_speedup: 0.0,
            force_width: Some(4),
            ..Default::default()
        };
    }
    let r = shell.run_script(&mut state, src).expect("script runs");
    (r.status, r.stdout)
}

/// Scripts spanning the optimizable fragment and its boundaries.
const CORPUS: &[&str] = &[
    "cat /data/mixed.txt | tr A-Z a-z | sort | head -n5",
    "cat /data/mixed.txt | tr -cs A-Za-z '\\n' | sort -u | comm -13 /data/dict.txt -",
    "sort -n /data/nums.txt | uniq -c | sort -rn | head -n3",
    "grep -c shell /data/mixed.txt",
    "cat /data/nums.txt /data/nums.txt | sort -n | uniq | wc -l",
    "cut -c 1-6 /data/mixed.txt | sort -u | head -n4",
    "F=/data/mixed.txt; cat $F | grep -v Word3 | wc -l",
    "sed s/Word/W/g /data/mixed.txt | head -n2",
    "cat /data/mixed.txt | rev | rev | head -n3",
    "X=shell; grep $X /data/mixed.txt | wc -l",
    // Boundary cases: fall back to interpretation, must still agree.
    "cat /data/mixed.txt | head -n2 | tr a-z A-Z",
    "echo one; echo two | tr a-z A-Z; echo three",
    "if grep -q shell /data/mixed.txt; then echo found; fi",
    "for w in alpha beta; do grep -c $w /data/dict.txt; done",
    "cat /data/nums.txt | sort -n > /tmp/sorted; head -n1 /tmp/sorted",
];

#[test]
fn engines_agree_on_stdout_and_status() {
    for src in CORPUS {
        let (bash_st, bash_out) = run(Engine::Bash, src, false);
        for engine in [Engine::PashAot, Engine::JashJit] {
            let (st, out) = run(engine, src, true);
            assert_eq!(
                bash_st, st,
                "status diverged for `{src}` under {engine}"
            );
            assert_eq!(
                String::from_utf8_lossy(&bash_out),
                String::from_utf8_lossy(&out),
                "stdout diverged for `{src}` under {engine}"
            );
        }
    }
}

#[test]
fn jit_actually_optimizes_most_of_the_corpus() {
    let mut optimized = 0;
    let mut total = 0;
    for src in CORPUS {
        let fs = staged_fs();
        let mut state = ShellState::new(fs);
        let mut shell = Jash::new(Engine::JashJit, machine());
        shell.planner = PlannerOptions {
            min_speedup: 0.0,
            force_width: Some(4),
            ..Default::default()
        };
        shell.run_script(&mut state, src).unwrap();
        total += 1;
        if shell.trace.iter().any(jash::core::TraceEvent::was_optimized) {
            optimized += 1;
        }
    }
    assert!(
        optimized * 2 >= total,
        "only {optimized}/{total} scripts optimized — the fragment shrank"
    );
}

#[test]
fn widths_do_not_change_output() {
    let src = "cat /data/mixed.txt | tr A-Z a-z | sort -u";
    let (_, reference) = run(Engine::Bash, src, false);
    for width in [2, 3, 5, 8, 16] {
        let fs = staged_fs();
        let mut state = ShellState::new(fs);
        let mut shell = Jash::new(Engine::JashJit, machine());
        shell.planner.force_width = Some(width);
        let r = shell.run_script(&mut state, src).unwrap();
        assert_eq!(r.stdout, reference, "width {width} diverged");
    }
}

#[test]
fn optimized_file_writes_match_interpreted_ones() {
    let src = "cat /data/mixed.txt | tr A-Z a-z | sort > /out.txt";
    let fs_a = staged_fs();
    let mut state = ShellState::new(Arc::clone(&fs_a));
    Jash::new(Engine::Bash, machine())
        .run_script(&mut state, src)
        .unwrap();
    let expected = jash::io::fs::read_to_vec(fs_a.as_ref(), "/out.txt").unwrap();

    let fs_b = staged_fs();
    let mut state = ShellState::new(Arc::clone(&fs_b));
    let mut shell = Jash::new(Engine::JashJit, machine());
    shell.planner.force_width = Some(4);
    shell.run_script(&mut state, src).unwrap();
    assert!(shell.trace.iter().any(jash::core::TraceEvent::was_optimized));
    let got = jash::io::fs::read_to_vec(fs_b.as_ref(), "/out.txt").unwrap();
    assert_eq!(expected, got);
}
