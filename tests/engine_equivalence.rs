//! The reproduction's soundness claim, end to end: for every script in a
//! corpus, the three engines (plain interpretation, PaSh-style AOT, Jash
//! JIT — the latter two with forced-aggressive planning so rewrites
//! actually fire) produce byte-identical stdout and equal exit status.

use jash::core::{Engine, Jash};
use jash::cost::{MachineProfile, PlannerOptions};
use jash::expand::ShellState;
use jash::io::FsHandle;
use std::sync::Arc;

fn machine() -> MachineProfile {
    MachineProfile {
        cores: 8,
        disk: jash::io::DiskProfile::ramdisk(),
        mem_mb: 8 * 1024,
    }
}

fn staged_fs() -> FsHandle {
    let fs = jash::io::mem_fs();
    let mixed: String = (0..3000)
        .map(|i| format!("Word{} mIxEd {} shell pipeline {}\n", i % 71, (i * 37) % 900, i))
        .collect();
    let nums: String = (0..2000).map(|i| format!("{}\n", (i * 7919) % 500)).collect();
    let dict = "alpha\nbeta\ngamma\nmixed\npipeline\nshell\nword\n";
    jash::io::fs::write_file(fs.as_ref(), "/data/mixed.txt", mixed.as_bytes()).unwrap();
    jash::io::fs::write_file(fs.as_ref(), "/data/nums.txt", nums.as_bytes()).unwrap();
    jash::io::fs::write_file(fs.as_ref(), "/data/dict.txt", dict.as_bytes()).unwrap();
    fs
}

fn run(engine: Engine, src: &str, aggressive: bool) -> (i32, Vec<u8>) {
    let fs = staged_fs();
    let mut state = ShellState::new(fs);
    let mut shell = Jash::new(engine, machine());
    if aggressive {
        shell.planner = PlannerOptions {
            min_speedup: 0.0,
            force_width: Some(4),
            ..Default::default()
        };
    }
    let r = shell.run_script(&mut state, src).expect("script runs");
    (r.status, r.stdout)
}

/// Scripts spanning the optimizable fragment and its boundaries.
const CORPUS: &[&str] = &[
    "cat /data/mixed.txt | tr A-Z a-z | sort | head -n5",
    "cat /data/mixed.txt | tr -cs A-Za-z '\\n' | sort -u | comm -13 /data/dict.txt -",
    "sort -n /data/nums.txt | uniq -c | sort -rn | head -n3",
    "grep -c shell /data/mixed.txt",
    "cat /data/nums.txt /data/nums.txt | sort -n | uniq | wc -l",
    "cut -c 1-6 /data/mixed.txt | sort -u | head -n4",
    "F=/data/mixed.txt; cat $F | grep -v Word3 | wc -l",
    "sed s/Word/W/g /data/mixed.txt | head -n2",
    "cat /data/mixed.txt | rev | rev | head -n3",
    "X=shell; grep $X /data/mixed.txt | wc -l",
    // Boundary cases: fall back to interpretation, must still agree.
    "cat /data/mixed.txt | head -n2 | tr a-z A-Z",
    "echo one; echo two | tr a-z A-Z; echo three",
    "if grep -q shell /data/mixed.txt; then echo found; fi",
    "for w in alpha beta; do grep -c $w /data/dict.txt; done",
    "cat /data/nums.txt | sort -n > /tmp/sorted; head -n1 /tmp/sorted",
];

#[test]
fn engines_agree_on_stdout_and_status() {
    for src in CORPUS {
        let (bash_st, bash_out) = run(Engine::Bash, src, false);
        for engine in [Engine::PashAot, Engine::JashJit] {
            let (st, out) = run(engine, src, true);
            assert_eq!(
                bash_st, st,
                "status diverged for `{src}` under {engine}"
            );
            assert_eq!(
                String::from_utf8_lossy(&bash_out),
                String::from_utf8_lossy(&out),
                "stdout diverged for `{src}` under {engine}"
            );
        }
    }
}

#[test]
fn jit_actually_optimizes_most_of_the_corpus() {
    let mut optimized = 0;
    let mut total = 0;
    for src in CORPUS {
        let fs = staged_fs();
        let mut state = ShellState::new(fs);
        let mut shell = Jash::new(Engine::JashJit, machine());
        shell.planner = PlannerOptions {
            min_speedup: 0.0,
            force_width: Some(4),
            ..Default::default()
        };
        shell.run_script(&mut state, src).unwrap();
        total += 1;
        if shell.trace.iter().any(jash::core::TraceEvent::was_optimized) {
            optimized += 1;
        }
    }
    assert!(
        optimized * 2 >= total,
        "only {optimized}/{total} scripts optimized — the fragment shrank"
    );
}

#[test]
fn widths_do_not_change_output() {
    let src = "cat /data/mixed.txt | tr A-Z a-z | sort -u";
    let (_, reference) = run(Engine::Bash, src, false);
    for width in [2, 3, 5, 8, 16] {
        let fs = staged_fs();
        let mut state = ShellState::new(fs);
        let mut shell = Jash::new(Engine::JashJit, machine());
        shell.planner.force_width = Some(width);
        let r = shell.run_script(&mut state, src).unwrap();
        assert_eq!(r.stdout, reference, "width {width} diverged");
    }
}

/// Runs `src` under `engine` with `plan` injected over the staged fs.
/// Returns status, stdout, and the *inner* fs for post-mortem inspection.
fn run_faulted(engine: Engine, src: &str, plan: jash::io::FaultPlan) -> (i32, Vec<u8>, FsHandle) {
    let inner = staged_fs();
    let faulty: FsHandle = jash::io::FaultFs::wrap(Arc::clone(&inner), plan);
    let mut state = ShellState::new(faulty);
    let mut shell = Jash::new(engine, machine());
    shell.planner = PlannerOptions {
        min_speedup: 0.0,
        force_width: Some(4),
        ..Default::default()
    };
    let r = shell.run_script(&mut state, src).expect("script runs");
    (r.status, r.stdout, inner)
}

/// Asserts no transactional staging file survived anywhere the scripts
/// write (the fs root and /tmp).
fn assert_no_staging_debris(fs: &FsHandle, ctx: &str) {
    for dir in ["/", "/tmp", "/data"] {
        for name in fs.list_dir(dir).unwrap_or_default() {
            assert!(
                !name.contains(".jash-stage-"),
                "{ctx}: staging debris {dir}/{name}"
            );
        }
    }
}

/// The fault matrix (satellite of the robustness tentpole): scripts from
/// the Figure 1 / `spell` family run under injected read errors,
/// mid-stream truncation, and open failures. All three engines must
/// report the same exit status and byte-identical stdout — the JIT by
/// discarding its optimized attempt and re-running sequentially — and no
/// partial or staging files may remain.
#[test]
fn engines_agree_under_injected_faults() {
    let scripts: &[&str] = &[
        // Figure 1's spell, dynamically expanded (the paper's headline).
        "F=/data/mixed.txt; cat $F | tr -cs A-Za-z '\\n' | sort -u | comm -13 /data/dict.txt -",
        "cat /data/mixed.txt | tr A-Z a-z | sort | head -n5",
        "cat /data/nums.txt | sort -n | uniq -c | sort -rn | head -n3",
        "cat /data/mixed.txt | tr A-Z a-z | sort > /fault-out.txt",
    ];
    type PlanFn = fn() -> jash::io::FaultPlan;
    let plans: &[(&str, PlanFn)] = &[
        ("read error mid-stream", || {
            jash::io::FaultPlan::new().read_error_at("/data/mixed.txt", 1024, "disk surface error")
        }),
        ("read error late (parallel-branch territory)", || {
            jash::io::FaultPlan::new().read_error_at("/data/mixed.txt", 60_000, "disk surface error")
        }),
        ("mid-stream truncation", || {
            jash::io::FaultPlan::new().truncate_at("/data/mixed.txt", 2048)
        }),
        ("open failure on the dictionary", || {
            jash::io::FaultPlan::new().open_error("/data/dict.txt", "permission denied")
        }),
        ("short reads (benign)", || {
            jash::io::FaultPlan::new().short_reads("/data/mixed.txt", 7)
        }),
    ];
    for src in scripts {
        for (fault_name, plan) in plans {
            let (bash_st, bash_out, bash_fs) = run_faulted(Engine::Bash, src, plan());
            for engine in [Engine::PashAot, Engine::JashJit] {
                let (st, out, fs) = run_faulted(engine, src, plan());
                assert_eq!(
                    bash_st, st,
                    "status diverged for `{src}` under {engine} with {fault_name}"
                );
                assert_eq!(
                    String::from_utf8_lossy(&bash_out),
                    String::from_utf8_lossy(&out),
                    "stdout diverged for `{src}` under {engine} with {fault_name}"
                );
                // Files written (or not written) must agree with the
                // sequential baseline, with no staging debris.
                assert_eq!(
                    jash::io::fs::read_to_vec(bash_fs.as_ref(), "/fault-out.txt").ok(),
                    jash::io::fs::read_to_vec(fs.as_ref(), "/fault-out.txt").ok(),
                    "file contents diverged for `{src}` under {engine} with {fault_name}"
                );
                assert_no_staging_debris(&fs, &format!("`{src}` under {engine} with {fault_name}"));
            }
        }
    }
}

/// The acceptance scenario, pinned explicitly: a read error in the
/// middle of the (parallelized) Figure 1 pipeline makes JashJit fall
/// back, and its observable behavior is byte-identical to the Bash
/// engine's.
#[test]
fn jit_fallback_is_byte_identical_to_bash_under_read_fault() {
    let src = "F=/data/mixed.txt; cat $F | tr A-Z a-z | sort -u > /spell.out";
    let plan =
        || jash::io::FaultPlan::new().read_error_at("/data/mixed.txt", 40_000, "disk surface error");
    let (bash_st, bash_out, bash_fs) = run_faulted(Engine::Bash, src, plan());

    let inner = staged_fs();
    let faulty: FsHandle = jash::io::FaultFs::wrap(Arc::clone(&inner), plan());
    let mut state = ShellState::new(faulty);
    let mut shell = Jash::new(Engine::JashJit, machine());
    shell.planner = PlannerOptions {
        min_speedup: 0.0,
        force_width: Some(4),
        ..Default::default()
    };
    let r = shell.run_script(&mut state, src).unwrap();

    // The optimized attempt really ran and really failed over.
    assert!(
        shell.trace.iter().any(jash::core::TraceEvent::failed_over),
        "expected a failover, trace: {:?}",
        shell.trace
    );
    assert_eq!(shell.runtime.regions_failed_over, 1);
    // Byte-identical observable behavior.
    assert_eq!(r.status, bash_st);
    assert_eq!(r.stdout, bash_out);
    assert_eq!(
        jash::io::fs::read_to_vec(bash_fs.as_ref(), "/spell.out").ok(),
        jash::io::fs::read_to_vec(inner.as_ref(), "/spell.out").ok()
    );
    assert_no_staging_debris(&inner, "acceptance scenario");
}

/// Transient (succeeds-on-retry) extension of the fault matrix: a fault
/// that clears on re-run must be absorbed *inside* the supervisor — the
/// JIT retries the optimized region with backoff and never falls over.
/// The faulted JIT run is compared against the CLEAN sequential baseline
/// (a once-fault consumed by the Bash engine surfaces as an error there,
/// so faulted-vs-faulted equality is not the interesting property; full
/// recovery to clean output is).
#[test]
fn jit_absorbs_transient_faults_without_failover() {
    let scripts: &[&str] = &[
        "cat /data/mixed.txt | tr A-Z a-z | sort | head -n5",
        "F=/data/mixed.txt; cat $F | tr -cs A-Za-z '\\n' | sort -u | comm -13 /data/dict.txt -",
        "cat /data/mixed.txt | tr A-Z a-z | sort -u > /fault-out.txt",
    ];
    let transient_at = |offset: u64| {
        jash::io::FaultPlan::new().rule(jash::io::fault::FaultRule {
            path: Some("/data/mixed.txt".into()),
            op: jash::io::fault::FaultOp::Read,
            trigger: jash::io::fault::Trigger::AtByte(offset),
            kind: jash::io::fault::FaultKind::Error {
                kind: std::io::ErrorKind::Other,
                msg: "injected: transient controller reset".into(),
            },
            once: true,
        })
    };
    for src in scripts {
        // Clean sequential baseline: the recovery target.
        let clean_fs = staged_fs();
        let mut state = ShellState::new(Arc::clone(&clean_fs));
        let clean = Jash::new(Engine::Bash, machine())
            .run_script(&mut state, src)
            .unwrap();
        for offset in [512u64, 40_000] {
            let inner = staged_fs();
            let faulty: FsHandle = jash::io::FaultFs::wrap(Arc::clone(&inner), transient_at(offset));
            let mut state = ShellState::new(faulty);
            let mut shell = Jash::new(Engine::JashJit, machine());
            shell.planner = PlannerOptions {
                min_speedup: 0.0,
                force_width: Some(4),
                ..Default::default()
            };
            let r = shell.run_script(&mut state, src).unwrap();
            let ctx = format!("`{src}` with transient read fault at byte {offset}");
            assert!(
                !shell.trace.iter().any(jash::core::TraceEvent::failed_over),
                "{ctx}: transient fault must be retried, not failed over:\n{}",
                shell.runtime.supervision.render()
            );
            assert_eq!(shell.runtime.regions_failed_over, 0, "{ctx}");
            assert!(
                shell.runtime.supervision.recoveries() >= 1,
                "{ctx}: expected an in-supervisor recovery:\n{}",
                shell.runtime.supervision.render()
            );
            assert!(
                shell.runtime.supervision.events.iter().any(|e| matches!(
                    e,
                    jash::core::SupervisionEvent::Backoff {
                        class: jash::core::ErrorClass::Transient,
                        ..
                    }
                )),
                "{ctx}: expected a transient backoff event:\n{}",
                shell.runtime.supervision.render()
            );
            assert_eq!(r.status, clean.status, "{ctx}: status");
            assert_eq!(
                String::from_utf8_lossy(&clean.stdout),
                String::from_utf8_lossy(&r.stdout),
                "{ctx}: stdout"
            );
            assert_eq!(
                jash::io::fs::read_to_vec(clean_fs.as_ref(), "/fault-out.txt").ok(),
                jash::io::fs::read_to_vec(inner.as_ref(), "/fault-out.txt").ok(),
                "{ctx}: file contents"
            );
            assert_no_staging_debris(&inner, &ctx);
        }
    }
}

#[test]
fn optimized_file_writes_match_interpreted_ones() {
    let src = "cat /data/mixed.txt | tr A-Z a-z | sort > /out.txt";
    let fs_a = staged_fs();
    let mut state = ShellState::new(Arc::clone(&fs_a));
    Jash::new(Engine::Bash, machine())
        .run_script(&mut state, src)
        .unwrap();
    let expected = jash::io::fs::read_to_vec(fs_a.as_ref(), "/out.txt").unwrap();

    let fs_b = staged_fs();
    let mut state = ShellState::new(Arc::clone(&fs_b));
    let mut shell = Jash::new(Engine::JashJit, machine());
    shell.planner.force_width = Some(4);
    shell.run_script(&mut state, src).unwrap();
    assert!(shell.trace.iter().any(jash::core::TraceEvent::was_optimized));
    let got = jash::io::fs::read_to_vec(fs_b.as_ref(), "/out.txt").unwrap();
    assert_eq!(expected, got);
}

/// Deterministic splitmix64 stream keying the random pipeline generator:
/// the same seed always produces the same script, so a reported failure
/// (`seed N: ...`) reproduces with `cargo test` and no date/host input.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick<'a>(&mut self, xs: &[&'a str]) -> &'a str {
        xs[(self.next() % xs.len() as u64) as usize]
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// Generates a random pipeline over the optimizable command set
/// (`cat/tr/sort/uniq/grep/cut/sed/rev/fold/head/comm`) with randomized
/// flags and stage count — scripts that sweep the fragment's surface far
/// more densely than the hand-written corpus above. The stage pool leans
/// toward stateless per-line commands so adjacent fusible runs (the
/// kernel-fusion substrate) occur on a healthy share of seeds.
fn random_pipeline(seed: u64) -> String {
    let mut rng = Rng(seed.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1));
    let source = rng.pick(&[
        "cat /data/mixed.txt",
        "cat /data/nums.txt",
        "cat /data/mixed.txt /data/nums.txt",
        "grep shell /data/mixed.txt",
        "cut -c 1-8 /data/mixed.txt",
    ]);
    let stages = [
        "tr a-z A-Z",
        "tr A-Z a-z",
        "tr -cs A-Za-z '\\n'",
        "tr -d 0-9",
        "sort",
        "sort -n",
        "sort -u",
        "sort -rn",
        "uniq",
        "uniq -c",
        "grep -v Word1",
        "grep shell",
        "grep -i SHELL",
        "grep -F pipeline",
        "cut -c 1-6",
        "cut -c 2-9",
        "sed s/Word/W/g",
        "sed s/shell/sh3ll/",
        "rev",
        "fold -w32",
        "head -n7",
        "head -n40",
    ];
    let mut out = String::from(source);
    for _ in 0..rng.range(1, 5) {
        out.push_str(" | ");
        out.push_str(rng.pick(&stages));
    }
    // Every fourth script or so gets the paper's spell-style tail, so the
    // sorted-merge + comm path stays well covered.
    if rng.next().is_multiple_of(4) {
        out.push_str(" | sort -u | comm -13 /data/dict.txt -");
    }
    out
}

/// Runs `src` under the aggressive JIT with a tracer attached; returns
/// status, stdout, and the drained trace records.
fn run_jit_traced(src: &str) -> (i32, Vec<u8>, Vec<jash::trace::Record>) {
    let fs = staged_fs();
    let mut state = ShellState::new(fs);
    let mut shell = Jash::new(Engine::JashJit, machine());
    shell.planner = PlannerOptions {
        min_speedup: 0.0,
        force_width: Some(4),
        ..Default::default()
    };
    let tracer = Arc::new(jash::trace::Tracer::new());
    shell.tracer = Some(Arc::clone(&tracer));
    let r = shell.run_script(&mut state, src).expect("script runs");
    (r.status, r.stdout, tracer.drain())
}

/// The randomized differential harness: for a fixed matrix of seeds, the
/// JIT (forced aggressive so rewrites actually fire) must match the
/// interpreter oracle on exit status and stdout bytes — and when a region
/// was optimized, its trace span must account for exactly the bytes the
/// script produced.
#[test]
fn randomized_pipelines_differential_vs_interpreter() {
    // `JASH_DIFF_SEEDS` widens the fixed matrix (CI runs more; the
    // default keeps `cargo test` brisk). Seeds are always 0..N, so any
    // failure report reproduces at every larger setting too.
    let seeds: u64 = std::env::var("JASH_DIFF_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(220);
    let mut optimized = 0usize;
    for seed in 0..seeds {
        let src = random_pipeline(seed);
        let (bash_st, bash_out) = run(Engine::Bash, &src, false);
        let (st, out, records) = run_jit_traced(&src);
        assert_eq!(bash_st, st, "status diverged for seed {seed}: `{src}`");
        assert_eq!(
            String::from_utf8_lossy(&bash_out),
            String::from_utf8_lossy(&out),
            "stdout diverged for seed {seed}: `{src}`"
        );
        for r in &records {
            let jash::trace::Record::Span { kind, .. } = r else {
                continue;
            };
            if kind != "region" || r.attr_str("action") != Some("optimized") {
                continue;
            }
            optimized += 1;
            // Single-statement scripts with no file sinks: the region's
            // traced output bytes are exactly the script's stdout.
            assert_eq!(
                r.attr_u64("bytes_out"),
                Some(out.len() as u64),
                "trace bytes_out diverged for seed {seed}: `{src}`"
            );
            assert!(
                r.attr_u64("width").unwrap_or(0) > 1,
                "optimized region without a width for seed {seed}: `{src}`"
            );
        }
    }
    let floor = (seeds / 5) as usize;
    assert!(
        optimized >= floor,
        "only {optimized} optimized regions across {seeds} seeds (floor {floor}) — the fragment shrank"
    );
}

/// Generates a random *control-flow* script: a pipeline-bearing loop or
/// branch whose body the JIT can only reach through the interpreter's
/// walk — the substrate of the expansion-boundary callout. Five classes,
/// cycled by seed: `for` over a word list, `for` over a glob, `for` over
/// a command substitution, a while-counter loop, and an `if`/`elif`
/// guard. Bodies mix dynamically-bound paths (`$f`), dynamic grep
/// operands (`$w`), assignments, and arithmetic — all things a static
/// (AOT) optimizer must decline but the JIT sees fully expanded.
fn random_control_flow(seed: u64) -> (u64, String) {
    let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(7));
    let class = seed % 5;
    // Bodies over a loop-bound *path* (cache-friendly: the plan key
    // normalizes paths out).
    let file_bodies = [
        "cat $f | tr A-Z a-z | sort -u | head -n6",
        "cat $f | grep -v Word1 | wc -l",
        "cat $f | tr -d 0-9 | sort | head -n4",
        "cat $f | cut -c 1-8 | sort -u | head -n5",
    ];
    // Bodies over a loop-bound *word* (re-planned per distinct operand).
    let word_bodies = [
        "cat /data/mixed.txt | grep -i $w | tr A-Z a-z | sort | head -n5",
        "grep $w /data/mixed.txt | wc -l",
        "cat /data/mixed.txt | grep $w | cut -c 1-12 | sort -u | head -n4",
    ];
    let words = ["shell", "pipeline", "mixed", "Word1", "Word7", "word"];
    let src = match class {
        0 => {
            let n = rng.range(2, 4);
            let mut list = Vec::new();
            for _ in 0..n {
                list.push(rng.pick(&words));
            }
            format!(
                "for w in {}; do {}; done\necho loop-done $w",
                list.join(" "),
                rng.pick(&word_bodies)
            )
        }
        1 => format!(
            "for f in /data/*.txt; do {}; done",
            rng.pick(&file_bodies)
        ),
        2 => format!(
            "for w in $(head -n{} /data/dict.txt); do {}; done",
            rng.range(2, 4),
            rng.pick(&word_bodies)
        ),
        3 => format!(
            "i=0\nwhile [ $i -lt {} ]; do\n  f=/data/mixed.txt\n  {}\n  i=$((i+1))\ndone\necho end $i",
            rng.range(2, 4),
            rng.pick(&file_bodies)
        ),
        _ => format!(
            "F=/data/mixed.txt\nif grep -q {} $F; then\n  cat $F | {}\nelif grep -q {} $F; then\n  cat $F | tr A-Z a-z | head -n3\nelse\n  echo neither\nfi",
            rng.pick(&words),
            rng.pick(&["tr A-Z a-z | sort | head -n5", "cut -c 1-10 | sort -u | head -n4"]),
            rng.pick(&words),
        ),
    };
    (class, src)
}

/// Runs `src` under an engine, returning status, stdout, AND stderr —
/// the control-flow differential compares all three.
fn run_full(engine: Engine, src: &str, aggressive: bool) -> (i32, Vec<u8>, Vec<u8>) {
    let fs = staged_fs();
    let mut state = ShellState::new(fs);
    let mut shell = Jash::new(engine, machine());
    if aggressive {
        shell.planner = PlannerOptions {
            min_speedup: 0.0,
            force_width: Some(4),
            ..Default::default()
        };
    }
    let r = shell.run_script(&mut state, src).expect("script runs");
    (r.status, r.stdout, r.stderr)
}

/// The control-flow differential harness (the tentpole's proof): for a
/// fixed seed matrix of loop/branch scripts, the JIT must match the
/// interpreter oracle byte-for-byte on stdout, stderr, and exit status —
/// and the trace must show `Action::Optimized` firing *inside* loop
/// bodies (regions carrying a `loop_iter` attribute) for every loop
/// class, plus optimized nested regions for the branch class. A JIT
/// that silently stopped reaching pipelines under control flow would
/// still pass the byte checks; the per-class floors catch that.
#[test]
fn control_flow_differential_vs_interpreter() {
    let seeds: u64 = std::env::var("JASH_DIFF_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(220);
    let mut class_optimized = [0usize; 5];
    let mut loop_body_optimized = 0usize;
    for seed in 0..seeds {
        let (class, src) = random_control_flow(seed);
        let (bash_st, bash_out, bash_err) = run_full(Engine::Bash, &src, false);

        let fs = staged_fs();
        let mut state = ShellState::new(fs);
        let mut shell = Jash::new(Engine::JashJit, machine());
        shell.planner = PlannerOptions {
            min_speedup: 0.0,
            force_width: Some(4),
            ..Default::default()
        };
        let tracer = Arc::new(jash::trace::Tracer::new());
        shell.tracer = Some(Arc::clone(&tracer));
        let r = shell.run_script(&mut state, &src).expect("script runs");

        assert_eq!(bash_st, r.status, "status diverged for seed {seed}:\n{src}");
        assert_eq!(
            String::from_utf8_lossy(&bash_out),
            String::from_utf8_lossy(&r.stdout),
            "stdout diverged for seed {seed}:\n{src}"
        );
        assert_eq!(
            String::from_utf8_lossy(&bash_err),
            String::from_utf8_lossy(&r.stderr),
            "stderr diverged for seed {seed}:\n{src}"
        );

        let mut seed_optimized = false;
        for rec in tracer.drain() {
            let jash::trace::Record::Span { ref kind, .. } = rec else {
                continue;
            };
            if kind != "region" || rec.attr_str("action") != Some("optimized") {
                continue;
            }
            seed_optimized = true;
            if rec.attr_u64("loop_iter").is_some() {
                loop_body_optimized += 1;
            }
        }
        if seed_optimized {
            class_optimized[class as usize] += 1;
        }
    }
    // Every class must have produced optimized regions on some seeds —
    // loops via their bodies, the if/elif class via its nested branches.
    for (class, count) in class_optimized.iter().enumerate() {
        assert!(
            *count >= 1,
            "control-flow class {class} never optimized across {seeds} seeds \
             — the expansion-boundary callout regressed"
        );
    }
    let floor = (seeds / 10).max(1) as usize;
    assert!(
        loop_body_optimized >= floor,
        "only {loop_body_optimized} optimized loop-body regions across {seeds} seeds \
         (floor {floor}) — loops are no longer JIT'd per iteration"
    );
}

/// The acceptance scenario pinned explicitly: a `for` loop over ≥8
/// glob-expanded file operands JIT-compiles every iteration's body, and
/// the trace proves the plan cache carried iterations 2..N
/// (`plan_cache_hit` on at least iterations − 1 regions).
#[test]
fn for_loop_over_eight_files_reuses_the_cached_plan() {
    let line = "Foxtrot ECHO delta bravo Alpha golf hotel india\n";
    let stage = || {
        let fs = jash::io::mem_fs();
        for i in 0..8 {
            jash::io::fs::write_file(
                fs.as_ref(),
                &format!("/corpus/doc{i}.txt"),
                line.repeat(400).as_bytes(),
            )
            .unwrap();
        }
        fs
    };
    let src = "for f in /corpus/*.txt; do cat $f | tr A-Z a-z | sort -u | head -n5; done";

    let mut state = ShellState::new(stage());
    let oracle = Jash::new(Engine::Bash, machine())
        .run_script(&mut state, src)
        .unwrap();

    let mut state = ShellState::new(stage());
    let mut shell = Jash::new(Engine::JashJit, machine());
    shell.planner = PlannerOptions {
        min_speedup: 0.0,
        force_width: Some(4),
        ..Default::default()
    };
    let tracer = Arc::new(jash::trace::Tracer::new());
    shell.tracer = Some(Arc::clone(&tracer));
    let r = shell.run_script(&mut state, src).unwrap();

    assert_eq!(oracle.status, r.status);
    assert_eq!(
        String::from_utf8_lossy(&oracle.stdout),
        String::from_utf8_lossy(&r.stdout),
        "JIT'd loop must match the interpreter byte for byte"
    );

    let records = tracer.drain();
    let optimized_in_loop = records
        .iter()
        .filter(|rec| {
            matches!(rec, jash::trace::Record::Span { kind, .. } if kind == "region")
                && rec.attr_str("action") == Some("optimized")
                && rec.attr_u64("loop_iter").is_some()
        })
        .count();
    assert!(
        optimized_in_loop >= 8,
        "all 8 iterations must optimize, got {optimized_in_loop}"
    );
    let cache_hits = records
        .iter()
        .filter(|rec| {
            matches!(rec, jash::trace::Record::Span { kind, .. } if kind == "region")
                && rec.attr("plan_cache_hit") == Some(&jash::trace::AttrValue::Bool(true))
        })
        .count();
    assert!(
        cache_hits >= 7,
        "iterations 2..8 must hit the plan cache, got {cache_hits} hit(s)"
    );
    assert_eq!(shell.plan_cache.misses, 1, "only iteration 1 plans");
}

/// The fusion-forced differential: the same seed matrix with kernel
/// fusion pinned on (`force_fusion`), so every pipeline with a fusible
/// run executes through a single-pass fused kernel. The fused engine
/// must stay byte-identical to the interpreter oracle, and the trace
/// must prove fusion actually fired — a fused region attribute AND a
/// `cmd: fused` kernel node span — on a healthy share of seeds.
#[test]
fn randomized_pipelines_differential_with_fusion_forced() {
    let seeds: u64 = std::env::var("JASH_DIFF_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(220);
    let mut fused_regions = 0usize;
    let mut kernel_spans = 0usize;
    for seed in 0..seeds {
        let src = random_pipeline(seed);
        let (bash_st, bash_out) = run(Engine::Bash, &src, false);

        let fs = staged_fs();
        let mut state = ShellState::new(fs);
        let mut shell = Jash::new(Engine::JashJit, machine());
        shell.planner = PlannerOptions {
            min_speedup: 0.0,
            force_fusion: true,
            ..Default::default()
        };
        let tracer = Arc::new(jash::trace::Tracer::new());
        shell.tracer = Some(Arc::clone(&tracer));
        let r = shell.run_script(&mut state, &src).expect("script runs");

        assert_eq!(bash_st, r.status, "status diverged for seed {seed}: `{src}`");
        assert_eq!(
            String::from_utf8_lossy(&bash_out),
            String::from_utf8_lossy(&r.stdout),
            "fused stdout diverged for seed {seed}: `{src}`"
        );
        for rec in tracer.drain() {
            let jash::trace::Record::Span { ref kind, .. } = rec else {
                continue;
            };
            if kind == "region"
                && rec.attr("fused") == Some(&jash::trace::AttrValue::Bool(true))
            {
                fused_regions += 1;
                assert!(
                    rec.attr_u64("nodes_fused").unwrap_or(0) >= 2,
                    "fused region without stages for seed {seed}: `{src}`"
                );
            }
            if kind == "node" && rec.attr_str("cmd") == Some("fused") {
                kernel_spans += 1;
            }
        }
    }
    // Fusion must actually exercise on this matrix, not vacuously pass.
    let floor = (seeds / 8).max(1) as usize;
    assert!(
        fused_regions >= floor && kernel_spans >= floor,
        "fusion fired on {fused_regions} region(s) / {kernel_spans} kernel span(s) \
         across {seeds} seeds (floor {floor}) — the fusible fragment shrank"
    );
}
