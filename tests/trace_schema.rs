//! Trace schema compatibility, end to end: a live session's trace must
//! survive the JSONL round trip through the versioned parser with every
//! record type intact, every executed region must carry the attributes
//! the observability layer promises (action, width, bytes, wall time),
//! and resumed runs must tag replayed regions as `resumed`.

use jash::core::{Engine, Jash};
use jash::cost::{MachineProfile, PlannerOptions};
use jash::expand::ShellState;
use jash::trace::{parse_jsonl, Record, Tracer};
use std::sync::Arc;

fn machine() -> MachineProfile {
    MachineProfile {
        cores: 4,
        disk: jash::io::DiskProfile::ramdisk(),
        mem_mb: 4 * 1024,
    }
}

fn eager() -> PlannerOptions {
    PlannerOptions {
        min_speedup: 0.0,
        force_width: Some(4),
        ..Default::default()
    }
}

fn staged_fs() -> jash::io::FsHandle {
    let fs = jash::io::mem_fs();
    let doc: String = (0..2000)
        .map(|i| format!("Word{} shell pipeline {}\n", i % 53, i))
        .collect();
    jash::io::fs::write_file(fs.as_ref(), "/in.txt", doc.as_bytes()).unwrap();
    fs
}

/// Runs a multi-statement script under a traced, eager JIT and returns
/// the run result plus drained records.
fn traced_run(src: &str) -> (jash::interp::RunResult, Vec<Record>) {
    let fs = staged_fs();
    let mut state = ShellState::new(fs);
    let mut shell = Jash::new(Engine::JashJit, machine());
    shell.planner = eager();
    let tracer = Arc::new(Tracer::new());
    shell.tracer = Some(Arc::clone(&tracer));
    let r = shell.run_script(&mut state, src).expect("script runs");
    (r, tracer.drain())
}

#[test]
fn live_trace_round_trips_through_versioned_parser() {
    // One optimized pipeline, one interpreted statement: the trace holds
    // run/region/node spans, histograms, and (when journaled) gauges.
    let (r, records) = traced_run("cat /in.txt | tr a-z A-Z | sort | head -n5\necho done");
    assert_eq!(r.status, 0);
    assert!(!records.is_empty());

    let jsonl: String = records
        .iter()
        .map(|rec| format!("{}\n", rec.to_json_line()))
        .collect();
    let reparsed = parse_jsonl(&jsonl).expect("live trace parses");
    assert_eq!(
        records, reparsed,
        "schema round trip must be lossless for a live trace"
    );

    // All three span kinds and at least one histogram made the trip.
    for kind in ["run", "region", "node"] {
        assert!(
            reparsed
                .iter()
                .any(|rec| matches!(rec, Record::Span { kind: k, .. } if k == kind)),
            "missing {kind} span"
        );
    }
    assert!(reparsed.iter().any(|rec| matches!(rec, Record::Hist { .. })));
}

#[test]
fn every_executed_region_carries_promised_attrs() {
    let (_, records) = traced_run(
        "cat /in.txt | tr a-z A-Z | sort | head -n5\n\
         grep -c shell /in.txt\n\
         echo plain",
    );
    let regions: Vec<&Record> = records
        .iter()
        .filter(|r| matches!(r, Record::Span { kind, .. } if kind == "region"))
        .collect();
    assert_eq!(regions.len(), 3);
    let mut optimized = 0;
    for region in &regions {
        for key in ["action", "width", "bytes_in", "bytes_out", "status"] {
            assert!(region.attr(key).is_some(), "region missing `{key}`: {region:?}");
        }
        let Record::Span { wall_us, .. } = region else {
            unreachable!()
        };
        assert!(*wall_us > 0, "region wall time must be measured");
        if region.attr_str("action") == Some("optimized") {
            optimized += 1;
            assert!(region.attr_u64("width").unwrap() > 1);
            assert!(region.attr_u64("bytes_out").unwrap() > 0);
            assert!(region.attr("fingerprint").is_some());
            // A source-less region (`echo plain`) truthfully reports zero
            // input; the two that read /in.txt must account for it.
            let Record::Span { name, .. } = region else {
                unreachable!()
            };
            if name.contains("/in.txt") {
                assert!(
                    region.attr_u64("bytes_in").unwrap() > 0,
                    "file-fed region must account input bytes: {region:?}"
                );
            }
        }
    }
    assert!(optimized >= 1, "at least one region must optimize");

    // Node spans parent into their region and carry byte accounting.
    let nodes: Vec<&Record> = records
        .iter()
        .filter(|r| matches!(r, Record::Span { kind, .. } if kind == "node"))
        .collect();
    assert!(!nodes.is_empty());
    let region_ids: Vec<u64> = regions
        .iter()
        .filter_map(|r| match r {
            Record::Span { id, .. } => Some(*id),
            _ => None,
        })
        .collect();
    for node in nodes {
        let Record::Span { parent, .. } = node else {
            unreachable!()
        };
        assert!(
            parent.is_some_and(|p| region_ids.contains(&p)),
            "node span must parent into a region: {node:?}"
        );
        assert!(node.attr("bytes_in").is_some() && node.attr("bytes_out").is_some());
    }
}

#[test]
fn fused_kernel_spans_round_trip_with_attrs() {
    // A fused execution must stamp the region with `fused`/`nodes_fused`
    // and emit a kernel node span (`cmd: fused`) carrying stage, byte,
    // and line accounting — all surviving the schema round trip.
    let fs = staged_fs();
    let mut state = ShellState::new(fs);
    let mut shell = Jash::new(Engine::JashJit, machine());
    shell.planner = PlannerOptions {
        min_speedup: 0.0,
        force_fusion: true,
        ..Default::default()
    };
    let tracer = Arc::new(Tracer::new());
    shell.tracer = Some(Arc::clone(&tracer));
    let r = shell
        .run_script(&mut state, "cat /in.txt | tr a-z A-Z | grep SHELL | cut -c 1-30")
        .expect("script runs");
    assert_eq!(r.status, 0);
    assert_eq!(shell.runtime.regions_optimized, 1);
    let records = tracer.drain();

    let jsonl: String = records
        .iter()
        .map(|rec| format!("{}\n", rec.to_json_line()))
        .collect();
    let reparsed = parse_jsonl(&jsonl).expect("fused trace parses");
    assert_eq!(records, reparsed, "fused spans must round trip losslessly");

    let region = reparsed
        .iter()
        .find(|rec| matches!(rec, Record::Span { kind, .. } if kind == "region"))
        .expect("region span");
    assert_eq!(region.attr_str("action"), Some("optimized"));
    assert_eq!(
        region.attr("fused"),
        Some(&jash::trace::AttrValue::Bool(true)),
        "{region:?}"
    );
    assert!(region.attr_u64("nodes_fused").unwrap() >= 3);

    let kernel = reparsed
        .iter()
        .find(|rec| {
            matches!(rec, Record::Span { kind, .. } if kind == "node")
                && rec.attr_str("cmd") == Some("fused")
        })
        .expect("fused kernel node span");
    assert_eq!(kernel.attr_u64("nodes_fused"), Some(3), "{kernel:?}");
    assert!(kernel.attr_u64("bytes_in").unwrap() > 0);
    assert!(kernel.attr_u64("lines").unwrap() > 0, "{kernel:?}");
    let Record::Span { name, .. } = kernel else {
        unreachable!()
    };
    assert_eq!(name, "fused[tr|grep|cut]");
}

#[test]
fn resumed_runs_tag_replayed_regions() {
    // The doctored-journal pattern: run once journaled, strip the
    // RunComplete record so the journal reads as interrupted, and resume
    // with a tracer attached. The replayed region must be tagged
    // `resumed` (with its fingerprint) and the memo must count one hit.
    let fs = staged_fs();
    let src = "cat /in.txt | tr A-Z a-z | sort";

    let mut shell = Jash::new(Engine::JashJit, machine());
    shell.planner = eager();
    shell.attach_journal(&fs, "/.jash", false).unwrap();
    let mut state = ShellState::new(Arc::clone(&fs));
    let first = shell.run_script(&mut state, src).unwrap();
    assert_eq!(first.status, 0);
    assert_eq!(shell.runtime.regions_optimized, 1);

    let journal = jash::io::fs::read_to_vec(fs.as_ref(), "/.jash/journal").unwrap();
    let doctored: String = String::from_utf8(journal)
        .unwrap()
        .lines()
        .filter(|l| !l.contains("run-complete"))
        .map(|l| format!("{l}\n"))
        .collect();
    jash::io::fs::write_file(fs.as_ref(), "/.jash/journal", doctored.as_bytes()).unwrap();

    let mut shell2 = Jash::new(Engine::JashJit, machine());
    shell2.planner = eager();
    let tracer = Arc::new(Tracer::new());
    shell2.tracer = Some(Arc::clone(&tracer));
    let report = shell2.attach_journal(&fs, "/.jash", true).unwrap();
    assert!(report.interrupted);
    let mut state2 = ShellState::new(Arc::clone(&fs));
    let second = shell2.run_script(&mut state2, src).unwrap();
    assert_eq!(second.stdout, first.stdout);
    assert_eq!(shell2.runtime.regions_resumed, 1);

    let records = tracer.drain();
    let region = records
        .iter()
        .find(|r| matches!(r, Record::Span { kind, .. } if kind == "region"))
        .expect("resumed run has a region span");
    assert_eq!(region.attr_str("action"), Some("resumed"));
    assert!(region.attr("fingerprint").is_some());
    assert_eq!(
        region.attr_u64("bytes_out"),
        Some(first.stdout.len() as u64),
        "replayed region must account for the memoized output bytes"
    );
    assert!(records
        .iter()
        .any(|r| matches!(r, Record::Counter { name, value: 1 } if name == "memo.hits")));
    // The journal fsync gauge rides along when durability is on.
    assert!(records
        .iter()
        .any(|r| matches!(r, Record::Gauge { name, value } if name == "journal.fsyncs" && *value > 0)));
}
