//! Crash-recovery integration tests: a real `jash` child process is
//! SIGKILLed mid-region (no destructors, no flushes — the genuine
//! article), then re-run with `--resume`, and the journal's guarantees
//! are audited end to end. Graceful-shutdown behavior (SIGINT/SIGTERM)
//! and torn-journal replay ride the same harness.

use std::fs;
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const JASH: &str = env!("CARGO_BIN_EXE_jash");

/// A deterministic, sort-shuffling input: enough bytes that the staged
/// output write crosses the 64 KiB stall offset used by the kill window.
fn input(seed: u64, bytes: usize) -> Vec<u8> {
    let words = ["alpha", "Bravo", "CHARLIE", "delta", "Echo", "Foxtrot"];
    let mut out = Vec::with_capacity(bytes + 64);
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    while out.len() < bytes {
        for _ in 0..8 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.extend_from_slice(words[(x % words.len() as u64) as usize].as_bytes());
            out.push(b' ');
        }
        out.push(b'\n');
    }
    out
}

fn script(regions: usize) -> String {
    (0..regions)
        .map(|k| format!("cat /in{k} | tr A-Z a-z | sort > /out{k}\n"))
        .collect()
}

fn stage(root: &Path, regions: usize) {
    fs::create_dir_all(root).unwrap();
    for k in 0..regions {
        fs::write(root.join(format!("in{k}")), input(k as u64 + 1, 256 * 1024)).unwrap();
    }
}

/// RAII scratch root: removed when the guard drops, so a panicking test
/// can't leak journals or staged files into the next run's `TMPDIR`.
fn scratch(name: &str) -> jash::io::TempDir {
    jash::io::TempDir::new(&format!("jash-it-{name}"))
}

fn jash(root: &Path) -> Command {
    let mut cmd = Command::new(JASH);
    cmd.arg("--root")
        .arg(root)
        .env("JASH_TEST_EAGER", "1")
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    cmd
}

fn outputs(root: &Path, regions: usize) -> Vec<Option<Vec<u8>>> {
    (0..regions)
        .map(|k| fs::read(root.join(format!("out{k}"))).ok())
        .collect()
}

fn debris(root: &Path) -> Vec<String> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else { continue };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".jash-stage-"))
            {
                found.push(p.display().to_string());
            }
        }
    }
    found
}

/// Blocks until the child has journaled `done` region completions, is
/// inside the next region, and its staging file is visible.
fn wait_for_kill_window(root: &Path, done: usize) {
    let journal = root.join(".jash/journal");
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        let text = fs::read_to_string(&journal).unwrap_or_default();
        let finished = text.lines().filter(|l| l.contains(" region-done ")).count();
        let started = text
            .lines()
            .filter(|l| l.contains(" region-start "))
            .count();
        if finished >= done && started > done && !debris(root).is_empty() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("kill window never opened in {}", root.display());
}

/// Spawns a run wedged mid-region `stall_region`, waits for the window,
/// and delivers `signal` ("KILL", "TERM", "INT"). Returns the exit code
/// observed, if the child exited rather than being killed.
fn crash_run(root: &Path, regions: usize, stall_region: usize, signal: &str) -> Option<i32> {
    let mut child = jash(root)
        .args(["-c", &script(regions)])
        .env(
            "JASH_TEST_STALL_WRITE",
            format!("/out{stall_region}:65536:600000"),
        )
        .spawn()
        .unwrap();
    wait_for_kill_window(root, stall_region);
    if signal == "KILL" {
        child.kill().unwrap();
    } else {
        let ok = Command::new("kill")
            .args([format!("-{signal}"), child.id().to_string()])
            .status()
            .unwrap();
        assert!(ok.success(), "kill -{signal} failed");
    }
    child.wait().unwrap().code()
}

fn summary_counter(stderr: &str, key: &str) -> u64 {
    stderr
        .lines()
        .find(|l| l.starts_with("jit summary:"))
        .and_then(|l| {
            l.split_whitespace()
                .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no `{key}` in jit summary: {stderr}"))
}

#[test]
fn sigkill_mid_region_then_resume_is_byte_identical() {
    let regions = 3;
    // Uninterrupted baseline.
    let base_dir = scratch("baseline");
    let base = base_dir.path();
    stage(base, regions);
    assert!(jash(base).args(["-c", &script(regions)]).status().unwrap().success());

    // Crash after one clean region, mid-write of the second.
    let root_dir = scratch("sigkill");
    let root = root_dir.path();
    stage(root, regions);
    crash_run(root, regions, 1, "KILL");
    assert!(!debris(root).is_empty(), "crash should strand a staging file");

    let out = jash(root)
        .args(["--resume", "--explain", "-c", &script(regions)])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "resume failed: {stderr}");
    assert_eq!(outputs(root, regions), outputs(base, regions), "resume must be byte-identical");
    assert_eq!(debris(root), Vec::<String>::new(), "janitor must sweep staging debris");
    // The journaled-clean region replays from the memo; the rest execute.
    assert_eq!(summary_counter(&stderr, "resumed"), 1, "{stderr}");
    assert_eq!(summary_counter(&stderr, "optimized"), (regions - 1) as u64, "{stderr}");
    assert!(stderr.contains("previous run interrupted"), "{stderr}");
}

#[test]
fn torn_final_journal_record_is_dropped_on_replay() {
    let regions = 2;
    let base_dir = scratch("torn-base");
    let base = base_dir.path();
    stage(base, regions);
    assert!(jash(base).args(["-c", &script(regions)]).status().unwrap().success());

    let root_dir = scratch("torn");
    let root = root_dir.path();
    stage(root, regions);
    crash_run(root, regions, 1, "KILL");

    // Simulate the crash tearing the tail record: a half-written line
    // with no newline and a bogus checksum. Replay must drop it (and
    // only it) rather than refuse the journal.
    let journal = root.join(".jash/journal");
    let mut text = fs::read_to_string(&journal).unwrap();
    text.push_str("00000000deadbeef region-done 3f770c");
    fs::write(&journal, text).unwrap();

    let out = jash(root)
        .args(["--resume", "--explain", "-c", &script(regions)])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "resume failed: {stderr}");
    assert!(stderr.contains("torn journal tail dropped"), "{stderr}");
    assert_eq!(outputs(root, regions), outputs(base, regions));
    assert_eq!(summary_counter(&stderr, "resumed"), 1, "{stderr}");
}

#[test]
fn sigterm_shuts_down_gracefully_with_status_143() {
    let regions = 2;
    let root_dir = scratch("sigterm");
    let root = root_dir.path();
    stage(root, regions);
    let code = crash_run(root, regions, 0, "TERM");
    assert_eq!(code, Some(143), "SIGTERM must exit 128+15");
    let journal = fs::read_to_string(root.join(".jash/journal")).unwrap();
    assert!(journal.contains(" region-aborted "), "abort must be journaled: {journal}");
    assert!(!journal.contains(" run-complete"), "run must stay resumable: {journal}");
    assert_eq!(debris(root), Vec::<String>::new(), "graceful shutdown must not strand staging files");
}

#[test]
fn sigint_shuts_down_gracefully_with_status_130() {
    let regions = 2;
    let root_dir = scratch("sigint");
    let root = root_dir.path();
    stage(root, regions);
    let code = crash_run(root, regions, 0, "INT");
    assert_eq!(code, Some(130), "SIGINT must exit 128+2");
    let journal = fs::read_to_string(root.join(".jash/journal")).unwrap();
    assert!(journal.contains(" region-aborted "), "{journal}");
}

#[test]
fn edited_input_defeats_resume_and_reexecutes() {
    // The memo check: a region journaled clean resumes only if its input
    // still hashes the same. Editing the input between crash and resume
    // must force a re-execution with the new bytes.
    let regions = 2;
    let root_dir = scratch("edited");
    let root = root_dir.path();
    stage(root, regions);
    crash_run(root, regions, 1, "KILL");

    // Region 0 completed; now rewrite its input.
    fs::write(root.join("in0"), input(99, 256 * 1024)).unwrap();
    let out = jash(root)
        .args(["--resume", "--explain", "-c", &script(regions)])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert_eq!(summary_counter(&stderr, "resumed"), 0, "stale memo must not resume: {stderr}");
    assert_eq!(summary_counter(&stderr, "optimized"), regions as u64, "{stderr}");

    // And the re-executed output reflects the *new* input.
    let fresh_dir = scratch("edited-fresh");
    let fresh = fresh_dir.path();
    fs::write(fresh.join("in0"), input(99, 256 * 1024)).unwrap();
    fs::write(fresh.join("in1"), input(2, 256 * 1024)).unwrap();
    assert!(jash(fresh).args(["-c", &script(regions)]).status().unwrap().success());
    assert_eq!(outputs(root, regions), outputs(fresh, regions));
}

#[test]
fn in_process_resume_replays_from_memo_without_reexecution() {
    // The same machinery exercised in-process on a MemFs: a completed
    // run's journal is doctored to look interrupted (RunComplete
    // stripped), and a second session must satisfy every region from the
    // memo — zero optimized executions.
    use jash::core::{Engine, Jash};
    use jash::cost::MachineProfile;
    use jash::expand::ShellState;
    use std::sync::Arc;

    let fs = jash::io::mem_fs();
    let doc = input(5, 128 * 1024);
    jash::io::fs::write_file(fs.as_ref(), "/in0", &doc).unwrap();
    let machine = MachineProfile {
        cores: 4,
        disk: jash::io::DiskProfile::ramdisk(),
        mem_mb: 4 * 1024,
    };
    let eager = jash::cost::PlannerOptions {
        min_speedup: 0.0,
        force_width: Some(4),
        ..Default::default()
    };
    let src = "cat /in0 | tr A-Z a-z | sort";

    let mut shell = Jash::new(Engine::JashJit, machine);
    shell.planner = eager;
    shell.attach_journal(&fs, "/.jash", false).unwrap();
    let mut state = ShellState::new(Arc::clone(&fs));
    let first = shell.run_script(&mut state, src).unwrap();
    assert_eq!(first.status, 0);
    assert_eq!(shell.runtime.regions_optimized, 1);

    // Strip RunComplete: the journal now reads as an interrupted run.
    let journal = jash::io::fs::read_to_vec(fs.as_ref(), "/.jash/journal").unwrap();
    let doctored: String = String::from_utf8(journal)
        .unwrap()
        .lines()
        .filter(|l| !l.contains("run-complete"))
        .map(|l| format!("{l}\n"))
        .collect();
    jash::io::fs::write_file(fs.as_ref(), "/.jash/journal", doctored.as_bytes()).unwrap();

    let mut shell2 = Jash::new(Engine::JashJit, machine);
    shell2.planner = eager;
    let report = shell2.attach_journal(&fs, "/.jash", true).unwrap();
    assert!(report.interrupted);
    assert_eq!(report.resumable, 1);
    let mut state2 = ShellState::new(Arc::clone(&fs));
    let second = shell2.run_script(&mut state2, src).unwrap();
    assert_eq!(second.status, 0);
    assert_eq!(second.stdout, first.stdout, "replayed stdout must match");
    assert_eq!(shell2.runtime.regions_resumed, 1);
    assert_eq!(shell2.runtime.regions_optimized, 0, "resume must not re-execute");
}
