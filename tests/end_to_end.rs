//! End-to-end scenarios across the whole stack: realistic scripts through
//! the interpreter, the lint pipeline, specification inference feeding
//! the dataflow compiler, and the incremental runtime — the subsystems
//! working together the way the paper's §4 agenda composes them.

use jash::core::{Engine, Jash};
use jash::cost::MachineProfile;
use jash::expand::ShellState;
use std::sync::Arc;

fn machine() -> MachineProfile {
    MachineProfile {
        cores: 4,
        disk: jash::io::DiskProfile::ramdisk(),
        mem_mb: 4 * 1024,
    }
}

#[test]
fn a_realistic_build_script() {
    let fs = jash::io::mem_fs();
    for (p, c) in [
        ("/src/main.c", "int main() { return 0; }\n"),
        ("/src/util.c", "void util() {}\n"),
        ("/src/util.h", "void util();\n"),
    ] {
        jash::io::fs::write_file(fs.as_ref(), p, c.as_bytes()).unwrap();
    }
    let script = r#"
set -e
SRC_DIR=/src
OBJ_LIST=/build/objects.txt
: > $OBJ_LIST
for f in $SRC_DIR/*.c; do
    base=${f##*/}
    obj=/build/${base%.c}.o
    echo "compiled $f" > $obj
    echo $obj >> $OBJ_LIST
done
count=$(wc -l < $OBJ_LIST)
echo "built $count objects"
ls /build | grep -c '\.o$'
"#;
    let mut state = ShellState::new(Arc::clone(&fs));
    let mut shell = Jash::new(Engine::JashJit, machine());
    let r = shell.run_script(&mut state, script).unwrap();
    assert_eq!(
        String::from_utf8_lossy(&r.stdout),
        "built 2 objects\n2\n",
        "stderr: {}",
        String::from_utf8_lossy(&r.stderr)
    );
    assert!(fs.exists("/build/main.o"));
    assert!(fs.exists("/build/util.o"));
}

#[test]
fn a_log_triage_script_with_functions() {
    let fs = jash::io::mem_fs();
    let mut log = String::new();
    for i in 0..500 {
        let lvl = ["INFO", "WARN", "ERROR"][i % 3];
        log.push_str(&format!("{lvl} message-{i}\n"));
    }
    jash::io::fs::write_file(fs.as_ref(), "/var/log/app.log", log.as_bytes()).unwrap();
    let script = r#"
count_level() {
    grep -c "^$1 " /var/log/app.log
}
total=0
for lvl in INFO WARN ERROR; do
    n=$(count_level $lvl)
    echo "$lvl=$n"
    total=$((total + n))
done
echo "total=$total"
"#;
    let mut state = ShellState::new(fs);
    let mut shell = Jash::new(Engine::JashJit, machine());
    let r = shell.run_script(&mut state, script).unwrap();
    assert_eq!(
        String::from_utf8_lossy(&r.stdout),
        "INFO=167\nWARN=167\nERROR=166\ntotal=500\n"
    );
}

#[test]
fn lint_then_fix_then_run() {
    // A script with a dangerous rm; the linter flags it, the fixed
    // version is clean and runs.
    let bad = "rm -rf $STAGING/cache";
    let findings = jash::lint::lint_script(bad).unwrap();
    assert!(findings
        .iter()
        .any(|f| f.rule == "rm-unchecked-expansion"));

    let good = r#"STAGING=${STAGING:?must be set}; rm -rf "$STAGING"/cache"#;
    let findings = jash::lint::lint_script(good).unwrap();
    assert!(!findings
        .iter()
        .any(|f| f.rule == "rm-unchecked-expansion"));

    let fs = jash::io::mem_fs();
    jash::io::fs::write_file(fs.as_ref(), "/stage/cache/x", b"junk").unwrap();
    jash::io::fs::write_file(fs.as_ref(), "/stage/keep", b"keep").unwrap();
    let mut state = ShellState::new(Arc::clone(&fs));
    state.set_var("STAGING", "/stage");
    let mut shell = Jash::new(Engine::JashJit, machine());
    let r = shell.run_script(&mut state, good).unwrap();
    assert_eq!(r.status, 0);
    assert!(!fs.exists("/stage/cache/x"));
    assert!(fs.exists("/stage/keep"));
}

#[test]
fn inferred_spec_enables_optimization_of_a_user_command() {
    // A user command unknown to the built-in registry: `rev`-ish filter
    // modeled by a user spec; with the spec registered the JIT optimizes
    // a pipeline containing it.
    let fs = jash::io::mem_fs();
    let corpus: String = (0..2000).map(|i| format!("line-{i}\n")).collect();
    jash::io::fs::write_file(fs.as_ref(), "/in", corpus.as_bytes()).unwrap();

    let script = "cat /in | rev | sort";
    // Default registry knows rev already — use a shadowing spec to prove
    // the resolve path honors user entries.
    let mut shell = Jash::new(Engine::JashJit, machine());
    shell.planner.force_width = Some(4);
    shell.registry.register(jash::spec::UserSpec {
        name: "rev".into(),
        version: "test".into(),
        default_class: jash::spec::ParallelClass::Stateless,
        rules: vec![],
        reads_stdin: true,
        blocking: false,
    });
    let mut state = ShellState::new(Arc::clone(&fs));
    let r = shell.run_script(&mut state, script).unwrap();
    assert_eq!(r.status, 0);
    assert!(shell.trace.iter().any(jash::core::TraceEvent::was_optimized));

    // Same answer as plain interpretation.
    let mut state = ShellState::new(fs);
    let r2 = Jash::new(Engine::Bash, machine())
        .run_script(&mut state, script)
        .unwrap();
    assert_eq!(r.stdout, r2.stdout);
}

#[test]
fn incremental_runtime_composes_with_generated_regions() {
    use jash::incremental::{CacheOutcome, IncRunner};
    let fs = jash::io::mem_fs();
    jash::io::fs::write_file(fs.as_ref(), "/data", b"Alpha\nBETA\ngamma\n").unwrap();
    // Extract the region via the JIT extraction path (live state).
    let prog = jash::parser::parse_unwrap("cat /data | tr A-Z a-z");
    let mut state = ShellState::new(Arc::clone(&fs));
    let region =
        jash::core::jit_region(&mut state, &prog.items[0].and_or.first).expect("extractable");

    let mut runner = IncRunner::new(Arc::clone(&fs), "/.cache");
    let a = runner.run(&region).unwrap();
    assert_eq!(a.outcome, CacheOutcome::Miss);
    assert_eq!(a.stdout, b"alpha\nbeta\ngamma\n");
    let b = runner.run(&region).unwrap();
    assert_eq!(b.outcome, CacheOutcome::Hit);
}

#[test]
fn dataflow_explain_round_trip_for_extracted_regions() {
    let fs = jash::io::mem_fs();
    jash::io::fs::write_file(fs.as_ref(), "/w", b"c\nb\na\n").unwrap();
    let prog = jash::parser::parse_unwrap("cat /w | sort | head -n2");
    let mut state = ShellState::new(fs);
    let region = jash::core::jit_region(&mut state, &prog.items[0].and_or.first).unwrap();
    let compiled = jash::dataflow::compile(&region, &jash::spec::Registry::builtin()).unwrap();
    let shell_text = jash::ast::unparse(&jash::dataflow::to_shell(&compiled.dfg).unwrap());
    // The emitted script reparses; the single-file `cat` fused into a
    // read, so two stages remain (`sort < /w | head -n2`).
    let reparsed = jash::parser::parse(&shell_text).unwrap();
    assert_eq!(reparsed.items[0].and_or.first.commands.len(), 2);
    assert!(shell_text.contains("< /w"), "{shell_text}");
}

#[test]
fn spell_scenario_under_simulated_machines() {
    // A miniature Figure-1-style run through the bench harness types is
    // exercised in `jash-bench`; here, check the JIT's runtime-info path
    // sees sizes through the modeled fs.
    let fs: jash::io::FsHandle = Arc::new(jash::io::MemFs::with_disk(jash::io::DiskModel::new(
        jash::io::DiskProfile::ramdisk().scaled(0.0),
    )));
    let body = "Some Words Here\n".repeat(100);
    jash::io::fs::write_file(fs.as_ref(), "/d.txt", body.as_bytes()).unwrap();
    let mut state = ShellState::new(fs);
    state.set_var("F", "/d.txt");
    let mut shell = Jash::new(Engine::JashJit, machine());
    shell.planner.force_width = Some(2);
    let r = shell
        .run_script(&mut state, "cat $F | tr A-Z a-z | sort -u")
        .unwrap();
    assert_eq!(r.status, 0);
    // Lines (not words) are deduplicated: one distinct line remains.
    assert_eq!(r.stdout, b"some words here\n");
}
