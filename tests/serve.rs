//! Integration suite for the `jash serve` daemon: a concurrent-client
//! storm under injected faults, admission-control overload, mid-run
//! client disconnects, wall-clock deadlines, graceful drain — and the
//! trace-flush-on-SIGTERM regression test for the one-shot binary.
//!
//! The in-process tests run a real [`jash::serve::Server`] on a real
//! unix socket over an in-memory filesystem, so fault injection and
//! debris audits are deterministic; the binary tests spawn the actual
//! `jash` executable and deliver actual signals.

use jash::cost::MachineProfile;
use jash::io::{CpuModel, FsHandle, TempDir};
use jash::serve::{reject, Request, Server, ServerConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn machine() -> MachineProfile {
    MachineProfile {
        cores: 8,
        disk: jash::io::DiskProfile::ramdisk(),
        mem_mb: 8 * 1024,
    }
}

/// Deterministic mixed-case input, large enough that eager width-4
/// plans actually split it.
fn docs(bytes: usize) -> Vec<u8> {
    let words = ["alpha", "Bravo", "CHARLIE", "delta", "Echo", "Foxtrot", "golf"];
    let mut out = Vec::with_capacity(bytes + 64);
    let mut x = 0x5eedu64;
    while out.len() < bytes {
        for _ in 0..8 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            out.extend_from_slice(words[(x % words.len() as u64) as usize].as_bytes());
            out.push(b' ');
        }
        out.push(b'\n');
    }
    out
}

const SCRIPT: &str = "cat /data/docs.txt | tr A-Z a-z | tr -cs a-z '\\n' | sort -u";

/// A server over a staged MemFs, plus everything a test needs to audit
/// it afterwards.
struct Rig {
    server: Server,
    fs: FsHandle,
    socket: PathBuf,
    _dir: TempDir,
}

fn rig(workers: usize, queue_cap: usize, configure: impl FnOnce(&mut ServerConfig)) -> Rig {
    let dir = TempDir::new("jash-it-serve");
    let socket = dir.path().join("sock");
    let fs = jash::io::mem_fs();
    jash::io::fs::write_file(fs.as_ref(), "/data/docs.txt", &docs(96 * 1024)).unwrap();
    let mut cfg = ServerConfig::new(&socket, Arc::clone(&fs));
    cfg.machine = machine();
    cfg.workers = workers;
    cfg.queue_cap = queue_cap;
    cfg.eager = true;
    cfg.durable = false;
    cfg.drain_budget = Duration::from_secs(10);
    cfg.journal_root = Some("/.jash-serve".to_string());
    cfg.trace_root = Some("/traces".to_string());
    cfg.cpu = Some(CpuModel::new(8, 0.0));
    cfg.fault_injector = Some(jash::serve::spec_fault_injector());
    configure(&mut cfg);
    Rig {
        server: Server::start(cfg).unwrap(),
        fs,
        socket,
        _dir: dir,
    }
}

/// Recursively walks the virtual fs for leaked `.jash-stage-*` files.
fn debris(fs: &FsHandle) -> Vec<String> {
    let mut found = Vec::new();
    let mut stack = vec!["/".to_string()];
    while let Some(dir) = stack.pop() {
        for name in fs.list_dir(&dir).unwrap_or_default() {
            let path = if dir == "/" {
                format!("/{name}")
            } else {
                format!("{dir}/{name}")
            };
            if fs.metadata(&path).map(|m| m.is_dir).unwrap_or(false) {
                stack.push(path);
            } else if name.contains(".jash-stage-") {
                found.push(path);
            }
        }
    }
    found
}

/// Looks up `key` in a span's insertion-ordered attribute list.
fn attr<'a>(
    attrs: &'a [(String, jash::trace::AttrValue)],
    key: &str,
) -> Option<&'a jash::trace::AttrValue> {
    attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Parses run `run_id`'s trace with the schema-v1 parser and returns
/// its records, panicking with the parse error if the file is invalid
/// or missing.
fn parsed_trace(fs: &FsHandle, run_id: u64) -> Vec<jash::trace::Record> {
    let path = format!("/traces/run-{run_id}.jsonl");
    let bytes = jash::io::fs::read_to_vec(fs.as_ref(), &path)
        .unwrap_or_else(|e| panic!("trace {path} unreadable: {e}"));
    let text = String::from_utf8(bytes).expect("trace is utf-8");
    jash::trace::parse_jsonl(&text).unwrap_or_else(|e| panic!("trace {path} unparseable: {e}"))
}

fn poll_until(what: &str, deadline: Duration, mut ok: impl FnMut() -> bool) {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn storm_of_sixteen_clients_with_mixed_faults_stays_sound() {
    let rig = rig(4, 16, |_| {});
    let expected = {
        // The ground truth: the same script under the sequential engine.
        let fs = jash::io::mem_fs();
        jash::io::fs::write_file(fs.as_ref(), "/data/docs.txt", &docs(96 * 1024)).unwrap();
        let mut state = jash::expand::ShellState::new(fs);
        let mut shell = jash::core::Jash::new(jash::core::Engine::Bash, machine());
        shell.run_script(&mut state, SCRIPT).unwrap().stdout
    };

    let socket = rig.socket.clone();
    let handles: Vec<_> = (0..16)
        .map(|i| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut req = Request::new(SCRIPT);
                req.tenant = format!("tenant-{}", i % 4);
                // Mixed workload: 12 clean runs, 2 transient faults the
                // supervisor must absorb, 2 sticky faults that fail.
                req.fault = match i % 8 {
                    3 => Some("transient-read:/data/docs.txt:32768".to_string()),
                    6 => Some("read-error:/data/docs.txt:32768".to_string()),
                    _ => None,
                };
                (i, jash::serve::submit(&socket, &req).unwrap())
            })
        })
        .collect();

    let mut completed = 0;
    for h in handles {
        let (i, reply) = h.join().unwrap();
        assert!(
            reply.completed(),
            "client {i} did not complete: {:?}",
            reply.rejected
        );
        completed += 1;
        let run_id = reply.run_id.expect("accepted runs carry a run id");
        match i % 8 {
            // Sticky read errors fail on every engine; status is
            // nonzero but the daemon answered in full.
            6 => assert_ne!(reply.status, Some(0), "client {i} should have faulted"),
            // Clean and transient-fault runs both deliver the exact
            // sequential answer — retry absorbed the transient.
            _ => {
                assert_eq!(reply.status, Some(0), "client {i}: {:?}", reply);
                assert_eq!(
                    reply.stdout, expected,
                    "client {i} diverged from the sequential baseline"
                );
            }
        }
        // Every run's trace parses with the schema-v1 parser and is
        // attributed to its run and tenant.
        let records = parsed_trace(&rig.fs, run_id);
        let run_attrs = records
            .iter()
            .find_map(|r| match r {
                jash::trace::Record::Span { kind, attrs, .. } if kind == "run" => Some(attrs),
                _ => None,
            })
            .expect("trace has a run span");
        assert_eq!(
            attr(run_attrs, "run_id"),
            Some(&jash::trace::AttrValue::UInt(run_id))
        );
        assert!(attr(run_attrs, "tenant").is_some());
    }
    assert_eq!(completed, 16);

    let stats = rig.server.stats();
    assert_eq!(stats.accepted, 16);
    assert_eq!(stats.rejected_overload, 0, "queue of 16 never overflows here");
    assert_eq!(debris(&rig.fs), Vec::<String>::new(), "no staging debris");

    let report = rig.server.drain();
    assert!(report.within_budget);
    assert_eq!(report.stragglers, 0);
    assert_eq!(report.stats.completed, 16);
}

#[test]
fn overload_is_shed_with_a_structured_rejection() {
    let rig = rig(1, 1, |_| {});
    let stall = || {
        let mut req = Request::new(SCRIPT);
        req.fault = Some("stall-read:/data/docs.txt:60000".to_string());
        req
    };
    // Fill the worker...
    let running = jash::serve::submit_detached(&rig.socket, &stall())
        .unwrap()
        .expect("first submission admitted");
    poll_until("worker to pick up the stalled run", Duration::from_secs(5), || {
        rig.server.load() == (1, 0)
    });
    // ...and the queue...
    let queued = jash::serve::submit_detached(&rig.socket, &stall())
        .unwrap()
        .expect("second submission queued");
    poll_until("queue to fill", Duration::from_secs(5), || {
        rig.server.load() == (1, 1)
    });
    // ...and the next submission must be rejected immediately — shed,
    // never stalled.
    let t0 = Instant::now();
    let reply = jash::serve::submit(&rig.socket, &Request::new(SCRIPT)).unwrap();
    let answered_in = t0.elapsed();
    let (code, active, queued_n, reason) = reply.rejected.expect("structured rejection");
    assert_eq!(code, reject::OVERLOADED);
    assert_eq!((active, queued_n), (1, 1));
    assert!(reason.contains("queue full"), "reason: {reason}");
    assert!(
        answered_in < Duration::from_secs(2),
        "rejection stalled for {answered_in:?}"
    );
    assert_eq!(rig.server.stats().rejected_overload, 1);

    // Drain: the stalled run aborts via its (cancel-wired) fault stall,
    // the queued one is shed with the DRAINING code.
    let report = rig.server.drain();
    assert!(report.within_budget, "stalled run ignored its cancel");
    assert_eq!(report.in_flight, 1);
    assert_eq!(report.shed, 1);
    let (mut c1, _run) = running;
    let mut r1 = jash::serve::RunReply::default();
    jash::serve::client::collect(&mut c1, &mut r1).unwrap();
    assert_eq!(r1.status, Some(143), "in-flight run aborted with 128+15");
    assert!(r1.aborted.unwrap().starts_with("shutdown:"));
    let (mut c2, _run) = queued;
    let mut r2 = jash::serve::RunReply::default();
    jash::serve::client::collect(&mut c2, &mut r2).unwrap();
    assert_eq!(r2.rejected.as_ref().map(|r| r.0), Some(reject::DRAINING));
}

#[test]
fn client_disconnect_cancels_the_run_and_frees_its_slot() {
    let rig = rig(1, 4, |_| {});
    let mut req = Request::new(SCRIPT);
    req.fault = Some("stall-read:/data/docs.txt:60000".to_string());
    let (conn, _run_id) = jash::serve::submit_detached(&rig.socket, &req)
        .unwrap()
        .expect("admitted");
    poll_until("worker to pick up the stalled run", Duration::from_secs(5), || {
        rig.server.load().0 == 1
    });
    // The client vanishes mid-run; the daemon must notice, cancel the
    // orphaned run, and free the only worker slot.
    drop(conn);
    poll_until("disconnect to cancel the run", Duration::from_secs(5), || {
        rig.server.stats().disconnect_cancels >= 1 && rig.server.load().0 == 0
    });
    // The freed slot serves the next client normally.
    let reply = jash::serve::submit(&rig.socket, &Request::new(SCRIPT)).unwrap();
    assert_eq!(reply.status, Some(0), "{reply:?}");
    let report = rig.server.drain();
    assert!(report.within_budget);
    assert_eq!(debris(&rig.fs), Vec::<String>::new());
}

#[test]
fn deadline_aborts_the_run_with_exit_124_and_journals_it() {
    let rig = rig(1, 2, |_| {});
    let mut req = Request::new(SCRIPT);
    req.timeout_ms = 150;
    req.fault = Some("stall-read:/data/docs.txt:60000".to_string());
    let reply = jash::serve::submit(&rig.socket, &req).unwrap();
    assert_eq!(reply.status, Some(124), "{reply:?}");
    let aborted = reply.aborted.expect("deadline abort carries its reason");
    assert!(aborted.starts_with("deadline:"), "reason: {aborted}");
    assert_eq!(rig.server.stats().deadline_aborts, 1);
    // The abort was journaled: the run is interrupted-but-resumable,
    // exactly like a SIGTERM.
    let run_id = reply.run_id.unwrap();
    let journal = jash::io::fs::read_to_vec(
        rig.fs.as_ref(),
        &format!("/.jash-serve/run-{run_id}/journal"),
    )
    .expect("per-run journal exists");
    let text = String::from_utf8(journal).unwrap();
    assert!(
        text.lines().any(|l| l.contains("region-aborted")),
        "journal lacks the aborted region:\n{text}"
    );
    assert!(!text.contains("run-complete"), "aborted run must stay resumable");
    rig.server.drain();
}

#[test]
fn graceful_drain_retires_every_run_within_budget_with_zero_debris() {
    let rig = rig(4, 8, |_| {});
    let stall = || {
        let mut req = Request::new(SCRIPT);
        req.fault = Some("stall-read:/data/docs.txt:60000".to_string());
        req
    };
    // Four runs wedged in the workers, two more waiting in the queue.
    let mut streams = Vec::new();
    for _ in 0..6 {
        streams.push(
            jash::serve::submit_detached(&rig.socket, &stall())
                .unwrap()
                .expect("admitted"),
        );
    }
    poll_until("4 active + 2 queued", Duration::from_secs(5), || {
        rig.server.load() == (4, 2)
    });

    let t0 = Instant::now();
    let report = rig.server.drain();
    assert!(report.within_budget, "drain blew its budget");
    assert!(t0.elapsed() < Duration::from_secs(10));
    assert_eq!(report.in_flight, 4);
    assert_eq!(report.shed, 2);
    assert_eq!(report.stragglers, 0);

    // Every client got a definitive answer: aborted Done for in-flight
    // runs, DRAINING rejection for queued ones.
    let mut aborted = 0;
    let mut shed = 0;
    for (mut conn, run_id) in streams {
        let mut reply = jash::serve::RunReply::default();
        jash::serve::client::collect(&mut conn, &mut reply).unwrap();
        if let Some(status) = reply.status {
            assert_eq!(status, 143);
            aborted += 1;
            // The aborted run's trace still flushed and still parses.
            let records = parsed_trace(&rig.fs, run_id);
            assert!(!records.is_empty());
        } else {
            assert_eq!(reply.rejected.as_ref().map(|r| r.0), Some(reject::DRAINING));
            shed += 1;
        }
    }
    assert_eq!((aborted, shed), (4, 2));
    assert_eq!(debris(&rig.fs), Vec::<String>::new(), "drain left staging debris");
}

#[test]
fn pressure_tightens_the_planner_as_the_daemon_loads_up() {
    let rig = rig(2, 4, |_| {});
    let idle = rig.server.pressure();
    assert!(idle < 0.3, "idle daemon reads high pressure: {idle}");
    let mut req = Request::new(SCRIPT);
    req.fault = Some("stall-read:/data/docs.txt:60000".to_string());
    let _a = jash::serve::submit_detached(&rig.socket, &req).unwrap().unwrap();
    let _b = jash::serve::submit_detached(&rig.socket, &req).unwrap().unwrap();
    poll_until("both workers busy", Duration::from_secs(5), || {
        rig.server.load().0 == 2
    });
    let busy = rig.server.pressure();
    assert!(busy > idle, "pressure did not rise under load: {idle} -> {busy}");
    // The signal feeds the planner: under full pressure widening is off.
    let opts = jash::cost::PlannerOptions::default().under_pressure(1.0);
    assert_eq!(opts.force_width, Some(1));
    rig.server.drain();
}

/// Starvation drill: a flooding tenant hammers the daemon while a light
/// tenant trickles in. Fair-share scheduling must keep the light tenant
/// whole — every light submission completes with the exact sequential
/// answer and a bounded queue wait — while the flooder alone absorbs
/// every per-tenant QUOTA rejection.
#[test]
fn flooding_tenant_cannot_starve_the_light_tenant() {
    let rig = rig(2, 64, |cfg| {
        // The flooder gets one worker slot and a shallow queue; the
        // light tenant rides the (unbounded) default policy.
        cfg.tenants = vec![(
            "flood".to_string(),
            jash::serve::TenantPolicy {
                weight: 1.0,
                max_active: 1,
                queue_cap: 4,
            },
        )];
    });
    let expected = {
        let fs = jash::io::mem_fs();
        jash::io::fs::write_file(fs.as_ref(), "/data/docs.txt", &docs(96 * 1024)).unwrap();
        let mut state = jash::expand::ShellState::new(fs);
        let mut shell = jash::core::Jash::new(jash::core::Engine::Bash, machine());
        shell.run_script(&mut state, SCRIPT).unwrap().stdout
    };

    // 16 flood clients arrive at once. Each run stalls ~400ms, so the
    // flooder's single slot plus 4 queue places wedge; the rest must be
    // shed with QUOTA, immediately, and never promoted over the cap.
    let socket = rig.socket.clone();
    let flood: Vec<_> = (0..16)
        .map(|_| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut req = Request::new(SCRIPT).with_tenant("flood");
                req.fault = Some("stall-read:/data/docs.txt:400".to_string());
                jash::serve::submit(&socket, &req).unwrap()
            })
        })
        .collect();
    poll_until("flood to wedge its quota", Duration::from_secs(5), || {
        rig.server
            .tenants()
            .iter()
            .any(|t| t.tenant == "flood" && t.active == 1 && t.queued >= 1)
    });

    // The light tenant submits six runs through the storm; all must
    // come back complete, correct, and un-queued (the second worker is
    // the light tenant's by fair share — the flooder is capped at one).
    for i in 0..6 {
        let req = Request::new(SCRIPT).with_tenant("light");
        let reply = jash::serve::submit(&rig.socket, &req).unwrap();
        assert_eq!(reply.status, Some(0), "light run {i}: {:?}", reply.rejected);
        assert_eq!(reply.stdout, expected, "light run {i} diverged");
    }

    let mut flood_completed = 0;
    let mut flood_quota = 0;
    for h in flood {
        let reply = h.join().unwrap();
        if let Some((code, _, _, reason)) = &reply.rejected {
            assert_eq!(*code, reject::QUOTA, "flood shed with the wrong code");
            assert!(reason.contains("quota"), "reason: {reason}");
            flood_quota += 1;
        } else {
            assert!(reply.completed());
            flood_completed += 1;
        }
    }
    assert_eq!(flood_completed + flood_quota, 16);
    assert!(flood_quota >= 8, "only {flood_quota} of 16 flood runs shed");

    let report = rig.server.drain();
    assert!(report.within_budget);
    let row = |name: &str| {
        report
            .tenants
            .iter()
            .find(|t| t.tenant == name)
            .unwrap_or_else(|| panic!("no tenant report for {name}"))
            .clone()
    };
    let light = row("light");
    assert_eq!(light.completed, 6);
    assert_eq!(light.rejected_quota, 0, "light tenant absorbed a QUOTA shed");
    assert!(
        light.max_queue_wait_ms < 2_000,
        "light tenant waited {}ms behind the flood",
        light.max_queue_wait_ms
    );
    let flood_row = row("flood");
    assert_eq!(flood_row.rejected_quota, flood_quota as u64);
    assert_eq!(flood_row.completed, flood_completed as u64);
    assert!(
        flood_row.disk_bytes > 0 && flood_row.cpu_seconds > 0.0,
        "flood usage not attributed: {flood_row:?}"
    );
    assert_eq!(debris(&rig.fs), Vec::<String>::new());
}

/// Quarantine round-trip: a tenant that fails its threshold of
/// consecutive runs is exiled with `QUARANTINED` while a bystander
/// keeps committing cleanly; after the cooldown, exactly one half-open
/// probe is admitted, and its success lifts the quarantine.
#[test]
fn failing_tenant_is_quarantined_and_paroled_by_a_probe() {
    let rig = rig(1, 8, |cfg| {
        cfg.quarantine_failures = 3;
        cfg.quarantine_cooldown = 2;
    });
    let sticky = || {
        let mut req = Request::new(SCRIPT).with_tenant("victim");
        req.fault = Some("read-error:/data/docs.txt:32768".to_string());
        req
    };

    // Ticks 1-3: three consecutive sticky-fault failures trip the
    // breaker (threshold 3), opening the quarantine through tick 5.
    for i in 0..3 {
        let reply = jash::serve::submit(&rig.socket, &sticky()).unwrap();
        assert!(reply.completed(), "failing run {i} still gets an answer");
        assert_ne!(reply.status, Some(0), "run {i} was meant to fail");
    }
    assert_eq!(rig.server.stats().tenants_quarantined, 1);

    // Tick 4: the quarantined tenant is bounced without running.
    let reply = jash::serve::submit(&rig.socket, &sticky()).unwrap();
    let (code, _, _, reason) = reply.rejected.expect("quarantined tenants are shed");
    assert_eq!(code, reject::QUARANTINED);
    assert!(reason.contains("quarantined"), "reason: {reason}");
    assert!(reply.run_id.is_none(), "quarantined submission must not run");

    // Tick 5: a bystander sails through — quarantine is per-tenant.
    let reply =
        jash::serve::submit(&rig.socket, &Request::new(SCRIPT).with_tenant("bystander")).unwrap();
    assert_eq!(reply.status, Some(0), "bystander caught the quarantine");

    // Tick 6: cooldown elapsed — the victim's next submission is the
    // half-open probe. It runs clean, which closes the breaker.
    let reply =
        jash::serve::submit(&rig.socket, &Request::new(SCRIPT).with_tenant("victim")).unwrap();
    assert_eq!(reply.status, Some(0), "probe run failed: {:?}", reply.aborted);
    let probe_id = reply.run_id.expect("probe was admitted");
    let records = parsed_trace(&rig.fs, probe_id);
    let probed = records.iter().any(|r| match r {
        jash::trace::Record::Span { kind, attrs, .. } => {
            kind == "run"
                && attr(attrs, "quarantine_probe") == Some(&jash::trace::AttrValue::Bool(true))
        }
        _ => false,
    });
    assert!(probed, "probe run's trace is not marked quarantine_probe");

    // Tick 7: parole — the tenant is back to normal admission.
    let reply =
        jash::serve::submit(&rig.socket, &Request::new(SCRIPT).with_tenant("victim")).unwrap();
    assert_eq!(reply.status, Some(0));

    let report = rig.server.drain();
    let victim = report
        .tenants
        .iter()
        .find(|t| t.tenant == "victim")
        .expect("victim report");
    assert_eq!(victim.failures, 3);
    assert_eq!(victim.quarantines, 1);
    assert_eq!(victim.rejected_quarantined, 1);
    assert!(!victim.quarantined_now, "parole did not stick");
    assert_eq!(report.stats.rejected_quarantined, 1);
    assert_eq!(debris(&rig.fs), Vec::<String>::new());
}

// ---------------------------------------------------------------------
// Exactly-once: idempotency keys, restart recovery, client resilience.
// ---------------------------------------------------------------------

#[test]
fn duplicate_keyed_submission_replays_the_cached_result() {
    let rig = rig(2, 4, |_| {});
    let req = Request::new(SCRIPT).with_key("nightly-etl");
    let first = jash::serve::submit(&rig.socket, &req).unwrap();
    assert_eq!(first.status, Some(0), "{first:?}");
    assert!(first.attached.is_none(), "first submission must execute");

    // Clobber the input: if the duplicate re-executes instead of
    // replaying, its stdout diverges.
    jash::io::fs::write_file(rig.fs.as_ref(), "/data/docs.txt", b"SENTINEL JUNK\n").unwrap();

    let dup = jash::serve::submit(&rig.socket, &req).unwrap();
    assert_eq!(dup.status, Some(0), "{dup:?}");
    assert_eq!(dup.attached, first.run_id, "duplicate must attach, not execute");
    assert_eq!(dup.stdout, first.stdout, "replay must be byte-identical");
    assert_eq!(rig.server.stats().replayed, 1);

    // A cleanly-retired ledgered run needs no journal scope.
    let scopes: Vec<String> = rig
        .fs
        .list_dir("/.jash-serve")
        .unwrap_or_default()
        .into_iter()
        .filter(|n| n.starts_with("run-"))
        .collect();
    assert_eq!(scopes, Vec::<String>::new(), "clean run left its scope behind");

    rig.server.drain();
    assert_eq!(debris(&rig.fs), Vec::<String>::new());
}

#[test]
fn duplicate_keyed_submission_attaches_to_the_live_run() {
    let rig = rig(1, 2, |_| {});
    let req = {
        let mut r = Request::new(SCRIPT).with_key("long-haul");
        // A finite stall: long enough for the duplicate to arrive
        // mid-run, short enough that both clients then finish cleanly.
        r.fault = Some("stall-read:/data/docs.txt:800".to_string());
        r
    };
    let socket = rig.socket.clone();
    let racer = {
        let req = req.clone();
        std::thread::spawn(move || jash::serve::submit(&socket, &req).unwrap())
    };
    poll_until("worker to pick up the keyed run", Duration::from_secs(5), || {
        rig.server.load().0 == 1
    });

    // Same key while the run is in flight: the daemon must attach this
    // connection as a waiter, not queue a second execution.
    let dup = jash::serve::submit(&rig.socket, &req).unwrap();
    let first = racer.join().unwrap();
    assert_eq!(first.status, Some(0), "{first:?}");
    assert_eq!(dup.status, Some(0), "{dup:?}");
    assert_eq!(dup.attached, first.run_id, "duplicate must attach to the live run");
    assert_eq!(dup.stdout, first.stdout);
    assert!(rig.server.stats().attached >= 1);
    assert_eq!(rig.server.stats().replayed + rig.server.stats().attached, 1);

    rig.server.drain();
    assert_eq!(debris(&rig.fs), Vec::<String>::new());
}

#[test]
fn restart_recovery_finalizes_orphans_and_replays_cached_results() {
    use jash::io::{Ledger, LedgerRecord};

    let dir = TempDir::new("jash-it-recover");
    let socket = dir.path().join("sock");
    let fs = jash::io::mem_fs();
    jash::io::fs::write_file(fs.as_ref(), "/data/docs.txt", &docs(96 * 1024)).unwrap();

    // Fabricate the estate of a daemon that died mid-storm. Run 1: a
    // keyed run interrupted mid-flight — execute it once to build a
    // real journal, then strip `run-complete` so it reads as
    // interrupted (the crash_recovery idiom).
    let eager = jash::cost::PlannerOptions {
        min_speedup: 0.0,
        force_width: Some(4),
        ..Default::default()
    };
    let mut shell = jash::core::Jash::new(jash::core::Engine::JashJit, machine());
    shell.planner = eager;
    shell.durable = false;
    shell.attach_journal(&fs, "/.jash-serve/run-1", false).unwrap();
    let mut state = jash::expand::ShellState::new(Arc::clone(&fs));
    let first = shell.run_script(&mut state, SCRIPT).unwrap();
    assert_eq!(first.status, 0);
    let journal = jash::io::fs::read_to_vec(fs.as_ref(), "/.jash-serve/run-1/journal").unwrap();
    let doctored: String = String::from_utf8(journal)
        .unwrap()
        .lines()
        .filter(|l| !l.contains("run-complete"))
        .map(|l| format!("{l}\n"))
        .collect();
    jash::io::fs::write_file(fs.as_ref(), "/.jash-serve/run-1/journal", doctored.as_bytes())
        .unwrap();

    // The admission ledger the dead daemon left behind: run 1 keyed and
    // open, run 2 unkeyed and open, run 3 keyed and finished with its
    // result blobs on disk.
    let accepted = |run_id: u64, key: &str| LedgerRecord::Accepted {
        run_id,
        key: key.to_string(),
        tenant: "cli".to_string(),
        timeout_ms: 0,
        script_hash: jash::io::fnv1a(SCRIPT.as_bytes()),
        script: SCRIPT.to_string(),
    };
    let ledger = Ledger::open(Arc::clone(&fs), "/.jash-serve/ledger", false);
    ledger.append(&accepted(1, "nightly")).unwrap();
    ledger.append(&accepted(2, "")).unwrap();
    ledger.append(&accepted(3, "archived")).unwrap();
    jash::io::ledger::write_result_blobs(
        fs.as_ref(),
        "/.jash-serve",
        3,
        b"hello from the previous daemon\n",
        b"",
        false,
    )
    .unwrap();
    ledger
        .append(&LedgerRecord::Done { run_id: 3, status: 0, aborted: None })
        .unwrap();
    drop(ledger);

    let mut cfg = ServerConfig::new(&socket, Arc::clone(&fs));
    cfg.machine = machine();
    cfg.workers = 2;
    cfg.queue_cap = 4;
    cfg.eager = true;
    cfg.durable = false;
    cfg.journal_root = Some("/.jash-serve".to_string());
    let server = Server::start(cfg).unwrap();

    let rec = server.recovery();
    assert_eq!(rec.finalized, 1, "keyed orphan must be finalized: {rec:?}");
    assert_eq!(rec.aborted, 1, "unkeyed orphan must be aborted: {rec:?}");
    assert_eq!(rec.cached, 1, "finished keyed run must be cached: {rec:?}");
    assert!(rec.regions_resumed >= 1, "clean regions must resume from memo: {rec:?}");

    // Clobber the input *after* recovery: the keyed resubmissions below
    // must come from the result cache — re-execution would diverge.
    jash::io::fs::write_file(fs.as_ref(), "/data/docs.txt", b"SENTINEL JUNK\n").unwrap();

    // Resubmitting the interrupted run's key replays the recovered
    // terminal result, byte-identical to the uninterrupted first run.
    let r1 = jash::serve::submit(&socket, &Request::new(SCRIPT).with_key("nightly")).unwrap();
    assert_eq!(r1.status, Some(0), "{r1:?}");
    assert_eq!(r1.attached, Some(1));
    assert_eq!(r1.stdout, first.stdout, "recovered stdout must match the original");

    // Resubmitting the finished run's key replays its cached blobs.
    let r3 = jash::serve::submit(&socket, &Request::new(SCRIPT).with_key("archived")).unwrap();
    assert_eq!(r3.status, Some(0), "{r3:?}");
    assert_eq!(r3.attached, Some(3));
    assert_eq!(r3.stdout, b"hello from the previous daemon\n".to_vec());

    // The run-id watermark continues past the dead daemon's ledger.
    let fresh = jash::serve::submit(&socket, &Request::new(SCRIPT)).unwrap();
    assert_eq!(fresh.status, Some(0), "{fresh:?}");
    assert!(fresh.run_id >= Some(4), "watermark regressed: {:?}", fresh.run_id);

    // The janitor removed every orphaned run scope.
    let scopes: Vec<String> = fs
        .list_dir("/.jash-serve")
        .unwrap_or_default()
        .into_iter()
        .filter(|n| n.starts_with("run-"))
        .collect();
    assert_eq!(scopes, Vec::<String>::new(), "orphan scopes survived recovery");

    server.drain();
    assert_eq!(debris(&fs), Vec::<String>::new());
}

#[test]
fn submit_with_retry_rides_out_connect_failure_and_overload() {
    use jash::serve::{submit_with_retry, RetryConfig};
    let retry = || RetryConfig {
        attempts: 60,
        base: Duration::from_millis(50),
        max: Duration::from_millis(200),
        ..RetryConfig::default()
    };

    // Connect failure: the client starts before the daemon exists and
    // must ride its backoff until the socket appears.
    let dir = TempDir::new("jash-it-retry");
    let socket = dir.path().join("sock");
    let client = {
        let socket = socket.clone();
        let retry = retry();
        std::thread::spawn(move || submit_with_retry(&socket, &Request::new(SCRIPT), &retry))
    };
    std::thread::sleep(Duration::from_millis(250));
    let fs = jash::io::mem_fs();
    jash::io::fs::write_file(fs.as_ref(), "/data/docs.txt", &docs(96 * 1024)).unwrap();
    let mut cfg = ServerConfig::new(&socket, Arc::clone(&fs));
    cfg.machine = machine();
    cfg.workers = 1;
    cfg.queue_cap = 2;
    cfg.eager = true;
    cfg.durable = false;
    cfg.journal_root = Some("/.jash-serve".to_string());
    cfg.fault_injector = Some(jash::serve::spec_fault_injector());
    let server = Server::start(cfg).unwrap();
    let reply = client.join().unwrap().expect("retry must outlast the late bind");
    assert_eq!(reply.status, Some(0), "{reply:?}");
    assert!(reply.retries >= 1, "no retry was needed, so the drill proved nothing");
    server.drain();

    // Overload: a full daemon sheds with OVERLOADED (retryable); the
    // client's backoff must outlast the congestion.
    let rig = rig(1, 1, |_| {});
    let stall = || {
        let mut r = Request::new(SCRIPT);
        r.fault = Some("stall-read:/data/docs.txt:60000".to_string());
        r
    };
    let mut wedged = Vec::new();
    for _ in 0..2 {
        wedged.push(
            jash::serve::submit_detached(&rig.socket, &stall())
                .unwrap()
                .expect("admitted"),
        );
    }
    poll_until("1 active + 1 queued", Duration::from_secs(5), || {
        rig.server.load() == (1, 1)
    });
    let racer = {
        let socket = rig.socket.clone();
        let retry = retry();
        std::thread::spawn(move || submit_with_retry(&socket, &Request::new(SCRIPT), &retry))
    };
    // Give the racer time to absorb at least one OVERLOADED rejection,
    // then clear the congestion by hanging up the wedged clients.
    std::thread::sleep(Duration::from_millis(300));
    drop(wedged);
    let reply = racer.join().unwrap().expect("retry must outlast the overload");
    assert_eq!(reply.status, Some(0), "{reply:?}");
    assert!(reply.retries >= 1, "overload never pushed back");
    assert!(rig.server.stats().rejected_overload >= 1);
    rig.server.drain();
    assert_eq!(debris(&rig.fs), Vec::<String>::new());
}

#[test]
fn slow_loris_client_cannot_wedge_a_worker_forever() {
    use jash::serve::{write_frame, Frame};
    let rig = rig(1, 2, |cfg| {
        cfg.write_stall = Duration::from_millis(500);
    });
    // Enough stdout to overflow the socket buffer of a client that
    // never reads: the daemon's frame writes must hit the write-stall
    // timeout instead of blocking the worker forever.
    jash::io::fs::write_file(rig.fs.as_ref(), "/data/big.txt", &docs(4 * 1024 * 1024)).unwrap();
    let mut conn = std::os::unix::net::UnixStream::connect(&rig.socket).unwrap();
    write_frame(
        &mut conn,
        &Frame::Submit {
            script: "cat /data/big.txt".to_string(),
            timeout_ms: 0,
            tenant: "loris".to_string(),
            key: String::new(),
            fault: None,
        },
    )
    .unwrap();
    // The client goes silent — connected, never reading.
    poll_until("write stall to fire and free the slot", Duration::from_secs(10), || {
        rig.server.stats().write_stalls >= 1 && rig.server.load().0 == 0
    });
    drop(conn);

    // The freed slot serves the next client normally.
    let reply = jash::serve::submit(&rig.socket, &Request::new(SCRIPT)).unwrap();
    assert_eq!(reply.status, Some(0), "{reply:?}");
    rig.server.drain();
    assert_eq!(debris(&rig.fs), Vec::<String>::new());
}

// ---------------------------------------------------------------------
// Binary-level regression tests (real process, real signals).
// ---------------------------------------------------------------------

const JASH: &str = env!("CARGO_BIN_EXE_jash");

fn stage_root(name: &str) -> (TempDir, PathBuf) {
    let dir = TempDir::new(&format!("jash-it-{name}"));
    let root = dir.path().to_path_buf();
    std::fs::write(root.join("in"), docs(256 * 1024)).unwrap();
    (dir, root)
}

fn host_debris(root: &Path) -> Vec<String> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".jash-stage-"))
            {
                found.push(p.display().to_string());
            }
        }
    }
    found
}

/// Blocks until the wedged region is actually executing (staging file
/// visible), so the signal/deadline lands mid-region.
fn wait_for_stall(root: &Path) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        if !host_debris(root).is_empty() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("stalled region never started in {}", root.display());
}

/// Satellite regression: a SIGTERM received while the trace sink is
/// open must flush the buffered JSONL records — the file parses with
/// the schema-v1 parser and records the aborted region.
#[test]
fn sigterm_mid_region_flushes_a_parseable_trace() {
    let (_guard, root) = stage_root("trace-term");
    let trace_file = root.join("trace.jsonl");
    let mut child = std::process::Command::new(JASH)
        .arg("--root")
        .arg(&root)
        .arg("--trace")
        .arg(&trace_file)
        .args(["-c", "cat /in | tr A-Z a-z | sort > /out"])
        .env("JASH_TEST_EAGER", "1")
        .env("JASH_TEST_STALL_WRITE", "/out:65536:600000")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    wait_for_stall(&root);
    let ok = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(ok.success());
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(143), "graceful SIGTERM exit");

    let text = std::fs::read_to_string(&trace_file).expect("trace file written on abort");
    let records = jash::trace::parse_jsonl(&text)
        .unwrap_or_else(|e| panic!("SIGTERM truncated the trace: {e}\n{text}"));
    let aborted_region = records.iter().any(|r| match r {
        jash::trace::Record::Span { kind, attrs, .. } => {
            kind == "region"
                && attr(attrs, "action") == Some(&jash::trace::AttrValue::Str("aborted".into()))
        }
        _ => false,
    });
    assert!(aborted_region, "trace lacks the aborted region span:\n{text}");
    let run_closed = records.iter().any(|r| match r {
        jash::trace::Record::Span { kind, attrs, .. } => {
            kind == "run" && attr(attrs, "status") == Some(&jash::trace::AttrValue::Int(143))
        }
        _ => false,
    });
    assert!(run_closed, "run span missing its final status:\n{text}");
}

/// Satellite: `--timeout` arms the shared deadline machinery — exit
/// 124, region aborted and journaled, no staging debris, trace intact.
#[test]
fn one_shot_timeout_exits_124_with_journaled_abort() {
    let (_guard, root) = stage_root("timeout");
    let trace_file = root.join("trace.jsonl");
    let t0 = Instant::now();
    let out = std::process::Command::new(JASH)
        .arg("--root")
        .arg(&root)
        .arg("--trace")
        .arg(&trace_file)
        .args(["--timeout", "1", "-c", "cat /in | tr A-Z a-z | sort > /out"])
        .env("JASH_TEST_EAGER", "1")
        .env("JASH_TEST_STALL_WRITE", "/out:65536:600000")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(124), "timeout(1) convention");
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "deadline did not interrupt the stall"
    );
    // The abort is journaled (run interrupted, resumable)...
    let journal = std::fs::read_to_string(root.join(".jash/journal")).unwrap();
    assert!(journal.lines().any(|l| l.contains("region-aborted")), "{journal}");
    assert!(!journal.contains("run-complete"));
    // ...the transaction rolled back...
    assert_eq!(host_debris(&root), Vec::<String>::new());
    assert!(!root.join("out").exists(), "aborted region must not commit");
    // ...and the trace flushed and parses.
    let text = std::fs::read_to_string(&trace_file).unwrap();
    jash::trace::parse_jsonl(&text).unwrap();
}
