//! Integration tests for the supervision layer: deterministic recovery,
//! the width-degradation ladder, and the circuit breaker's full
//! open → routed → half-open → closed cycle — all through the public
//! umbrella API, the way an embedder would drive it.

use jash::core::{Engine, ErrorClass, Jash, SupervisionEvent, TraceEvent};
use jash::cost::{MachineProfile, PlannerOptions};
use jash::expand::ShellState;
use jash::interp::RunResult;
use jash::io::fault::{FaultKind, FaultOp, FaultRule, Trigger};
use jash::io::{FaultPlan, FsHandle};
use std::sync::Arc;

fn machine() -> MachineProfile {
    MachineProfile {
        cores: 8,
        disk: jash::io::DiskProfile::ramdisk(),
        mem_mb: 8 * 1024,
    }
}

fn staged_fs() -> FsHandle {
    let fs = jash::io::mem_fs();
    let content: String = (0..2000)
        .map(|i| format!("Word{} MiXeD case line {}\n", i % 53, i))
        .collect();
    jash::io::fs::write_file(fs.as_ref(), "/in", content.as_bytes()).unwrap();
    fs
}

/// Runs `src` under the JIT with aggressive planning and `plan` injected
/// over a freshly staged fs. Returns the result, the shell (for trace
/// and supervision-log inspection), and the inner fs.
fn run_supervised(src: &str, plan: FaultPlan) -> (RunResult, Jash, FsHandle) {
    let inner = staged_fs();
    let faulty: FsHandle = jash::io::FaultFs::wrap(Arc::clone(&inner), plan);
    let mut state = ShellState::new(faulty);
    let mut shell = Jash::new(Engine::JashJit, machine());
    shell.planner = PlannerOptions {
        min_speedup: 0.0,
        force_width: Some(4),
        ..Default::default()
    };
    let r = shell.run_script(&mut state, src).expect("script runs");
    (r, shell, inner)
}

fn transient_once_at(offset: u64) -> FaultRule {
    FaultRule {
        path: Some("/in".into()),
        op: FaultOp::Read,
        trigger: Trigger::AtByte(offset),
        kind: FaultKind::Error {
            kind: std::io::ErrorKind::Other,
            msg: "injected: transient controller reset".into(),
        },
        once: true,
    }
}

fn assert_no_staging_debris(fs: &FsHandle, ctx: &str) {
    for dir in ["/", "/tmp"] {
        for name in fs.list_dir(dir).unwrap_or_default() {
            assert!(
                !name.contains(".jash-stage-"),
                "{ctx}: staging debris {dir}/{name}"
            );
        }
    }
}

/// The determinism satellite: same fault-plan seed plus same retry-policy
/// seed must mean byte-identical output AND an identical supervision
/// event sequence across two independent runs. The scenario is made
/// deliberately rich — two resource-class open faults force the ladder
/// down to width 1, then a once-transient read fault forces a retry — so
/// the equality covers backoff delays, degradation steps, and recovery
/// records, not just a trivial empty log.
#[test]
fn recovery_is_deterministic_across_runs() {
    let src = "cat /in | tr A-Z a-z | sort -u > /out";
    let plan = || {
        FaultPlan::new()
            .resource_open_errors("/in", 2)
            .rule(transient_once_at(256))
    };
    let (r1, shell1, fs1) = run_supervised(src, plan());
    let (r2, shell2, fs2) = run_supervised(src, plan());

    assert_eq!(r1.status, r2.status);
    assert_eq!(r1.stdout, r2.stdout, "stdout must be byte-identical");
    assert_eq!(
        jash::io::fs::read_to_vec(fs1.as_ref(), "/out").unwrap(),
        jash::io::fs::read_to_vec(fs2.as_ref(), "/out").unwrap(),
        "file output must be byte-identical"
    );
    assert_eq!(
        shell1.runtime.supervision, shell2.runtime.supervision,
        "supervision logs must match event-for-event:\nrun1:\n{}\nrun2:\n{}",
        shell1.runtime.supervision.render(),
        shell2.runtime.supervision.render()
    );
    // The log really exercised the machinery (degradations and a
    // jittered backoff), so the equality above is meaningful.
    assert!(
        shell1.runtime.supervision.degradations() >= 1,
        "scenario must include a width degradation:\n{}",
        shell1.runtime.supervision.render()
    );
    assert!(
        shell1
            .runtime
            .supervision
            .events
            .iter()
            .any(|e| matches!(e, SupervisionEvent::Backoff { .. })),
        "scenario must include a backoff:\n{}",
        shell1.runtime.supervision.render()
    );

    // And the recovered run is byte-identical to a clean interpreter run.
    let clean_fs = staged_fs();
    let mut state = ShellState::new(Arc::clone(&clean_fs));
    let clean = Jash::new(Engine::Bash, machine())
        .run_script(&mut state, src)
        .unwrap();
    assert_eq!(r1.status, clean.status);
    assert_eq!(r1.stdout, clean.stdout);
    assert_eq!(
        jash::io::fs::read_to_vec(fs1.as_ref(), "/out").unwrap(),
        jash::io::fs::read_to_vec(clean_fs.as_ref(), "/out").unwrap()
    );
    assert_no_staging_debris(&fs1, "deterministic recovery");
}

/// The degradation ladder, end to end: two resource-class open faults
/// knock out the width-4 and width-2 rungs; the width-1 rung succeeds.
/// The event sequence must show exactly 4 → 2 → 1 in order, and the
/// region still counts as recovered-without-failover.
#[test]
fn resource_pressure_walks_the_width_ladder() {
    let src = "cat /in | tr A-Z a-z | sort -u";
    let plan = FaultPlan::new().resource_open_errors("/in", 2);
    let (r, shell, fs) = run_supervised(src, plan);

    assert_eq!(r.status, 0, "trace: {:?}", shell.trace);
    assert!(
        !shell.trace.iter().any(TraceEvent::failed_over),
        "resource faults must degrade, not fail over:\n{}",
        shell.runtime.supervision.render()
    );
    let steps: Vec<(usize, usize)> = shell
        .runtime
        .supervision
        .events
        .iter()
        .filter_map(|e| match e {
            SupervisionEvent::WidthDegraded {
                from,
                to,
                class: ErrorClass::Resource,
                ..
            } => Some((*from, *to)),
            _ => None,
        })
        .collect();
    assert_eq!(
        steps,
        vec![(4, 2), (2, 1)],
        "ladder must step 4 → 2 → 1:\n{}",
        shell.runtime.supervision.render()
    );
    assert!(
        shell
            .runtime
            .supervision
            .events
            .iter()
            .any(|e| matches!(e, SupervisionEvent::Recovered { width: 1, .. })),
        "expected recovery at width 1:\n{}",
        shell.runtime.supervision.render()
    );
    assert_eq!(shell.runtime.regions_recovered, 1);
    assert_no_staging_debris(&fs, "width ladder");
}

/// The breaker's full life cycle in one script. A rename fault on the
/// output file hits only the optimized path (the interpreter writes the
/// file directly, so every statement still completes after failover):
/// three permanent commit failures trip the breaker (threshold 3), the
/// next four matching statements route straight to the interpreter
/// (cool-down 4), the eighth is the half-open trial — by then the fault
/// has disarmed, so it succeeds and closes the breaker — and the ninth
/// optimizes normally again.
#[test]
fn breaker_opens_routes_probes_and_closes() {
    let src = "cat /in | tr A-Z a-z | sort -u > /out\n".repeat(9);
    let commit_faults_3 = || {
        FaultPlan::new().rule(FaultRule {
            path: Some("/out".into()),
            op: FaultOp::Rename,
            trigger: Trigger::FirstOps(3),
            kind: FaultKind::Error {
                kind: std::io::ErrorKind::Other,
                msg: "injected: media failure on commit".into(),
            },
            once: false,
        })
    };
    let (r, shell, fs) = run_supervised(&src, commit_faults_3());

    // Sequential baseline under the same fault: the interpreter never
    // renames, so it is oblivious to it — which is exactly why the
    // routed statements recover.
    let bash_inner = staged_fs();
    let bash_faulty: FsHandle = jash::io::FaultFs::wrap(Arc::clone(&bash_inner), commit_faults_3());
    let mut state = ShellState::new(bash_faulty);
    let bash = Jash::new(Engine::Bash, machine())
        .run_script(&mut state, &src)
        .unwrap();
    assert_eq!(r.status, bash.status);
    assert_eq!(r.stdout, bash.stdout);
    assert_eq!(
        jash::io::fs::read_to_vec(fs.as_ref(), "/out").unwrap(),
        jash::io::fs::read_to_vec(bash_inner.as_ref(), "/out").unwrap()
    );

    let log = &shell.runtime.supervision;
    assert_eq!(
        shell.runtime.regions_failed_over, 3,
        "three commit failures before the breaker trips:\n{}",
        log.render()
    );
    assert_eq!(log.breaker_opens(), 1, "{}", log.render());
    assert_eq!(
        log.breaker_routed(),
        4,
        "cool-down of 4 regions routed without an attempt:\n{}",
        log.render()
    );
    assert!(
        log.events
            .iter()
            .any(|e| matches!(e, SupervisionEvent::BreakerHalfOpen { .. })),
        "expected a half-open probe:\n{}",
        log.render()
    );
    assert!(
        log.events
            .iter()
            .any(|e| matches!(e, SupervisionEvent::BreakerClosed { .. })),
        "expected the probe to close the breaker:\n{}",
        log.render()
    );
    // The trial (tick 8) and the post-recovery statement (tick 9) both
    // delivered optimized output.
    assert_eq!(shell.runtime.regions_optimized, 2, "{}", log.render());
    assert_no_staging_debris(&fs, "breaker cycle");
}
